"""The named scenario library and the generated cookbook table.

Scenario files live as JSON under the repo-root ``scenarios/`` directory;
each file's stem must equal its ``name`` field, so ``scenario run
flash-crowd`` resolves unambiguously.  :func:`scenario_table_markdown`
renders the registry as the markdown table embedded between markers in
``docs/SCENARIOS.md`` — ``tools/check_docs.py`` regenerates the table and
fails when the committed cookbook disagrees, the same drift gate the
event taxonomy and wire-codec tables use.

Run ``python -m repro.scenarios.registry --write`` to refresh the
generated block in the cookbook after adding or editing a scenario.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Optional, Union

from repro.scenarios.slo import SLO_METRICS
from repro.scenarios.spec import ScenarioError, ScenarioSpec

__all__ = [
    "default_scenario_dir",
    "load_all",
    "load_scenario",
    "scenario_names",
    "scenario_paths",
    "scenario_table_markdown",
    "slo_metric_table_markdown",
]

_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Markers bounding the generated table inside docs/SCENARIOS.md.
TABLE_BEGIN = "<!-- scenario-table:begin (generated; python -m repro.scenarios.registry --write) -->"
TABLE_END = "<!-- scenario-table:end -->"
METRICS_BEGIN = "<!-- slo-metric-table:begin (generated; python -m repro.scenarios.registry --write) -->"
METRICS_END = "<!-- slo-metric-table:end -->"


def default_scenario_dir() -> Path:
    """The repo-root ``scenarios/`` directory."""
    return _REPO_ROOT / "scenarios"


def scenario_paths(directory: Optional[Union[str, Path]] = None) -> List[Path]:
    """Every scenario file in the library, sorted by name."""
    root = Path(directory) if directory is not None else default_scenario_dir()
    if not root.is_dir():
        return []
    return sorted(root.glob("*.json"))


def scenario_names(directory: Optional[Union[str, Path]] = None) -> List[str]:
    """The names of every registered scenario."""
    return [path.stem for path in scenario_paths(directory)]


def load_scenario(
    name_or_path: str, directory: Optional[Union[str, Path]] = None
) -> ScenarioSpec:
    """Resolve a scenario by registry name or by file path."""
    candidate = Path(name_or_path)
    if candidate.suffix == ".json" or candidate.exists():
        spec = ScenarioSpec.from_json(candidate)
        return spec
    root = Path(directory) if directory is not None else default_scenario_dir()
    path = root / f"{name_or_path}.json"
    if not path.exists():
        known = ", ".join(scenario_names(directory)) or "(none)"
        raise ScenarioError(
            f"unknown scenario {name_or_path!r} (registered: {known})"
        )
    spec = ScenarioSpec.from_json(path)
    if spec.name != path.stem:
        raise ScenarioError(
            f"{path.name}: file stem and scenario name {spec.name!r} disagree"
        )
    return spec


def load_all(directory: Optional[Union[str, Path]] = None) -> List[ScenarioSpec]:
    """Every registered scenario, name-sorted and stem-checked."""
    specs = []
    for path in scenario_paths(directory):
        spec = ScenarioSpec.from_json(path)
        if spec.name != path.stem:
            raise ScenarioError(
                f"{path.name}: file stem and scenario name {spec.name!r} disagree"
            )
        specs.append(spec)
    return specs


def _chaos_summary(spec: ScenarioSpec) -> str:
    kinds = [action.kind for action in spec.chaos]
    if not kinds:
        return "none"
    counted = []
    for kind in dict.fromkeys(kinds):
        n = kinds.count(kind)
        counted.append(f"{kind} ×{n}" if n > 1 else kind)
    return ", ".join(counted)


def scenario_table_markdown(directory: Optional[Union[str, Path]] = None) -> str:
    """The registry as a markdown table (one row per scenario)."""
    lines = [
        "| scenario | workload | chaos | SLOs | description |",
        "| --- | --- | --- | --- | --- |",
    ]
    for spec in load_all(directory):
        slos = "; ".join(s.label() for s in spec.slos) or "none"
        lines.append(
            f"| `{spec.name}` | {spec.workload.shape} | {_chaos_summary(spec)} "
            f"| {slos} | {spec.description} |"
        )
    return "\n".join(lines)


def slo_metric_table_markdown() -> str:
    """The SLO metric vocabulary as a markdown table."""
    lines = [
        "| metric | percentile? | meaning |",
        "| --- | --- | --- |",
    ]
    for name in sorted(SLO_METRICS):
        meaning, takes_pct = SLO_METRICS[name]
        lines.append(f"| `{name}` | {'yes' if takes_pct else 'no'} | {meaning} |")
    return "\n".join(lines)


def _replace_block(text: str, begin: str, end: str, body: str) -> str:
    pattern = re.compile(
        re.escape(begin) + r"\n.*?" + re.escape(end), re.DOTALL
    )
    if not pattern.search(text):
        raise ScenarioError(f"cookbook is missing the {begin!r} marker block")
    return pattern.sub(f"{begin}\n{body}\n{end}", text)


def render_cookbook(text: str, directory: Optional[Union[str, Path]] = None) -> str:
    """*text* with both generated blocks refreshed from the registry."""
    text = _replace_block(
        text, TABLE_BEGIN, TABLE_END, scenario_table_markdown(directory)
    )
    return _replace_block(text, METRICS_BEGIN, METRICS_END, slo_metric_table_markdown())


def main(argv: Optional[List[str]] = None) -> int:
    """Refresh (``--write``) or print the generated cookbook blocks."""
    args = list(sys.argv[1:] if argv is None else argv)
    cookbook = _REPO_ROOT / "docs" / "SCENARIOS.md"
    if "--write" in args:
        text = cookbook.read_text(encoding="utf-8")
        cookbook.write_text(render_cookbook(text), encoding="utf-8")
        print(f"refreshed generated tables in {cookbook}")
        return 0
    print(scenario_table_markdown())
    print()
    print(slo_metric_table_markdown())
    return 0


if __name__ == "__main__":
    sys.exit(main())
