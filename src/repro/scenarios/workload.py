"""Compile a :class:`~repro.scenarios.spec.WorkloadShape` into timed jobs.

Each shape becomes a deterministic, seeded list of :class:`Submission`
(submit-time, job) pairs the engine schedules on the simulation clock:

- ``prime`` — N copies of the paper's 283 s Figure 7 job, evenly spaced;
- ``downey`` — N jobs drawn from the synthetic Paragon trace;
- ``bag`` — one embarrassingly parallel mixed-priority bag at t=0;
- ``dag_campaign`` — N stage-in → analyses → merge DAGs, evenly spaced;
- ``diurnal`` — portal traffic whose arrival intensity follows a
  day/night cycle of period ``period_s`` (thinning a seeded uniform
  stream against a raised-cosine intensity);
- ``flash_crowd`` — a trickle plus ``burst_tasks`` submitted at the same
  instant ``burst_at_s`` (the portal moment everyone hits "submit");
- ``multi_vo`` — interleaved single-task jobs from several virtual
  organisations with differing priorities.

Randomness is confined to a child generator seeded from the scenario
seed, so the same spec + seed always yields the same submissions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.gridsim.job import Job, Task, TaskSpec
from repro.scenarios.spec import ScenarioError, WorkloadShape
from repro.workloads.downey import DowneyWorkloadGenerator
from repro.workloads.generators import (
    bag_of_batch_tasks,
    make_prime_count_task,
    physics_analysis_job,
)

__all__ = ["Submission", "build_submissions"]


@dataclass(frozen=True)
class Submission:
    """One job and the simulation time it is submitted at."""

    time_s: float
    job: Job


def _simple_task(owner: str, work_seconds: float, priority: int = 0) -> Task:
    spec = TaskSpec(
        owner=owner,
        executable="portal_analysis",
        requested_cpu_hours=work_seconds / 3600.0,
        priority=priority,
    )
    return Task(spec=spec, work_seconds=work_seconds)


def _work(rng: np.random.Generator, mean_seconds: float) -> float:
    """A jittered runtime around the mean (lognormal, sigma 0.35)."""
    return float(mean_seconds * rng.lognormal(0.0, 0.35))


#: Arrivals are confined to the first three quarters of the horizon so a
#: straggler admitted late still has time to queue, run, and complete.
ARRIVAL_SPAN_FRACTION = 0.75


def _diurnal_times(
    rng: np.random.Generator, n: int, horizon_s: float, period_s: float
) -> List[float]:
    """*n* seeded arrivals following a raised-cosine day/night intensity.

    Thinning: candidates arrive uniformly, and survive with probability
    proportional to ``0.15 + 0.85 * (1 - cos(2*pi*t/period)) / 2`` — the
    trough keeps ~15 % of peak traffic, like a portal at night.
    """
    times: List[float] = []
    while len(times) < n:
        t = float(rng.uniform(0.0, ARRIVAL_SPAN_FRACTION * horizon_s))
        intensity = 0.15 + 0.85 * (1.0 - math.cos(2.0 * math.pi * t / period_s)) / 2.0
        if float(rng.uniform()) < intensity:
            times.append(t)
    return sorted(times)


def build_submissions(
    shape: WorkloadShape, seed: int, horizon_s: float
) -> List[Submission]:
    """The shape's deterministic submission schedule, sorted by time."""
    rng = np.random.default_rng((seed, 71))
    subs: List[Submission] = []

    if shape.shape == "prime":
        for i in range(shape.tasks):
            task = make_prime_count_task(owner=shape.owner)
            subs.append(
                Submission(i * shape.interval_s, Job(tasks=[task], owner=shape.owner))
            )
    elif shape.shape == "downey":
        gen = DowneyWorkloadGenerator(seed=seed)
        records = [
            r for r in gen.generate(4 * shape.tasks) if r.status == "successful"
        ]
        if len(records) < shape.tasks:
            raise ScenarioError("not enough successful trace jobs for the workload")
        for i, record in enumerate(records[: shape.tasks]):
            task = record.to_task()
            subs.append(
                Submission(i * shape.interval_s, Job(tasks=[task], owner=task.spec.owner))
            )
    elif shape.shape == "bag":
        job = bag_of_batch_tasks(
            shape.owner, shape.tasks, rng, mean_seconds=shape.mean_seconds
        )
        subs.append(Submission(0.0, job))
    elif shape.shape == "dag_campaign":
        for i in range(shape.tasks):
            job = physics_analysis_job(
                shape.owner,
                n_analysis_tasks=shape.analysis_tasks,
                stage_seconds=shape.mean_seconds / 4.0,
                analysis_seconds=shape.mean_seconds,
                merge_seconds=shape.mean_seconds / 4.0,
                rng=rng,
            )
            subs.append(Submission(i * shape.interval_s, job))
    elif shape.shape == "diurnal":
        for t in _diurnal_times(rng, shape.tasks, horizon_s, shape.period_s):
            task = _simple_task(shape.owner, _work(rng, shape.mean_seconds))
            subs.append(Submission(t, Job(tasks=[task], owner=shape.owner)))
    elif shape.shape == "flash_crowd":
        for i in range(shape.tasks):
            t = float(rng.uniform(0.0, ARRIVAL_SPAN_FRACTION * horizon_s))
            task = _simple_task(shape.owner, _work(rng, shape.mean_seconds))
            subs.append(Submission(t, Job(tasks=[task], owner=shape.owner)))
        for _ in range(shape.burst_tasks):
            task = _simple_task(shape.owner, _work(rng, shape.mean_seconds))
            subs.append(Submission(shape.burst_at_s, Job(tasks=[task], owner=shape.owner)))
    elif shape.shape == "multi_vo":
        for v, vo in enumerate(shape.vos):
            for i in range(vo.tasks):
                task = _simple_task(
                    vo.owner, _work(rng, vo.mean_seconds), priority=vo.priority
                )
                subs.append(
                    Submission(
                        i * shape.interval_s + v * shape.interval_s / max(len(shape.vos), 1),
                        Job(tasks=[task], owner=vo.owner),
                    )
                )
    else:  # pragma: no cover - WorkloadShape.from_dict rejects unknown shapes
        raise ScenarioError(f"unknown workload shape {shape.shape!r}")

    ordered = sorted(subs, key=lambda s: s.time_s)
    clipped = [s for s in ordered if s.time_s < horizon_s]
    if not clipped:
        raise ScenarioError(
            "workload: every submission falls at or after the horizon"
        )
    return clipped
