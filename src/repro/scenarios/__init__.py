"""Declarative scenario engine: chaos campaigns scored against SLOs.

Every benchmark before this package replayed one canonical workload.
Scenarios make *composed adversity* — the grid weather the paper's §1
motivates steering with — a first-class, repeatable evaluation layer:

- a **scenario file** (:mod:`repro.scenarios.spec`) declares a workload
  shape (:mod:`repro.scenarios.workload`), a chaos schedule
  (:mod:`repro.scenarios.chaos` driving
  :class:`~repro.gridsim.faults.OutageScheduler` and the network
  weather), and SLO assertions (:mod:`repro.scenarios.slo`);
- the **engine** (:mod:`repro.scenarios.engine`) runs the scenario on a
  fully wired GAE and scores every SLO from the observability journal,
  writing the schema-validated ``SCENARIOS.json`` trajectory artifact;
- the **registry** (:mod:`repro.scenarios.registry`) discovers the named
  scenario library under ``scenarios/`` and generates the operator
  cookbook table in ``docs/SCENARIOS.md`` (drift-gated by
  ``tools/check_docs.py``).

Everything is seeded and simulation-domain: two runs of the same
scenario with the same seed produce bit-identical artifacts.
"""

from repro.scenarios.engine import (
    ScenarioReportError,
    run_campaign,
    run_scenario,
    validate_scenarios_file,
    validate_scenarios_report,
)
from repro.scenarios.registry import (
    load_scenario,
    scenario_names,
    scenario_table_markdown,
)
from repro.scenarios.slo import SLO_METRICS, SloSpec, score_slos
from repro.scenarios.spec import (
    ChaosAction,
    ScenarioError,
    ScenarioSpec,
    WorkloadShape,
)

__all__ = [
    "ChaosAction",
    "SLO_METRICS",
    "ScenarioError",
    "ScenarioReportError",
    "ScenarioSpec",
    "SloSpec",
    "WorkloadShape",
    "load_scenario",
    "run_campaign",
    "run_scenario",
    "scenario_names",
    "scenario_table_markdown",
    "score_slos",
    "validate_scenarios_file",
    "validate_scenarios_report",
]
