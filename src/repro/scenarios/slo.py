"""SLO assertions scored from the observability journal.

Every metric is **simulation-domain and deterministic**: values are
derived purely from :class:`~repro.observability.journal.JournalEvent`
times and the at-submission :class:`~repro.core.estimators.queue_time.
RuntimeEstimateDB`, never from host wall clocks — which is what lets the
``SCENARIOS.json`` artifact be bit-identical across two runs with the
same seed (the scenario property test pins exactly that).

Metrics (see :data:`SLO_METRICS`):

- ``completion_ratio`` — completed tasks / submitted tasks;
- ``makespan_s`` — last completion time (horizon when nothing finished);
- ``queue_wait_s`` — percentile of dispatch→start gaps;
- ``recovery_time_s`` — percentile of failure→recovery gaps, censored at
  the horizon for tasks the Backup & Recovery service never resubmitted;
- ``steering_reaction_s`` — percentile of adversity-onset→corrective-verb
  gaps (``failed``→``recovered`` and last ``started``/``resumed``→
  ``moved``): how fast the steering loop reacts in simulation time;
- ``estimate_error_pct`` — mean absolute percentage error of the
  at-submission runtime estimate against the realised start→completion
  span (§6's estimator quality, scored in vivo);
- ``tasks_failed_total`` / ``moves_total`` — raw adversity/verb counts.

Doctest — score a tiny hand-built journal::

    >>> from repro.observability.journal import EventJournal, EventType
    >>> journal = EventJournal(clock=lambda: 0.0)
    >>> for t, typ in [(0.0, EventType.DISPATCHED), (5.0, EventType.STARTED),
    ...                (9.0, EventType.FAILED), (11.0, EventType.RECOVERED),
    ...                (30.0, EventType.COMPLETED)]:
    ...     _ = journal.record(typ, "t-1", time=t)
    >>> slo = SloSpec.from_dict(
    ...     {"metric": "recovery_time_s", "op": "<=", "threshold": 5.0}, "slos[0]")
    >>> verdict = score_slos([slo], journal.events(), {}, ["t-1"], horizon_s=100.0)[0]
    >>> verdict["value"], verdict["passed"]
    (2.0, True)
    >>> score_slos([SloSpec.from_dict({"metric": "completion_ratio",
    ...                                "op": ">=", "threshold": 1.0}, "x")],
    ...            journal.events(), {}, ["t-1"], horizon_s=100.0)[0]["passed"]
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.clarens.telemetry import percentile
from repro.observability.journal import EventType, JournalEvent

__all__ = ["SLO_METRICS", "SloSpec", "score_slos"]

#: metric name -> (one-line meaning, takes a percentile?)
SLO_METRICS: Dict[str, Tuple[str, bool]] = {
    "completion_ratio": ("completed tasks / submitted tasks", False),
    "makespan_s": ("simulation time of the last completion (horizon if none)", False),
    "queue_wait_s": ("dispatch-to-start gap per started task", True),
    "recovery_time_s": (
        "failure-to-recovery gap per failure (censored at the horizon)", True,
    ),
    "steering_reaction_s": (
        "adversity-onset-to-corrective-verb gap (moves and recoveries)", True,
    ),
    "estimate_error_pct": (
        "mean |estimate - actual| / actual * 100 over completed tasks", False,
    ),
    "tasks_failed_total": ("count of failure events", False),
    "moves_total": ("count of steering move verbs", False),
}

_OPS = ("<=", ">=")


@dataclass(frozen=True)
class SloSpec:
    """One assertion: ``metric [pN] <= / >= threshold``."""

    metric: str
    op: str
    threshold: float
    percentile: float = 95.0

    @classmethod
    def from_dict(cls, data: Dict, path: str) -> "SloSpec":
        if not isinstance(data, dict):
            raise ValueError(f"{path}: expected an object")
        unknown = set(data) - {"metric", "op", "threshold", "percentile"}
        if unknown:
            raise ValueError(f"{path}: unknown keys {sorted(unknown)}")
        metric = data.get("metric", "")
        if metric not in SLO_METRICS:
            raise ValueError(
                f"{path}.metric: unknown metric {metric!r} "
                f"(known: {', '.join(sorted(SLO_METRICS))})"
            )
        op = data.get("op", "")
        if op not in _OPS:
            raise ValueError(f"{path}.op: must be one of {_OPS}, got {op!r}")
        threshold = data.get("threshold")
        if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
            raise ValueError(f"{path}.threshold: expected a number, got {threshold!r}")
        pct = data.get("percentile", 95.0)
        if isinstance(pct, bool) or not isinstance(pct, (int, float)):
            raise ValueError(f"{path}.percentile: expected a number, got {pct!r}")
        if not 0.0 < float(pct) <= 100.0:
            raise ValueError(f"{path}.percentile: must be in (0, 100], got {pct}")
        return cls(
            metric=metric, op=op, threshold=float(threshold), percentile=float(pct)
        )

    def to_dict(self) -> Dict:
        return {
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "percentile": self.percentile,
        }

    def label(self) -> str:
        """Human-readable assertion, e.g. ``queue_wait_s p95 <= 600``."""
        pct = f" p{self.percentile:g}" if SLO_METRICS[self.metric][1] else ""
        return f"{self.metric}{pct} {self.op} {self.threshold:g}"


# ----------------------------------------------------------------------
# metric extraction
# ----------------------------------------------------------------------
def _timelines(events: Sequence[JournalEvent]) -> Dict[str, List[JournalEvent]]:
    per_task: Dict[str, List[JournalEvent]] = {}
    for event in sorted(events, key=lambda e: (e.time, e.seq)):
        per_task.setdefault(event.task_id, []).append(event)
    return per_task


def _queue_waits(events: Sequence[JournalEvent]) -> List[float]:
    waits = []
    for timeline in _timelines(events).values():
        pending: Optional[float] = None
        for event in timeline:
            if event.type is EventType.DISPATCHED and pending is None:
                pending = event.time
            elif event.type is EventType.STARTED and pending is not None:
                waits.append(event.time - pending)
                pending = None
    return waits


def _recovery_times(events: Sequence[JournalEvent], horizon_s: float) -> List[float]:
    gaps = []
    for timeline in _timelines(events).values():
        failed_at: Optional[float] = None
        for event in timeline:
            if event.type is EventType.FAILED and failed_at is None:
                failed_at = event.time
            elif event.type is EventType.RECOVERED and failed_at is not None:
                gaps.append(event.time - failed_at)
                failed_at = None
        if failed_at is not None:  # never recovered: censor at the horizon
            gaps.append(max(0.0, horizon_s - failed_at))
    return gaps


def _steering_reactions(events: Sequence[JournalEvent], horizon_s: float) -> List[float]:
    gaps = list(_recovery_times(events, horizon_s))
    for timeline in _timelines(events).values():
        running_since: Optional[float] = None
        for event in timeline:
            if event.type in (EventType.STARTED, EventType.RESUMED):
                running_since = event.time
            elif event.type is EventType.MOVED and running_since is not None:
                gaps.append(event.time - running_since)
    return gaps


def _estimate_errors(
    events: Sequence[JournalEvent], estimates: Mapping[str, float]
) -> List[float]:
    errors = []
    for task_id, timeline in sorted(_timelines(events).items()):
        if task_id not in estimates:
            continue
        started = [e.time for e in timeline if e.type is EventType.STARTED]
        completed = [e.time for e in timeline if e.type is EventType.COMPLETED]
        if not started or not completed:
            continue
        actual = completed[-1] - started[0]
        if actual <= 0:
            continue
        errors.append(abs(estimates[task_id] - actual) / actual * 100.0)
    return errors


def compute_metric(
    spec: SloSpec,
    events: Sequence[JournalEvent],
    estimates: Mapping[str, float],
    submitted: Sequence[str],
    horizon_s: float,
) -> Tuple[float, int]:
    """``(value, samples)`` for one SLO over one scenario run.

    ``samples`` is how many observations backed the value; percentile
    metrics with zero samples score ``0.0`` (vacuously, e.g. recovery
    time in a benign scenario with nothing to recover).
    """
    metric = spec.metric
    if metric == "completion_ratio":
        done = {e.task_id for e in events if e.type is EventType.COMPLETED}
        total = len(submitted)
        return (len(done & set(submitted)) / total if total else 0.0, total)
    if metric == "makespan_s":
        times = [e.time for e in events if e.type is EventType.COMPLETED]
        return (max(times) if times else horizon_s, len(times))
    if metric == "tasks_failed_total":
        n = sum(1 for e in events if e.type is EventType.FAILED)
        return (float(n), n)
    if metric == "moves_total":
        n = sum(1 for e in events if e.type is EventType.MOVED)
        return (float(n), n)
    if metric == "estimate_error_pct":
        errors = _estimate_errors(events, estimates)
        mean = sum(errors) / len(errors) if errors else 0.0
        return (mean, len(errors))
    if metric == "queue_wait_s":
        samples = _queue_waits(events)
    elif metric == "recovery_time_s":
        samples = _recovery_times(events, horizon_s)
    elif metric == "steering_reaction_s":
        samples = _steering_reactions(events, horizon_s)
    else:  # pragma: no cover - SloSpec.from_dict rejects unknown metrics
        raise ValueError(f"unknown metric {metric!r}")
    if not samples:
        return (0.0, 0)
    return (percentile(samples, spec.percentile), len(samples))


def score_slos(
    slos: Sequence[SloSpec],
    events: Sequence[JournalEvent],
    estimates: Mapping[str, float],
    submitted: Sequence[str],
    horizon_s: float,
) -> List[Dict[str, object]]:
    """Verdicts for every SLO: value, backing sample count, pass/fail."""
    verdicts = []
    for spec in slos:
        value, samples = compute_metric(spec, events, estimates, submitted, horizon_s)
        passed = value <= spec.threshold if spec.op == "<=" else value >= spec.threshold
        verdicts.append(
            {
                "slo": spec.label(),
                "metric": spec.metric,
                "op": spec.op,
                "threshold": spec.threshold,
                "percentile": spec.percentile if SLO_METRICS[spec.metric][1] else None,
                "value": value,
                "samples": samples,
                "passed": bool(passed),
            }
        )
    return verdicts
