"""Scenario files: schema-validated declarations of adversity campaigns.

A scenario composes four declarative parts:

- ``grid`` — the testbed, reusing :class:`repro.config.GridConfig`;
- ``workload`` — a :class:`WorkloadShape` (diurnal portal traffic, flash
  crowd, DAG campaign, multi-VO contention, ... — see
  :mod:`repro.scenarios.workload`);
- ``chaos`` — a list of :class:`ChaosAction` windows (site outages,
  flapping, link degradation, partitions, network weather — see
  :mod:`repro.scenarios.chaos`);
- ``slos`` — :class:`repro.scenarios.slo.SloSpec` assertions scored from
  the observability journal after the run.

Validation is hand-rolled (no external schema dependency), path-qualified
and strict: unknown keys, unknown shapes/kinds/metrics, and out-of-range
numbers all raise :class:`ScenarioError` naming the offending path.
``ScenarioSpec.from_dict(spec.to_dict())`` is the identity — the
round-trip the scenario property test pins.

Doctest — load, round-trip, and apply quick overrides::

    >>> spec = ScenarioSpec.from_dict({
    ...     "name": "demo",
    ...     "description": "one prime task, no chaos",
    ...     "grid": {"sites": [{"name": "siteA"}]},
    ...     "workload": {"shape": "prime", "tasks": 2},
    ...     "slos": [{"metric": "completion_ratio", "op": ">=", "threshold": 1.0}],
    ...     "quick": {"horizon_s": 500.0, "workload": {"tasks": 1}},
    ... })
    >>> spec.workload.tasks, spec.horizon_s
    (2, 2000.0)
    >>> ScenarioSpec.from_dict(spec.to_dict()) == spec
    True
    >>> quick = spec.effective(quick=True)
    >>> quick.workload.tasks, quick.horizon_s
    (1, 500.0)
    >>> ScenarioSpec.from_dict({"name": "bad", "description": "x",
    ...                         "grid": {"sites": [{"name": "a"}]},
    ...                         "workload": {"shape": "tsunami"}})  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.scenarios.spec.ScenarioError: workload.shape: unknown shape 'tsunami' (known: ...)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.config import ConfigError, GridConfig
from repro.core.steering.optimizer import SteeringPolicy
from repro.observability.health import HealthRule, HealthRuleError
from repro.scenarios.slo import SloSpec

__all__ = [
    "CHAOS_KINDS",
    "ChaosAction",
    "ScenarioError",
    "ScenarioSpec",
    "VoShape",
    "WORKLOAD_SHAPES",
    "WorkloadShape",
]

#: Workload shapes :mod:`repro.scenarios.workload` can build.
WORKLOAD_SHAPES: Tuple[str, ...] = (
    "prime",
    "downey",
    "bag",
    "dag_campaign",
    "diurnal",
    "flash_crowd",
    "multi_vo",
)

#: Chaos kinds :mod:`repro.scenarios.chaos` can compile onto the clock.
CHAOS_KINDS: Tuple[str, ...] = (
    "outage",
    "flapping",
    "degrade",
    "partition",
    "weather",
)


class ScenarioError(ValueError):
    """Raised for malformed scenario files (path-qualified message)."""


def _require_keys(data: Dict, cls, path: str) -> None:
    if not isinstance(data, dict):
        raise ScenarioError(f"{path}: expected an object, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ScenarioError(f"{path}: unknown keys {sorted(unknown)}")


def _number(data: Dict, key: str, path: str, default: float) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{path}.{key}: expected a number, got {value!r}")
    return float(value)


def _integer(data: Dict, key: str, path: str, default: int) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{path}.{key}: expected an integer, got {value!r}")
    return int(value)


def _string(data: Dict, key: str, path: str, default: str) -> str:
    value = data.get(key, default)
    if not isinstance(value, str):
        raise ScenarioError(f"{path}.{key}: expected a string, got {value!r}")
    return value


@dataclass(frozen=True)
class VoShape:
    """One virtual organisation in a ``multi_vo`` workload."""

    owner: str
    tasks: int = 4
    priority: int = 0
    mean_seconds: float = 300.0

    @classmethod
    def from_dict(cls, data: Dict, path: str) -> "VoShape":
        _require_keys(data, cls, path)
        owner = _string(data, "owner", path, "")
        if not owner:
            raise ScenarioError(f"{path}.owner: required")
        vo = cls(
            owner=owner,
            tasks=_integer(data, "tasks", path, 4),
            priority=_integer(data, "priority", path, 0),
            mean_seconds=_number(data, "mean_seconds", path, 300.0),
        )
        if vo.tasks < 1:
            raise ScenarioError(f"{path}.tasks: must be >= 1, got {vo.tasks}")
        if vo.mean_seconds <= 0:
            raise ScenarioError(f"{path}.mean_seconds: must be positive")
        return vo

    def to_dict(self) -> Dict:
        return {
            "owner": self.owner,
            "tasks": self.tasks,
            "priority": self.priority,
            "mean_seconds": self.mean_seconds,
        }


@dataclass(frozen=True)
class WorkloadShape:
    """A declarative workload: which shape, how big, how spread in time.

    Shape-specific fields (``burst_*`` for ``flash_crowd``, ``period_s``
    for ``diurnal``, ``analysis_tasks`` for ``dag_campaign``, ``vos`` for
    ``multi_vo``) are validated per shape; the rest are common knobs.
    """

    shape: str = "prime"
    owner: str = "physicist"
    tasks: int = 4
    mean_seconds: float = 300.0
    interval_s: float = 60.0
    period_s: float = 1200.0
    burst_at_s: float = 600.0
    burst_tasks: int = 8
    analysis_tasks: int = 3
    vos: Tuple[VoShape, ...] = ()

    @classmethod
    def from_dict(cls, data: Dict, path: str = "workload") -> "WorkloadShape":
        _require_keys(data, cls, path)
        shape = _string(data, "shape", path, "prime")
        if shape not in WORKLOAD_SHAPES:
            raise ScenarioError(
                f"{path}.shape: unknown shape {shape!r} "
                f"(known: {', '.join(WORKLOAD_SHAPES)})"
            )
        vos_data = data.get("vos", [])
        if not isinstance(vos_data, list):
            raise ScenarioError(f"{path}.vos: expected a list")
        wl = cls(
            shape=shape,
            owner=_string(data, "owner", path, "physicist"),
            tasks=_integer(data, "tasks", path, 4),
            mean_seconds=_number(data, "mean_seconds", path, 300.0),
            interval_s=_number(data, "interval_s", path, 60.0),
            period_s=_number(data, "period_s", path, 1200.0),
            burst_at_s=_number(data, "burst_at_s", path, 600.0),
            burst_tasks=_integer(data, "burst_tasks", path, 8),
            analysis_tasks=_integer(data, "analysis_tasks", path, 3),
            vos=tuple(
                VoShape.from_dict(vo, f"{path}.vos[{i}]")
                for i, vo in enumerate(vos_data)
            ),
        )
        if wl.tasks < 1:
            raise ScenarioError(f"{path}.tasks: must be >= 1, got {wl.tasks}")
        if wl.mean_seconds <= 0:
            raise ScenarioError(f"{path}.mean_seconds: must be positive")
        if wl.interval_s < 0:
            raise ScenarioError(f"{path}.interval_s: must be non-negative")
        if wl.period_s <= 0:
            raise ScenarioError(f"{path}.period_s: must be positive")
        if wl.shape == "flash_crowd":
            if wl.burst_tasks < 1:
                raise ScenarioError(f"{path}.burst_tasks: must be >= 1")
            if wl.burst_at_s < 0:
                raise ScenarioError(f"{path}.burst_at_s: must be non-negative")
        if wl.shape == "dag_campaign" and wl.analysis_tasks < 1:
            raise ScenarioError(f"{path}.analysis_tasks: must be >= 1")
        if wl.shape == "multi_vo":
            if not wl.vos:
                raise ScenarioError(f"{path}.vos: multi_vo needs at least one VO")
        elif wl.vos:
            raise ScenarioError(f"{path}.vos: only valid for shape 'multi_vo'")
        return wl

    def to_dict(self) -> Dict:
        return {
            "shape": self.shape,
            "owner": self.owner,
            "tasks": self.tasks,
            "mean_seconds": self.mean_seconds,
            "interval_s": self.interval_s,
            "period_s": self.period_s,
            "burst_at_s": self.burst_at_s,
            "burst_tasks": self.burst_tasks,
            "analysis_tasks": self.analysis_tasks,
            "vos": [vo.to_dict() for vo in self.vos],
        }

    def owners(self) -> List[str]:
        """Every distinct job owner this workload will submit as."""
        if self.shape == "multi_vo":
            return sorted({vo.owner for vo in self.vos})
        return [self.owner]


@dataclass(frozen=True)
class ChaosAction:
    """One adversity window.  Field relevance depends on ``kind``:

    - ``outage``: ``site``, ``start_s``, ``duration_s``;
    - ``flapping``: ``site``, ``start_s``, ``end_s``, ``period_s``, ``duty``;
    - ``degrade``: ``link`` (two site names), ``start_s``, ``end_s``,
      ``utilization``;
    - ``partition``: ``sites`` (one side of the cut), ``start_s``,
      ``duration_s``;
    - ``weather``: ``start_s``, ``end_s``, ``period_s``,
      ``mean_utilization``, ``volatility``.

    An ``end_s`` of ``0`` means "until the scenario horizon" for the
    kinds that take one.
    """

    kind: str
    site: str = ""
    sites: Tuple[str, ...] = ()
    link: Tuple[str, str] = ("", "")
    start_s: float = 0.0
    end_s: float = 0.0
    duration_s: float = 0.0
    period_s: float = 300.0
    duty: float = 0.5
    utilization: float = 0.9
    mean_utilization: float = 0.5
    volatility: float = 0.15

    @classmethod
    def from_dict(cls, data: Dict, path: str) -> "ChaosAction":
        _require_keys(data, cls, path)
        kind = _string(data, "kind", path, "")
        if kind not in CHAOS_KINDS:
            raise ScenarioError(
                f"{path}.kind: unknown kind {kind!r} (known: {', '.join(CHAOS_KINDS)})"
            )
        sites = data.get("sites", [])
        if not isinstance(sites, list) or not all(isinstance(s, str) for s in sites):
            raise ScenarioError(f"{path}.sites: expected a list of site names")
        link = data.get("link", ["", ""])
        if not isinstance(link, (list, tuple)) or len(link) != 2 or not all(
            isinstance(s, str) for s in link
        ):
            raise ScenarioError(f"{path}.link: expected a [a, b] pair of site names")
        action = cls(
            kind=kind,
            site=_string(data, "site", path, ""),
            sites=tuple(sites),
            link=(link[0], link[1]),
            start_s=_number(data, "start_s", path, 0.0),
            end_s=_number(data, "end_s", path, 0.0),
            duration_s=_number(data, "duration_s", path, 0.0),
            period_s=_number(data, "period_s", path, 300.0),
            duty=_number(data, "duty", path, 0.5),
            utilization=_number(data, "utilization", path, 0.9),
            mean_utilization=_number(data, "mean_utilization", path, 0.5),
            volatility=_number(data, "volatility", path, 0.15),
        )
        action._validate(path)
        return action

    def _validate(self, path: str) -> None:
        if self.start_s < 0:
            raise ScenarioError(f"{path}.start_s: must be non-negative")
        if self.kind in ("outage", "flapping") and not self.site:
            raise ScenarioError(f"{path}.site: required for kind {self.kind!r}")
        if self.kind == "outage" and self.duration_s <= 0:
            raise ScenarioError(f"{path}.duration_s: outage needs a positive duration")
        if self.kind == "flapping":
            if self.period_s <= 0:
                raise ScenarioError(f"{path}.period_s: must be positive")
            if not 0.0 < self.duty <= 1.0:
                raise ScenarioError(f"{path}.duty: must be in (0, 1], got {self.duty}")
            if self.end_s and self.end_s <= self.start_s:
                raise ScenarioError(f"{path}.end_s: must be after start_s")
        if self.kind == "degrade":
            if not self.link[0] or not self.link[1]:
                raise ScenarioError(f"{path}.link: required for kind 'degrade'")
            if not 0.0 <= self.utilization < 1.0:
                raise ScenarioError(f"{path}.utilization: must be in [0, 1)")
            if self.end_s and self.end_s <= self.start_s:
                raise ScenarioError(f"{path}.end_s: must be after start_s")
        if self.kind == "partition":
            if not self.sites:
                raise ScenarioError(f"{path}.sites: partition needs one side of the cut")
            if self.duration_s <= 0:
                raise ScenarioError(
                    f"{path}.duration_s: partition needs a positive duration"
                )
        if self.kind == "weather":
            if self.period_s <= 0:
                raise ScenarioError(f"{path}.period_s: must be positive")
            if not 0.0 <= self.mean_utilization < 1.0:
                raise ScenarioError(f"{path}.mean_utilization: must be in [0, 1)")
            if self.volatility < 0:
                raise ScenarioError(f"{path}.volatility: must be non-negative")
            if self.end_s and self.end_s <= self.start_s:
                raise ScenarioError(f"{path}.end_s: must be after start_s")

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "sites": list(self.sites),
            "link": list(self.link),
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "period_s": self.period_s,
            "duty": self.duty,
            "utilization": self.utilization,
            "mean_utilization": self.mean_utilization,
            "volatility": self.volatility,
        }


#: Keys ``quick`` overrides may set at the top level.
_QUICK_KEYS = ("horizon_s", "workload", "chaos", "slos")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete named scenario: grid + workload + chaos + SLOs.

    ``health_rules`` optionally overrides the GAE's default health-rule
    set (:func:`repro.observability.health.default_health_rules`) for
    the run — the scenario artifact then pins those rules' transitions.
    """

    name: str
    description: str
    grid: GridConfig
    workload: WorkloadShape = field(default_factory=WorkloadShape)
    chaos: Tuple[ChaosAction, ...] = ()
    slos: Tuple[SloSpec, ...] = ()
    health_rules: Tuple[HealthRule, ...] = ()
    policy: Dict[str, object] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    seed: int = 2005
    horizon_s: float = 2000.0
    quick: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # frozen dataclass: normalise via object.__setattr__ is avoided by
        # validating instead — constructors must hand in canonical types.
        if not self.name:
            raise ScenarioError("scenario.name: required")
        if self.horizon_s <= 0:
            raise ScenarioError("scenario.horizon_s: must be positive")

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        _require_keys(data, cls, "scenario")
        name = _string(data, "name", "scenario", "")
        if not name:
            raise ScenarioError("scenario.name: required")
        description = _string(data, "description", "scenario", "")
        if not description:
            raise ScenarioError("scenario.description: required (the cookbook is built from it)")
        if "grid" not in data:
            raise ScenarioError("scenario.grid: required")
        try:
            grid = GridConfig.from_dict(data["grid"])
        except ConfigError as exc:
            raise ScenarioError(f"scenario.{exc}") from exc
        chaos_data = data.get("chaos", [])
        if not isinstance(chaos_data, list):
            raise ScenarioError("scenario.chaos: expected a list")
        slos_data = data.get("slos", [])
        if not isinstance(slos_data, list):
            raise ScenarioError("scenario.slos: expected a list")
        rules_data = data.get("health_rules", [])
        if not isinstance(rules_data, list):
            raise ScenarioError("scenario.health_rules: expected a list")
        try:
            health_rules = tuple(
                HealthRule.from_dict(r, f"health_rules[{i}]")
                for i, r in enumerate(rules_data)
            )
        except HealthRuleError as exc:
            raise ScenarioError(f"scenario.{exc}") from exc
        tags = data.get("tags", [])
        if not isinstance(tags, list) or not all(isinstance(t, str) for t in tags):
            raise ScenarioError("scenario.tags: expected a list of strings")
        policy = data.get("policy", {})
        if not isinstance(policy, dict):
            raise ScenarioError("scenario.policy: expected an object")
        quick = data.get("quick", {})
        if not isinstance(quick, dict):
            raise ScenarioError("scenario.quick: expected an object")
        unknown_quick = set(quick) - set(_QUICK_KEYS)
        if unknown_quick:
            raise ScenarioError(
                f"scenario.quick: unknown keys {sorted(unknown_quick)} "
                f"(allowed: {', '.join(_QUICK_KEYS)})"
            )
        spec = cls(
            name=name,
            description=description,
            grid=grid,
            workload=WorkloadShape.from_dict(data.get("workload", {}), "workload"),
            chaos=tuple(
                ChaosAction.from_dict(c, f"chaos[{i}]")
                for i, c in enumerate(chaos_data)
            ),
            slos=tuple(
                SloSpec.from_dict(s, f"slos[{i}]") for i, s in enumerate(slos_data)
            ),
            health_rules=health_rules,
            policy=dict(policy),
            tags=tuple(tags),
            seed=_integer(data, "seed", "scenario", 2005),
            horizon_s=_number(data, "horizon_s", "scenario", 2000.0),
            quick=dict(quick),
        )
        spec._check_sites()
        if spec.quick:
            spec.effective(quick=True)  # fail at load time, not run time
        return spec

    def _check_sites(self) -> None:
        known = {site.name for site in self.grid.sites}
        for i, action in enumerate(self.chaos):
            for site in ((action.site,) if action.site else ()) + action.sites:
                if site not in known:
                    raise ScenarioError(
                        f"chaos[{i}].{'site' if site == action.site else 'sites'}: "
                        f"unknown site {site!r}"
                    )
            if action.kind == "degrade":
                for end in action.link:
                    if end not in known:
                        raise ScenarioError(f"chaos[{i}].link: unknown site {end!r}")

    @classmethod
    def from_json(cls, text_or_path: Union[str, Path]) -> "ScenarioSpec":
        """Parse a scenario from JSON text or a JSON file path."""
        raw = str(text_or_path)
        try:
            is_file = "\n" not in raw and len(raw) < 1024 and Path(raw).exists()
        except OSError:
            is_file = False
        if is_file:
            raw = Path(raw).read_text(encoding="utf-8")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict:
        """The canonical, JSON-serialisable dict (round-trips exactly)."""
        return {
            "name": self.name,
            "description": self.description,
            "grid": _grid_to_dict(self.grid),
            "workload": self.workload.to_dict(),
            "chaos": [c.to_dict() for c in self.chaos],
            "slos": [s.to_dict() for s in self.slos],
            "health_rules": [r.to_dict() for r in self.health_rules],
            "policy": dict(self.policy),
            "tags": list(self.tags),
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "quick": dict(self.quick),
        }

    def effective(self, quick: bool = False) -> "ScenarioSpec":
        """This spec, with its ``quick`` overrides applied when asked.

        ``quick.horizon_s`` replaces the horizon, ``quick.workload`` is
        merged field-by-field into the workload, and ``quick.chaos`` /
        ``quick.slos`` (when present) replace those lists wholesale —
        CI-sized chaos needs retimed windows and retuned thresholds, not
        scaled ones.
        """
        if not quick or not self.quick:
            return self
        data = self.to_dict()
        overrides = dict(self.quick)
        workload = overrides.pop("workload", None)
        if workload is not None:
            if not isinstance(workload, dict):
                raise ScenarioError("scenario.quick.workload: expected an object")
            data["workload"] = {**data["workload"], **workload}
        for key in ("chaos", "slos", "horizon_s"):
            if key in overrides:
                data[key] = overrides.pop(key)
        data["quick"] = {}
        return ScenarioSpec.from_dict(data)

    def steering_policy(self) -> SteeringPolicy:
        """The SteeringPolicy with this scenario's overrides applied."""
        try:
            return SteeringPolicy(**self.policy)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ScenarioError(f"scenario.policy: bad options: {exc}") from exc


def _grid_to_dict(grid: GridConfig) -> Dict:
    """GridConfig as the canonical dict ``GridConfig.from_dict`` accepts."""
    return {
        "sites": [
            {
                "name": s.name,
                "nodes": s.nodes,
                "cpus_per_node": s.cpus_per_node,
                "background_load": s.background_load,
                "cpu_hour_rate": s.cpu_hour_rate,
                "idle_hour_rate": s.idle_hour_rate,
            }
            for s in grid.sites
        ],
        "links": [
            {
                "a": link.a,
                "b": link.b,
                "capacity_mbps": link.capacity_mbps,
                "latency_s": link.latency_s,
                "utilization": link.utilization,
            }
            for link in grid.links
        ],
        "files": [
            {"name": f.name, "size_mb": f.size_mb, "at": f.at} for f in grid.files
        ],
        "flocking": [list(pair) for pair in grid.flocking],
        "probe_noise": grid.probe_noise,
    }


def first_chaos_start(chaos: Sequence[ChaosAction], horizon_s: float) -> float:
    """Earliest chaos onset, or *horizon_s* when the scenario is benign."""
    starts = [action.start_s for action in chaos]
    return min(starts) if starts else horizon_s


def last_chaos_end(chaos: Sequence[ChaosAction], horizon_s: float) -> float:
    """Latest chaos end (resolving open windows to the horizon)."""
    ends = []
    for action in chaos:
        if action.kind in ("outage", "partition"):
            ends.append(action.start_s + action.duration_s)
        else:
            ends.append(action.end_s if action.end_s > 0 else horizon_s)
    return min(max(ends), horizon_s) if ends else horizon_s
