"""Run scenarios end to end and write the ``SCENARIOS.json`` artifact.

:func:`run_scenario` builds the declared grid, wires the full GAE with
observability, schedules the workload's submissions and the chaos windows
on the simulation clock, runs to the horizon, and scores every SLO from
the journal.  :func:`run_campaign` does that for a list of scenarios and
assembles the schema-validated trajectory artifact (the scenario-layer
sibling of ``BENCH_estimators.json`` / ``LOAD_readpath.json``).

Determinism contract: everything in the artifact is derived from
simulation time, seeded RNG streams, and static spec fields — no wall
clocks, no host-dependent values beyond the interpreter version string —
so two calls with the same specs and seeds serialise bit-identically
(pinned by ``tests/property/test_properties_scenarios.py``).

The artifact's layout (schema v2 added the per-phase ``telemetry``
block and the ``health`` rule/transition record)::

    {
      "schema_version": 2,
      "generated_by": "gae-repro scenario run",
      "quick": false,
      "python": "3.12.3",
      "passed": true,
      "scenarios": [
        {
          "name": "site-outage-recovery",
          "seed": 2005, "horizon_s": 4000.0, "quick": false,
          "workload": {"shape": "dag_campaign", "owners": [...],
                        "jobs": 3, "tasks": 15},
          "chaos": [{"kind": "outage", "site": "siteB",
                      "start_s": 600.0, "end_s": 1200.0}],
          "fault_events": 2,
          "phases": [{"name": "baseline", "start_s": 0.0, "end_s": 600.0,
                       "events": {"submitted": 15, ...,
                                   "health-firing": 0}}, ...],
          "telemetry": {"window_s": 166.67, "windows_closed": 24,
                         "phases": [{"name": "baseline",
                                      "series": {"journal.completed.count":
                                                  [[166.67, 3.0], ...]}}, ...]},
          "health": {"rules": [{"name": "task-failures", "kind": "threshold",
                                 "severity": "critical", "state": "ok"}, ...],
                      "transitions": [{"rule": "task-failures", "to": "firing",
                                        "time_s": 833.3, "value": 2.0}, ...]},
          "slos": [{"slo": "completion_ratio >= 1", "metric": ...,
                     "value": 1.0, "samples": 15, "passed": true}, ...],
          "passed": true
        }, ...
      ]
    }

The telemetry block keeps only the journal-derived series (pure
functions of simulation time), windows bucketed into the phase that
contains the window's *start* — so the same-seed bit-identity contract
extends to the streamed aggregates.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import grid_from_config
from repro.gridsim.job import reset_id_counters
from repro.observability.journal import EventType, JournalEvent
from repro.scenarios.chaos import wire_chaos
from repro.scenarios.slo import score_slos
from repro.scenarios.spec import (
    ScenarioSpec,
    first_chaos_start,
    last_chaos_end,
)
from repro.scenarios.workload import build_submissions

__all__ = [
    "SCENARIOS_SCHEMA_VERSION",
    "ScenarioReportError",
    "run_campaign",
    "run_scenario",
    "validate_scenarios_file",
    "validate_scenarios_report",
    "write_scenarios_report",
]

SCENARIOS_SCHEMA_VERSION = 2

#: Event types counted per phase in the artifact.
_PHASE_EVENT_TYPES: Tuple[EventType, ...] = (
    EventType.SUBMITTED,
    EventType.DISPATCHED,
    EventType.STARTED,
    EventType.COMPLETED,
    EventType.FAILED,
    EventType.RECOVERED,
    EventType.MOVED,
    EventType.HEALTH_FIRING,
    EventType.HEALTH_RESOLVED,
)

#: Telemetry windows per scenario run: ``window_s = horizon_s / 24``, so
#: the boundary chain lands exactly on the horizon regardless of scale.
_TELEMETRY_WINDOWS = 24


class ScenarioReportError(ValueError):
    """Raised when a ``SCENARIOS.json`` report violates its schema."""


def _phase_bounds(spec: ScenarioSpec) -> List[Tuple[str, float, float]]:
    """``(name, start, end)`` for baseline / chaos / recovery phases."""
    start = first_chaos_start(spec.chaos, spec.horizon_s)
    end = last_chaos_end(spec.chaos, spec.horizon_s)
    phases: List[Tuple[str, float, float]] = []
    if start > 0:
        phases.append(("baseline", 0.0, start))
    if end > start:
        phases.append(("chaos", start, end))
    if spec.horizon_s > end:
        phases.append(("recovery", end, spec.horizon_s))
    if not phases:  # chaos spans [0, horizon] exactly
        phases.append(("chaos", 0.0, spec.horizon_s))
    return phases


def _phase_rows(
    spec: ScenarioSpec, events: Sequence[JournalEvent]
) -> List[Dict[str, object]]:
    bounds = _phase_bounds(spec)
    rows = []
    for i, (name, start, end) in enumerate(bounds):
        last = i == len(bounds) - 1
        window = [
            e for e in events
            if start <= e.time and (e.time < end or (last and e.time <= end))
        ]
        rows.append(
            {
                "name": name,
                "start_s": start,
                "end_s": end,
                "events": {
                    t.value: sum(1 for e in window if e.type is t)
                    for t in _PHASE_EVENT_TYPES
                },
            }
        )
    return rows


def _telemetry_rows(
    spec: ScenarioSpec, telemetry
) -> Dict[str, object]:
    """The per-phase ``telemetry`` block: journal-derived series only.

    Each closed window (a ``(t_end, value)`` sample) is bucketed into
    the phase containing its *start* ``t_end - window_s``; the final
    phase claims its inclusive end so the horizon boundary is kept.
    """
    bounds = _phase_bounds(spec)
    phases: List[Dict[str, object]] = [
        {"name": name, "series": {}} for name, _, _ in bounds
    ]

    def bucket(t_start: float) -> Dict[str, object]:
        for row, (_, lo, hi) in zip(phases, bounds):
            if lo <= t_start < hi:
                return row
        return phases[-1]

    for name in telemetry.names():
        if not name.startswith("journal."):
            continue
        for t, v in telemetry.series(name).samples():
            row = bucket(t - telemetry.window_s)
            row["series"].setdefault(name, []).append([t, v])
    return {
        "window_s": telemetry.window_s,
        "windows_closed": telemetry.windows_closed,
        "phases": phases,
    }


def _health_rows(health) -> Dict[str, object]:
    """The ``health`` block: final rule states plus every transition."""
    snap = health.snapshot()
    return {
        "rules": [
            {
                "name": rule["name"],
                "kind": rule["kind"],
                "severity": rule["severity"],
                "state": rule["state"],
            }
            for rule in snap["rules"]
        ],
        "transitions": health.transitions(),
    }


def run_scenario(
    spec: ScenarioSpec,
    quick: bool = False,
    on_complete: Optional[Callable[[object, Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Execute one scenario and return its artifact entry.

    ``quick`` applies the spec's ``quick`` overrides (CI-sized run).
    ``on_complete(gae, entry)``, when given, runs after the entry is
    assembled but while the GAE is still in scope — ``gae-repro health``
    uses it to export telemetry and print the live health snapshot.
    """
    from repro.gae import build_gae

    eff = spec.effective(quick)
    reset_id_counters()
    grid = grid_from_config(eff.grid, seed=eff.seed)
    gae = build_gae(
        grid,
        policy=eff.steering_policy(),
        observability=True,
        telemetry_window_s=eff.horizon_s / _TELEMETRY_WINDOWS,
        health_rules=list(eff.health_rules) or None,
    )
    for owner in eff.workload.owners():
        gae.add_user(owner, "scenario")

    submissions = build_submissions(eff.workload, eff.seed, eff.horizon_s)
    submitted: List[str] = []
    for sub in submissions:
        gae.sim.at(
            sub.time_s,
            lambda job=sub.job: gae.scheduler.submit_job(job),
            label="scenario.submit",
        )
        submitted.extend(task.task_id for task in sub.job.tasks)

    controller = wire_chaos(gae, eff.chaos, eff.horizon_s, eff.seed)
    gae.start()
    grid.run_until(eff.horizon_s)
    gae.stop()
    controller.stop()

    events = gae.observability.journal.events()
    db = gae.estimators.estimate_db
    estimates = {tid: db.lookup(tid) for tid in submitted if db.has(tid)}
    slos = score_slos(eff.slos, events, estimates, submitted, eff.horizon_s)
    completed = {
        e.task_id for e in events if e.type is EventType.COMPLETED
    } & set(submitted)

    entry: Dict[str, object] = {
        "name": spec.name,
        "seed": eff.seed,
        "horizon_s": eff.horizon_s,
        "quick": bool(quick),
        "tags": list(spec.tags),
        "workload": {
            "shape": eff.workload.shape,
            "owners": eff.workload.owners(),
            "jobs": len(submissions),
            "tasks": len(submitted),
            "tasks_completed": len(completed),
        },
        "chaos": controller.resolved,
        "fault_events": len(controller.fault_events),
        "phases": _phase_rows(eff, events),
        "telemetry": _telemetry_rows(eff, gae.observability.telemetry),
        "health": _health_rows(gae.observability.health),
        "slos": slos,
        "passed": all(v["passed"] for v in slos),
    }
    if on_complete is not None:
        on_complete(gae, entry)
    return entry


def run_campaign(
    specs: Sequence[ScenarioSpec],
    quick: bool = False,
    echo: Callable[[str], None] = lambda message: None,
) -> Dict[str, object]:
    """Run every scenario and assemble the full ``SCENARIOS.json`` report."""
    if not specs:
        raise ValueError("run_campaign needs at least one scenario")
    entries = []
    for spec in specs:
        echo(f"scenario {spec.name}: running (quick={quick})")
        entry = run_scenario(spec, quick=quick)
        verdict = "PASS" if entry["passed"] else "FAIL"
        echo(f"scenario {spec.name}: {verdict} ({len(entry['slos'])} SLOs)")
        entries.append(entry)
    report = {
        "schema_version": SCENARIOS_SCHEMA_VERSION,
        "generated_by": "gae-repro scenario run",
        "quick": bool(quick),
        "python": platform.python_version(),
        "scenarios": entries,
        "passed": all(e["passed"] for e in entries),
    }
    validate_scenarios_report(report)
    return report


def write_scenarios_report(report: Dict[str, object], path: Union[str, Path]) -> Path:
    """Validate and write the report (stable key order, trailing newline)."""
    validate_scenarios_report(report)
    out = Path(path)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return out


# ----------------------------------------------------------------------
# report validation
# ----------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioReportError(message)


def validate_scenarios_report(report: Dict[str, object]) -> None:
    """Validate a ``SCENARIOS.json`` report against the v2 schema."""
    _require(isinstance(report, dict), "report must be a JSON object")
    for key, kind in (
        ("schema_version", int), ("generated_by", str), ("quick", bool),
        ("python", str), ("scenarios", list), ("passed", bool),
    ):
        _require(key in report, f"missing top-level key {key!r}")
        _require(isinstance(report[key], kind),
                 f"top-level {key!r} must be {kind.__name__}")
    _require(report["schema_version"] == SCENARIOS_SCHEMA_VERSION,
             f"schema_version must be {SCENARIOS_SCHEMA_VERSION}")
    scenarios = report["scenarios"]
    _require(len(scenarios) >= 1, "report must contain at least one scenario")
    for i, entry in enumerate(scenarios):
        _validate_entry(entry, f"scenarios[{i}]")
    _require(
        report["passed"] == all(e["passed"] for e in scenarios),
        "top-level passed must equal the conjunction of scenario verdicts",
    )


def _validate_entry(entry: object, path: str) -> None:
    _require(isinstance(entry, dict), f"{path} must be an object")
    for key, kind in (
        ("name", str), ("seed", int), ("horizon_s", (int, float)),
        ("quick", bool), ("tags", list), ("workload", dict), ("chaos", list),
        ("fault_events", int), ("phases", list), ("telemetry", dict),
        ("health", dict), ("slos", list), ("passed", bool),
    ):
        _require(key in entry, f"{path} missing key {key!r}")
        _require(isinstance(entry[key], kind), f"{path}.{key} has the wrong type")
    _require(entry["name"] != "", f"{path}.name must be non-empty")
    _require(entry["horizon_s"] > 0, f"{path}.horizon_s must be positive")
    workload = entry["workload"]
    for key in ("shape", "owners", "jobs", "tasks", "tasks_completed"):
        _require(key in workload, f"{path}.workload missing {key!r}")
    _require(workload["tasks"] >= 1, f"{path}.workload.tasks must be >= 1")
    _require(
        0 <= workload["tasks_completed"] <= workload["tasks"],
        f"{path}.workload.tasks_completed out of range",
    )
    phases = entry["phases"]
    _require(len(phases) >= 1, f"{path}.phases must be non-empty")
    previous_end = 0.0
    for j, phase in enumerate(phases):
        ppath = f"{path}.phases[{j}]"
        _require(isinstance(phase, dict), f"{ppath} must be an object")
        for key in ("name", "start_s", "end_s", "events"):
            _require(key in phase, f"{ppath} missing {key!r}")
        _require(phase["start_s"] == previous_end,
                 f"{ppath} must start where the previous phase ended")
        _require(phase["end_s"] > phase["start_s"],
                 f"{ppath} must have a positive span")
        previous_end = phase["end_s"]
        events = phase["events"]
        for event_type in _PHASE_EVENT_TYPES:
            _require(
                isinstance(events.get(event_type.value), int),
                f"{ppath}.events missing count for {event_type.value!r}",
            )
    _require(previous_end == entry["horizon_s"],
             f"{path}.phases must cover exactly [0, horizon_s]")
    _validate_telemetry(entry["telemetry"], [p["name"] for p in phases],
                        f"{path}.telemetry")
    _validate_health(entry["health"], f"{path}.health")
    slos = entry["slos"]
    for j, verdict in enumerate(slos):
        vpath = f"{path}.slos[{j}]"
        _require(isinstance(verdict, dict), f"{vpath} must be an object")
        for key, kind in (
            ("slo", str), ("metric", str), ("op", str),
            ("threshold", (int, float)), ("value", (int, float)),
            ("samples", int), ("passed", bool),
        ):
            _require(key in verdict, f"{vpath} missing {key!r}")
            _require(isinstance(verdict[key], kind), f"{vpath}.{key} has the wrong type")
        _require(verdict["op"] in ("<=", ">="), f"{vpath}.op must be <= or >=")
    _require(
        entry["passed"] == all(v["passed"] for v in slos),
        f"{path}.passed must equal the conjunction of its SLO verdicts",
    )


def _validate_telemetry(
    block: object, phase_names: List[object], path: str
) -> None:
    _require(isinstance(block, dict), f"{path} must be an object")
    for key in ("window_s", "windows_closed", "phases"):
        _require(key in block, f"{path} missing key {key!r}")
    _require(
        isinstance(block["window_s"], (int, float))
        and not isinstance(block["window_s"], bool)
        and block["window_s"] > 0,
        f"{path}.window_s must be a positive number",
    )
    _require(
        isinstance(block["windows_closed"], int)
        and not isinstance(block["windows_closed"], bool)
        and block["windows_closed"] >= 0,
        f"{path}.windows_closed must be a non-negative integer",
    )
    telemetry_phases = block["phases"]
    _require(isinstance(telemetry_phases, list), f"{path}.phases must be a list")
    _require(
        [p.get("name") if isinstance(p, dict) else None for p in telemetry_phases]
        == phase_names,
        f"{path}.phases must mirror the entry's phase names, in order",
    )
    for j, phase in enumerate(telemetry_phases):
        ppath = f"{path}.phases[{j}]"
        series = phase.get("series")
        _require(isinstance(series, dict), f"{ppath}.series must be an object")
        for name, samples in series.items():
            spath = f"{ppath}.series[{name!r}]"
            _require(
                isinstance(name, str) and name.startswith("journal."),
                f"{spath}: only journal-derived series belong in the artifact",
            )
            _require(
                isinstance(samples, list) and len(samples) >= 1,
                f"{spath} must be a non-empty list",
            )
            previous = None
            for sample in samples:
                _require(
                    isinstance(sample, list) and len(sample) == 2
                    and all(
                        isinstance(x, (int, float)) and not isinstance(x, bool)
                        for x in sample
                    ),
                    f"{spath} samples must be [time_s, value] pairs",
                )
                _require(
                    previous is None or sample[0] > previous,
                    f"{spath} sample times must be strictly increasing",
                )
                previous = sample[0]


def _validate_health(block: object, path: str) -> None:
    _require(isinstance(block, dict), f"{path} must be an object")
    for key in ("rules", "transitions"):
        _require(key in block, f"{path} missing key {key!r}")
        _require(isinstance(block[key], list), f"{path}.{key} must be a list")
    names = set()
    for j, rule in enumerate(block["rules"]):
        rpath = f"{path}.rules[{j}]"
        _require(isinstance(rule, dict), f"{rpath} must be an object")
        for key in ("name", "kind", "severity", "state"):
            _require(isinstance(rule.get(key), str), f"{rpath}.{key} must be a string")
        _require(rule["state"] in ("ok", "firing"),
                 f"{rpath}.state must be 'ok' or 'firing'")
        names.add(rule["name"])
    previous_time = None
    for j, transition in enumerate(block["transitions"]):
        tpath = f"{path}.transitions[{j}]"
        _require(isinstance(transition, dict), f"{tpath} must be an object")
        _require(transition.get("rule") in names,
                 f"{tpath}.rule must name a declared rule")
        _require(transition.get("to") in ("firing", "resolved"),
                 f"{tpath}.to must be 'firing' or 'resolved'")
        time_s = transition.get("time_s")
        _require(
            isinstance(time_s, (int, float)) and not isinstance(time_s, bool),
            f"{tpath}.time_s must be a number",
        )
        _require(previous_time is None or time_s >= previous_time,
                 f"{tpath}.time_s must be non-decreasing")
        previous_time = time_s


def validate_scenarios_file(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate a ``SCENARIOS.json`` file; returns the report."""
    try:
        report = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ScenarioReportError(f"cannot read report {path}: {exc}") from exc
    validate_scenarios_report(report)
    return report
