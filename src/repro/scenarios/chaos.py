"""Compile a chaos schedule onto a live GAE's simulation clock.

Each :class:`~repro.scenarios.spec.ChaosAction` becomes concrete events:

- ``outage`` / ``flapping`` → windows on one shared
  :class:`~repro.gridsim.faults.OutageScheduler` (merged half-open
  windows, the double-fire-safe boundary semantics pinned there);
- ``degrade`` → raise one link's background utilization for a window,
  restoring whatever value the link had when the window opened (weather
  may have moved it since wiring);
- ``partition`` → every link crossing the declared cut is saturated to
  99 % utilization for the window — traffic still crawls through, so
  transfer-time estimates explode exactly the way steering should react
  to, then the pre-partition utilizations are restored;
- ``weather`` → a :class:`~repro.gridsim.network.NetworkWeather`
  mean-reverting walk over its window, seeded from the scenario seed and
  the action's position (deterministic per scenario).

``wire_chaos`` must run before the simulation starts (it schedules
absolute-time events); the returned :class:`ChaosController` exposes the
fault-event log and the resolved windows for the artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gridsim.faults import FaultEvent, OutageScheduler
from repro.gridsim.network import Network, NetworkWeather
from repro.scenarios.spec import ChaosAction, ScenarioError

__all__ = ["ChaosController", "wire_chaos"]

#: Utilization a partitioned link is pinned at (must stay < 1.0).
PARTITION_UTILIZATION = 0.99


@dataclass
class ChaosController:
    """The live handles behind a wired chaos schedule."""

    outages: Optional[OutageScheduler] = None
    weathers: List[NetworkWeather] = field(default_factory=list)
    resolved: List[Dict[str, object]] = field(default_factory=list)

    @property
    def fault_events(self) -> List[FaultEvent]:
        """Failure/repair events the outage scheduler injected."""
        return list(self.outages.events) if self.outages is not None else []

    def stop(self) -> None:
        """Cancel any still-running weather walks."""
        for weather in self.weathers:
            weather.stop()


def _crossing_links(network: Network, cut: Sequence[str]) -> List[Tuple[str, str]]:
    """Endpoint pairs of every link with exactly one end inside *cut*."""
    inside = set(cut)
    pairs = []
    for a, b in sorted(network._graph.edges):
        if (a in inside) != (b in inside):
            pairs.append((a, b))
    return pairs


def wire_chaos(gae, chaos: Sequence[ChaosAction], horizon_s: float, seed: int) -> ChaosController:
    """Schedule every chaos action; returns the controller for inspection."""
    sim = gae.sim
    network = gae.grid.network
    controller = ChaosController()

    def resolve_end(action: ChaosAction) -> float:
        return action.end_s if action.end_s > 0 else horizon_s

    for index, action in enumerate(chaos):
        if action.kind in ("outage", "flapping"):
            if controller.outages is None:
                controller.outages = OutageScheduler(sim)
            try:
                service = gae.grid.execution_services[action.site]
            except KeyError:
                raise ScenarioError(f"chaos[{index}].site: unknown site {action.site!r}")
            if action.kind == "outage":
                end = action.start_s + action.duration_s
                controller.outages.add_outage(service, action.start_s, action.duration_s)
            else:
                end = resolve_end(action)
                controller.outages.add_flapping(
                    service, action.start_s, end, action.period_s, action.duty
                )
            controller.resolved.append(
                {"kind": action.kind, "site": action.site,
                 "start_s": action.start_s, "end_s": end}
            )
        elif action.kind == "degrade":
            end = resolve_end(action)
            a, b = action.link
            network.link_between(a, b)  # fail at wiring time if absent
            saved: List[float] = []

            def begin(a=a, b=b, u=action.utilization, saved=saved):
                saved.append(network.link_between(a, b).utilization)
                network.set_utilization(a, b, u)

            def finish(a=a, b=b, saved=saved):
                if saved:
                    network.set_utilization(a, b, saved.pop())

            sim.at(action.start_s, begin, label=f"chaos.degrade:{a}-{b}")
            sim.at(end, finish, label=f"chaos.degrade-end:{a}-{b}")
            controller.resolved.append(
                {"kind": "degrade", "link": [a, b],
                 "start_s": action.start_s, "end_s": end,
                 "utilization": action.utilization}
            )
        elif action.kind == "partition":
            end = action.start_s + action.duration_s
            pairs = _crossing_links(network, action.sites)
            if not pairs:
                raise ScenarioError(
                    f"chaos[{index}].sites: partition cuts no links "
                    f"({sorted(action.sites)} vs the grid topology)"
                )
            saved_by_pair: Dict[Tuple[str, str], float] = {}

            def begin_cut(pairs=pairs, saved=saved_by_pair):
                for a, b in pairs:
                    saved[(a, b)] = network.link_between(a, b).utilization
                    network.set_utilization(a, b, PARTITION_UTILIZATION)

            def end_cut(pairs=pairs, saved=saved_by_pair):
                for a, b in pairs:
                    if (a, b) in saved:
                        network.set_utilization(a, b, saved.pop((a, b)))

            sim.at(action.start_s, begin_cut, label="chaos.partition")
            sim.at(end, end_cut, label="chaos.partition-end")
            controller.resolved.append(
                {"kind": "partition", "sites": sorted(action.sites),
                 "links_cut": [list(p) for p in pairs],
                 "start_s": action.start_s, "end_s": end}
            )
        elif action.kind == "weather":
            end = resolve_end(action)
            weather = NetworkWeather(
                sim,
                network,
                rng=np.random.default_rng((seed, 101, index)),
                period_s=action.period_s,
                mean_utilization=action.mean_utilization,
                volatility=action.volatility,
            )
            controller.weathers.append(weather)
            if action.start_s > 0:
                sim.at(action.start_s, weather.start, label="chaos.weather")
            else:
                weather.start()
            if end < horizon_s:
                sim.at(end, weather.stop, label="chaos.weather-end")
            controller.resolved.append(
                {"kind": "weather", "start_s": action.start_s, "end_s": end,
                 "period_s": action.period_s,
                 "mean_utilization": action.mean_utilization,
                 "volatility": action.volatility}
            )
        else:  # pragma: no cover - ChaosAction.from_dict rejects unknown kinds
            raise ScenarioError(f"unknown chaos kind {action.kind!r}")

    if controller.outages is not None:
        controller.outages.start()
    return controller
