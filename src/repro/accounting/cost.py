"""Cost model: what running a task at a site will cost.

The Paragon trace records "the rate of charge for CPU hours and idle
hours"; each :class:`~repro.gridsim.site.Site` carries those two rates.  A
task's cost at a site is

    cpu_hours * cpu_hour_rate + idle_hours * idle_hour_rate

where CPU hours come from the runtime estimate and idle hours from the
queue-time estimate (a queued task reserves its slot allocation).  The
steering optimizer ranks sites by this figure when the user asks for
*cheap* execution (§4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.gridsim.site import ChargeRates, Site


@dataclass(frozen=True)
class CostEstimate:
    """Estimated cost of one task at one site."""

    site_name: str
    cpu_hours: float
    idle_hours: float
    cpu_cost: float
    idle_cost: float

    @property
    def total(self) -> float:
        """Total estimated charge."""
        return self.cpu_cost + self.idle_cost


class CostModel:
    """Computes task costs from site charge rates."""

    def __init__(self) -> None:
        self._rates: Dict[str, ChargeRates] = {}

    def register_site(self, site: Site) -> None:
        """Record a site's charge rates."""
        self._rates[site.name] = site.charge_rates

    def register_rates(self, site_name: str, rates: ChargeRates) -> None:
        """Record rates directly (tests, external sites)."""
        self._rates[site_name] = rates

    def rates(self, site_name: str) -> ChargeRates:
        """Charge rates of a site (KeyError when unknown)."""
        return self._rates[site_name]

    def sites(self) -> List[str]:
        """Site names with known rates, sorted."""
        return sorted(self._rates)

    def estimate(
        self,
        site_name: str,
        runtime_s: float,
        queue_time_s: float = 0.0,
        nodes: int = 1,
    ) -> CostEstimate:
        """Cost of *nodes* × *runtime_s* CPU plus queued idle time."""
        if runtime_s < 0 or queue_time_s < 0:
            raise ValueError("times must be non-negative")
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        rates = self.rates(site_name)
        cpu_hours = nodes * runtime_s / 3600.0
        idle_hours = nodes * queue_time_s / 3600.0
        return CostEstimate(
            site_name=site_name,
            cpu_hours=cpu_hours,
            idle_hours=idle_hours,
            cpu_cost=cpu_hours * rates.cpu_hour,
            idle_cost=idle_hours * rates.idle_hour,
        )

    def cheapest_site(
        self,
        runtime_by_site: Dict[str, float],
        queue_time_by_site: Optional[Dict[str, float]] = None,
        nodes: int = 1,
        exclude: Iterable[str] = (),
    ) -> CostEstimate:
        """Lowest-total-cost site among those with runtime estimates.

        ``runtime_by_site`` maps site name → estimated runtime seconds
        (produced by the estimator service); queue times default to 0.
        Ties break alphabetically for determinism.
        """
        excluded = set(exclude)
        queue_time_by_site = queue_time_by_site or {}
        candidates = [
            self.estimate(
                name,
                runtime_s=runtime,
                queue_time_s=queue_time_by_site.get(name, 0.0),
                nodes=nodes,
            )
            for name, runtime in sorted(runtime_by_site.items())
            if name in self._rates and name not in excluded
        ]
        if not candidates:
            raise ValueError("no site with known charge rates among candidates")
        return min(candidates, key=lambda c: (c.total, c.site_name))
