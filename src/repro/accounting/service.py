"""The Quota and Accounting Service (Clarens-registrable facade).

This is the service the steering optimizer calls "to find the cheapest site
for job execution" (§4.2.2).  It combines the :class:`CostModel` (what a
task costs where) with the :class:`QuotaManager` (whether the user can pay)
and exposes wire-friendly methods.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.accounting.cost import CostModel
from repro.accounting.quota import QuotaManager
from repro.clarens.readcache import ReadPolicy
from repro.clarens.registry import clarens_method
from repro.gridsim.site import Site

#: Rates, cost estimates, and balances all change only through quota
#: mutations or site (re)registration — both bump the "accounting" epoch.
_READS = ReadPolicy(depends_on=("accounting",))


class QuotaAccountingService:
    """Cheapest-site queries plus quota bookkeeping."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        quotas: Optional[QuotaManager] = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.quotas = quotas if quotas is not None else QuotaManager()

    def register_site(self, site: Site) -> None:
        """Teach the cost model a site's charge rates."""
        self.cost_model.register_site(site)
        # New rates can change every cost answer: bump the epoch.
        self.quotas._notify("register_site")

    # ------------------------------------------------------------------
    # Clarens-exposed methods
    # ------------------------------------------------------------------
    @clarens_method(cache=_READS)
    def site_rates(self, site_name: str) -> Dict[str, float]:
        """Charge rates of a site as a wire struct."""
        rates = self.cost_model.rates(site_name)
        return {"cpu_hour": rates.cpu_hour, "idle_hour": rates.idle_hour}

    @clarens_method(cache=_READS)
    def estimate_cost(
        self, site_name: str, runtime_s: float, queue_time_s: float = 0.0, nodes: int = 1
    ) -> Dict[str, float]:
        """Estimated cost of a task at one site."""
        est = self.cost_model.estimate(
            site_name, runtime_s=runtime_s, queue_time_s=queue_time_s, nodes=nodes
        )
        return {
            "site": est.site_name,  # type: ignore[dict-item]
            "cpu_cost": est.cpu_cost,
            "idle_cost": est.idle_cost,
            "total": est.total,
        }

    @clarens_method(cache=_READS)
    def cheapest_site(
        self,
        runtime_by_site: Dict[str, float],
        queue_time_by_site: Optional[Dict[str, float]] = None,
        nodes: int = 1,
    ) -> Dict[str, object]:
        """The lowest-cost site given per-site runtime estimates.

        This is the optimizer's "cheap" preference query (§4.2.2).
        """
        est = self.cost_model.cheapest_site(
            runtime_by_site, queue_time_by_site=queue_time_by_site, nodes=nodes
        )
        return {"site": est.site_name, "total": est.total}

    @clarens_method(cache=_READS)
    def quota_available(self, user: str) -> float:
        """Spendable balance for a user."""
        return self.quotas.available(user)

    @clarens_method
    def charge_completed_task(
        self, user: str, site_name: str, cpu_seconds: float, nodes: int = 1, note: str = ""
    ) -> float:
        """Charge actual consumed CPU for a completed task; returns amount.

        Reserve-then-commit in one step for callers that did not
        pre-reserve (the common path in the GAE wiring).
        """
        est = self.cost_model.estimate(site_name, runtime_s=cpu_seconds, nodes=nodes)
        res = self.quotas.reserve(user, 0.0, note=note)
        self.quotas.commit(res.reservation_id, est.total, note=note or f"task at {site_name}")
        return est.total
