"""Per-user quotas with reserve/commit semantics.

A user's quota is a spendable balance.  Submitting a job *reserves* its
estimated cost (so concurrent submissions cannot overdraw); completion
*commits* the actual cost and releases the difference; failure or kill
*releases* the whole reservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


class QuotaError(RuntimeError):
    """Raised on overdrawn quotas and unknown users/reservations."""


@dataclass
class UserQuota:
    """One user's balance and live reservations."""

    user: str
    limit: float
    spent: float = 0.0
    reserved: float = 0.0

    @property
    def available(self) -> float:
        """Balance left to reserve against."""
        return self.limit - self.spent - self.reserved


@dataclass(frozen=True)
class Reservation:
    """A held slice of a user's quota."""

    reservation_id: int
    user: str
    amount: float
    note: str = ""


class QuotaManager:
    """Tracks quotas, reservations, and the charge ledger."""

    def __init__(self) -> None:
        self._quotas: Dict[str, UserQuota] = {}
        self._reservations: Dict[int, Reservation] = {}
        self._next_id = 1
        self.ledger: List[Tuple[str, float, str]] = []  # (user, amount, note)
        #: Called with the mutation kind ("set_quota" | "reserve" |
        #: "commit" | "release") after each balance change — the
        #: read-cache "accounting" epoch hangs here.
        self.listeners: List = []

    def _allocate_id(self) -> int:
        value = self._next_id
        self._next_id += 1
        return value

    def _notify(self, kind: str) -> None:
        for listener in self.listeners:
            listener(kind)

    # ------------------------------------------------------------------
    def set_quota(self, user: str, limit: float) -> None:
        """Create or resize a user's quota (spent/reserved are preserved)."""
        if limit < 0:
            raise QuotaError(f"quota limit must be non-negative, got {limit}")
        if user in self._quotas:
            self._quotas[user].limit = limit
        else:
            self._quotas[user] = UserQuota(user=user, limit=limit)
        self._notify("set_quota")

    def quota(self, user: str) -> UserQuota:
        """A user's quota record (QuotaError when none was set)."""
        try:
            return self._quotas[user]
        except KeyError:
            raise QuotaError(f"no quota set for user {user!r}") from None

    def available(self, user: str) -> float:
        """Spendable balance for a user."""
        return self.quota(user).available

    # ------------------------------------------------------------------
    def reserve(self, user: str, amount: float, note: str = "") -> Reservation:
        """Hold *amount* against the user's quota.

        Raises :class:`QuotaError` when the available balance is
        insufficient — the signal the steering service surfaces to the user
        before submission.
        """
        if amount < 0:
            raise QuotaError(f"reservation amount must be non-negative, got {amount}")
        q = self.quota(user)
        if amount > q.available:
            raise QuotaError(
                f"user {user!r} quota exceeded: need {amount:.2f}, "
                f"available {q.available:.2f}"
            )
        q.reserved += amount
        res = Reservation(reservation_id=self._allocate_id(), user=user, amount=amount, note=note)
        self._reservations[res.reservation_id] = res
        self._notify("reserve")
        return res

    def _take(self, reservation_id: int) -> Reservation:
        try:
            return self._reservations.pop(reservation_id)
        except KeyError:
            raise QuotaError(f"unknown reservation {reservation_id}") from None

    def commit(self, reservation_id: int, actual_amount: float, note: str = "") -> None:
        """Convert a reservation into a real charge of *actual_amount*.

        The actual charge may exceed the reservation (estimates are
        imperfect); the excess is charged regardless, possibly driving the
        balance negative — matching real accounting systems that bill
        after the fact.
        """
        if actual_amount < 0:
            raise QuotaError(f"charge must be non-negative, got {actual_amount}")
        res = self._take(reservation_id)
        q = self.quota(res.user)
        q.reserved -= res.amount
        q.spent += actual_amount
        self.ledger.append((res.user, actual_amount, note or res.note))
        self._notify("commit")

    def release(self, reservation_id: int) -> None:
        """Drop a reservation without charging (failed/killed job)."""
        res = self._take(reservation_id)
        self.quota(res.user).reserved -= res.amount
        self._notify("release")

    def spent(self, user: str) -> float:
        """Total committed charges for a user."""
        return self.quota(user).spent

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Quotas, live reservations, id allocator, and ledger as JSON-safe data."""
        return {
            "quotas": [
                [q.user, q.limit, q.spent, q.reserved]
                for q in self._quotas.values()
            ],
            "reservations": [
                [r.reservation_id, r.user, r.amount, r.note]
                for r in self._reservations.values()
            ],
            "next_reservation_id": self._next_id,
            "ledger": [[user, amount, note] for user, amount, note in self.ledger],
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Replace all quota state from :meth:`export_state` output.

        The id allocator continues from the exported value so restored
        reservations never collide with new ones.
        """
        self._quotas = {
            user: UserQuota(user=user, limit=limit, spent=spent, reserved=reserved)
            for user, limit, spent, reserved in state["quotas"]  # type: ignore[union-attr]
        }
        self._reservations = {
            int(rid): Reservation(
                reservation_id=int(rid), user=user, amount=amount, note=note
            )
            for rid, user, amount, note in state["reservations"]  # type: ignore[union-attr]
        }
        self._next_id = int(state["next_reservation_id"])  # type: ignore[arg-type]
        self.ledger = [
            (user, amount, note) for user, amount, note in state["ledger"]  # type: ignore[union-attr]
        ]
        self._notify("import_state")
