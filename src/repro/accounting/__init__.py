"""Quota and Accounting Service.

The paper's steering optimizer "contacts the Quota and Accounting Service
(currently, just a trivial prototype) to find the cheapest site for job
execution" (§4.2.2).  We build the full version the prototype gestured at:

- :mod:`repro.accounting.cost` — per-site charge rates (CPU-hour and
  idle-hour, the exact fields of the Paragon accounting trace) and job cost
  estimation;
- :mod:`repro.accounting.quota` — per-user quotas with reserve/commit
  semantics;
- :mod:`repro.accounting.service` — the Clarens-registrable
  :class:`QuotaAccountingService` answering ``cheapest_site`` queries and
  recording charges for completed work.
"""

from repro.accounting.cost import CostEstimate, CostModel
from repro.accounting.quota import QuotaError, QuotaManager, UserQuota
from repro.accounting.service import QuotaAccountingService

__all__ = [
    "CostEstimate",
    "CostModel",
    "QuotaAccountingService",
    "QuotaError",
    "QuotaManager",
    "UserQuota",
]
