#!/usr/bin/env python
"""Incremental-checkpoint replay smoke test: outage, hard-kill, tail replay.

The event-sourced core's CI gate.  Four phases, the third a *genuine*
process death:

1. **reference** — run the demo workload with a deterministic siteB
   outage window, uninterrupted, to completion; record every task's
   final state, its ``jobmon.job_status`` answer, and the final
   ``system.observability`` report;
2. **victim** — a child process runs the same workload, writes a *full*
   checkpoint at t=155 s and an *incremental* delta (journal tail +
   runtime state, no consumer namespaces) at t=205 s, then dies via
   ``os._exit`` — no cleanup, nothing survives but the two files;
3. **incremental restore** — the parent rehydrates a GAE with
   ``restore_incremental(base, delta)``: consumer state loads from the
   base snapshot and the journal tail is folded quietly on top;
4. **full restore** — the parent also restores the victim's full
   t=205 s checkpoint with ``restore_gae`` as a control.

Both restored systems run to completion and every recorded answer must
be bit-identical to the reference run's.  The reference run writes the
same checkpoints (to throwaway paths) at the same instants, so barrier
bookkeeping is symmetric across all three runs.

CI runs this on every supported Python version::

    PYTHONPATH=src python tools/replay_smoke.py

Exit status 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_ROOT))

OUTAGE_START = 60.0
OUTAGE_DURATION = 50.0  # siteB down for [60, 110): fully before the base barrier
T_BASE = 155.0  # full checkpoint (not a multiple of any periodic 20/30/60 s)
T_DELTA = 205.0  # incremental delta barrier
CRASH_EXIT_CODE = 86  # distinctive, so a clean exit can't masquerade as a crash


def outage_workload():
    """The demo workload plus a deterministic siteB outage window."""
    from repro.cli import checkpoint_demo_workload
    from repro.gridsim.faults import OutageScheduler

    gae, job = checkpoint_demo_workload()
    outages = OutageScheduler(gae.sim)
    outages.add_outage(
        gae.grid.execution_services["siteB"], OUTAGE_START, OUTAGE_DURATION
    )
    outages.start()
    return gae, job


T_HORIZON = 20000.0  # absolute, so all three runs close identical windows


def final_answers(gae) -> dict:
    """Run to completion; the answers every phase must agree on."""
    gae.sim.run_until(T_HORIZON)
    gae.stop()
    gae.sim.run()
    states = {
        task.task_id: task.state.value
        for job in gae.scheduler.jobs()
        for task in job.tasks
    }
    with gae.client("demo", "demo") as client:
        status = {t: client.call("jobmon.job_status", t) for t in sorted(states)}
        observability = client.call("system.observability")
    return {"states": states, "status": status, "observability": observability}


def write_checkpoints(gae, base: str, delta: str) -> "object":
    """Arm the full-then-incremental checkpoint pair on the barrier clock."""
    from repro.store.checkpoint import Checkpointer

    ckpt = Checkpointer(gae)
    ckpt.checkpoint_at(T_BASE, base)
    ckpt.checkpoint_incremental_at(T_DELTA, delta)
    return ckpt


def run_victim(base: str, delta: str) -> None:
    """Checkpoint the outage workload mid-flight, then die without cleanup."""
    gae, _ = outage_workload()
    ckpt = write_checkpoints(gae, base, delta)
    gae.sim.run_until(T_DELTA)
    info = ckpt.last_info
    if info is None or not info.incremental:
        os._exit(2)  # delta never fired: distinguishable failure
    sys.stdout.flush()
    os._exit(CRASH_EXIT_CODE)  # the "kill": skips atexit, GC, everything


def diff(label: str, reference: dict, candidate: dict) -> bool:
    """Print any mismatch between two final-answer records."""
    ok = True
    for key in ("states", "status", "observability"):
        if reference[key] != candidate[key]:
            ok = False
            print(f"FAIL: {label} diverged from the reference in {key!r}",
                  file=sys.stderr)
            if key != "observability":
                for item in sorted(set(reference[key]) | set(candidate[key])):
                    a, b = reference[key].get(item), candidate[key].get(item)
                    if a != b:
                        print(f"  {item}: reference={a!r} {label}={b!r}",
                              file=sys.stderr)
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--phase", choices=["victim"], default=None)
    parser.add_argument("--base", default=None, help="full checkpoint path")
    parser.add_argument("--delta", default=None, help="incremental delta path")
    args = parser.parse_args()

    if args.phase == "victim":
        run_victim(args.base, args.delta)
        return 1  # unreachable: run_victim always _exits

    from repro.gridsim.job import reset_id_counters
    from repro.store.checkpoint import restore_gae, restore_incremental

    with tempfile.TemporaryDirectory() as tmp:
        # Phase 1: the uninterrupted reference run (checkpoints to
        # throwaway paths keep barrier bookkeeping symmetric).
        gae, _ = outage_workload()
        write_checkpoints(
            gae, os.path.join(tmp, "ref_base.sqlite"),
            os.path.join(tmp, "ref_delta.sqlite"),
        )
        reference = final_answers(gae)
        if set(reference["states"].values()) != {"completed"}:
            print(f"FAIL: reference run did not complete: {reference['states']}",
                  file=sys.stderr)
            return 1
        print(f"reference run: {len(reference['states'])} tasks completed "
              f"through the siteB outage")

        base = os.path.join(tmp, "base.sqlite")
        delta = os.path.join(tmp, "delta.sqlite")

        # Phase 2: the victim checkpoints (full, then delta), then dies hard.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, __file__, "--phase", "victim",
             "--base", base, "--delta", delta],
            env=env,
            timeout=300,
        )
        if proc.returncode != CRASH_EXIT_CODE:
            print(f"FAIL: victim exited {proc.returncode}, "
                  f"expected crash code {CRASH_EXIT_CODE}", file=sys.stderr)
            return 1
        for path in (base, delta):
            if not os.path.exists(path):
                print(f"FAIL: victim died without leaving {path}", file=sys.stderr)
                return 1
        base_size = os.path.getsize(base)
        delta_size = os.path.getsize(delta)
        print(f"victim crashed as intended (exit {proc.returncode}); "
              f"full={base_size} B, delta={delta_size} B "
              f"({100.0 * delta_size / base_size:.0f}% of full)")

        # Phase 3: incremental restore = base snapshot + journal tail replay.
        reset_id_counters()
        incremental = final_answers(restore_incremental(base, delta))

        # Phase 4: control — restore the victim's delta-time state fully.
        # (The reference's own t=205 full checkpoint is the same barrier.)
        reset_id_counters()
        full = final_answers(restore_gae(os.path.join(tmp, "ref_base.sqlite")))

    ok = diff("incremental-restore", reference, incremental)
    ok = diff("full-restore", reference, full) and ok
    if not ok:
        return 1
    print(f"incremental restore: {len(incremental['states'])} tasks completed, "
          f"answers bit-identical to the uninterrupted run")
    print(f"full restore: {len(full['states'])} tasks completed, "
          f"answers bit-identical to the uninterrupted run")
    print("replay smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
