#!/usr/bin/env python
"""End-to-end recovery smoke test: checkpoint, hard-kill, restore, finish.

Three phases, the middle one a *genuine* process death:

1. **reference** — run the demo workload (``repro.cli.checkpoint_demo_workload``)
   uninterrupted to completion and record every task's final state;
2. **victim** — a child process runs the same workload, checkpoints it
   mid-flight at t=205 s, then dies via ``os._exit`` — no cleanup, no
   atexit, nothing survives but the checkpoint file.  The parent checks
   the child really did die with the crash exit code;
3. **restore** — the parent rehydrates a GAE from the orphaned file with
   ``restore_gae`` and runs it to completion.  Every job must finish,
   and the final per-task states must equal the reference run's.

CI runs this on every supported Python version::

    PYTHONPATH=src python tools/recovery_smoke.py

Exit status 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_ROOT))

T_CHECKPOINT = 205.0  # not a multiple of any periodic (20/30/60 s)
CRASH_EXIT_CODE = 86  # distinctive, so a clean exit can't masquerade as a crash


def final_states(gae) -> dict:
    """Run the GAE to completion; every task's final state by id."""
    gae.sim.run_until(gae.sim.now + 20000.0)
    gae.stop()
    gae.sim.run()
    return {
        task.task_id: task.state.value
        for job in gae.scheduler.jobs()
        for task in job.tasks
    }


def run_victim(out: str) -> None:
    """Checkpoint the demo workload mid-flight, then die without cleanup."""
    from repro.cli import checkpoint_demo_workload
    from repro.store.checkpoint import Checkpointer

    gae, _ = checkpoint_demo_workload()
    ckpt = Checkpointer(gae)
    ckpt.checkpoint_at(T_CHECKPOINT, out)
    gae.sim.run_until(T_CHECKPOINT)
    if ckpt.last_info is None:
        os._exit(2)  # checkpoint never fired: distinguishable failure
    sys.stdout.flush()
    os._exit(CRASH_EXIT_CODE)  # the "kill": skips atexit, GC, everything


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--phase", choices=["victim"], default=None)
    parser.add_argument("--out", default=None, help="checkpoint path (victim phase)")
    args = parser.parse_args()

    if args.phase == "victim":
        run_victim(args.out)
        return 1  # unreachable: run_victim always _exits

    from repro.gridsim.job import reset_id_counters
    from repro.store.checkpoint import restore_gae

    # Phase 1: the uninterrupted reference run.
    from repro.cli import checkpoint_demo_workload

    reference = final_states(checkpoint_demo_workload()[0])
    if set(reference.values()) != {"completed"}:
        print(f"FAIL: reference run did not complete: {reference}", file=sys.stderr)
        return 1
    print(f"reference run: {len(reference)} tasks completed")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "orphan.sqlite")

        # Phase 2: the victim checkpoints, then dies hard.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, __file__, "--phase", "victim", "--out", path],
            env=env,
            timeout=300,
        )
        if proc.returncode != CRASH_EXIT_CODE:
            print(
                f"FAIL: victim exited {proc.returncode}, "
                f"expected crash code {CRASH_EXIT_CODE}",
                file=sys.stderr,
            )
            return 1
        if not os.path.exists(path):
            print("FAIL: victim died without leaving a checkpoint", file=sys.stderr)
            return 1
        print(f"victim crashed as intended (exit {proc.returncode}); "
              f"checkpoint survived at {path}")

        # Phase 3: restore from the orphaned file and finish the workload.
        reset_id_counters()
        restored = restore_gae(path)
        recovered = final_states(restored)

    if recovered != reference:
        print("FAIL: recovered run diverged from the reference:", file=sys.stderr)
        for task_id in sorted(set(reference) | set(recovered)):
            print(
                f"  {task_id}: reference={reference.get(task_id)!r} "
                f"recovered={recovered.get(task_id)!r}",
                file=sys.stderr,
            )
        return 1

    print(f"recovered run: {len(recovered)} tasks completed, identical final states")
    print("recovery smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
