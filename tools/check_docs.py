#!/usr/bin/env python
"""Check that docs/ARCHITECTURE.md covers every package under src/repro.

Walks the source tree for packages (directories with ``__init__.py``),
builds their dotted names, and fails — listing the gaps — if any dotted
name is missing from docs/ARCHITECTURE.md.  Run from anywhere:

    python tools/check_docs.py

CI runs this in the docs job so the architecture map cannot silently rot
as packages are added or renamed.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
ARCHITECTURE_MD = REPO_ROOT / "docs" / "ARCHITECTURE.md"


def source_packages() -> list[str]:
    """Dotted names of every package under src/ (``repro``, ``repro.x``...)."""
    packages = []
    for init in sorted(SRC_ROOT.rglob("__init__.py")):
        relative = init.parent.relative_to(SRC_ROOT)
        packages.append(".".join(relative.parts))
    return packages


def main() -> int:
    if not ARCHITECTURE_MD.exists():
        print(f"error: {ARCHITECTURE_MD} does not exist", file=sys.stderr)
        return 1
    text = ARCHITECTURE_MD.read_text(encoding="utf-8")
    packages = source_packages()
    missing = [name for name in packages if name not in text]
    if missing:
        print("docs/ARCHITECTURE.md is missing these packages:", file=sys.stderr)
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
        print(
            f"\n{len(missing)} of {len(packages)} packages undocumented; "
            "add them to the package map.",
            file=sys.stderr,
        )
        return 1
    print(f"docs/ARCHITECTURE.md covers all {len(packages)} packages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
