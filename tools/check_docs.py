#!/usr/bin/env python
"""Check that docs/ARCHITECTURE.md matches the source tree.

Eight checks, all run by CI's docs job:

1. every package under src/ (directory with ``__init__.py``) appears by
   dotted name in docs/ARCHITECTURE.md;
2. the "Event taxonomy" section documents exactly the members of
   ``repro.observability.journal.EventType`` — no missing events, no
   stale ones;
3. the "State-store namespaces" table lists exactly the canonical
   namespaces of ``repro.store.registry`` — docs cannot drift from the
   registry a checkpoint file is built on;
4. the "Epoch taxonomy" table lists exactly the canonical epoch names
   of ``repro.clarens.readcache.CANONICAL_EPOCHS`` — every epoch the
   read cache can key on must be documented, and no stale names;
5. the "Wire codecs" table lists exactly the registered codec names of
   ``repro.clarens.codecs.codec_names()`` — a codec the framed
   transport can negotiate must be documented, and vice versa;
6. the generated tables in docs/SCENARIOS.md (scenario library and SLO
   metric vocabulary) match what ``repro.scenarios.registry`` renders
   from the committed ``scenarios/*.json`` files — run
   ``python -m repro.scenarios.registry --write`` after editing the
   library;
7. the "Health-rule taxonomy" table lists exactly the rule kinds of
   ``repro.observability.health.RULE_KINDS`` — every kind the health
   engine evaluates must be documented, and no stale kinds;
8. the "Journal consumers" table lists exactly the registered consumer
   names of ``repro.observability.eventbus.CONSUMER_NAMES`` — every
   replayable consumer in the event-sourced core must be documented,
   and no stale names.

Run from anywhere::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
ARCHITECTURE_MD = REPO_ROOT / "docs" / "ARCHITECTURE.md"
SCENARIOS_MD = REPO_ROOT / "docs" / "SCENARIOS.md"

sys.path.insert(0, str(SRC_ROOT))


def source_packages() -> list[str]:
    """Dotted names of every package under src/ (``repro``, ``repro.x``...)."""
    packages = []
    for init in sorted(SRC_ROOT.rglob("__init__.py")):
        relative = init.parent.relative_to(SRC_ROOT)
        packages.append(".".join(relative.parts))
    return packages


def documented_event_types(text: str) -> set[str]:
    """Backticked tokens in the table rows of the "Event taxonomy" section."""
    match = re.search(r"### Event taxonomy\n(.*?)(?:\n#|\Z)", text, re.DOTALL)
    if match is None:
        return set()
    tokens: set[str] = set()
    for line in match.group(1).splitlines():
        if line.startswith("|"):
            first_cell = line.split("|")[1]
            tokens.update(re.findall(r"`([a-z-]+)`", first_cell))
    tokens.discard("event")  # the table header
    return tokens


def check_event_taxonomy(text: str) -> list[str]:
    from repro.observability.journal import EventType

    documented = documented_event_types(text)
    actual = {member.value for member in EventType}
    problems = []
    for value in sorted(actual - documented):
        problems.append(f"EventType {value!r} is not documented in the event taxonomy")
    for value in sorted(documented - actual):
        problems.append(f"documented event {value!r} is not an EventType member")
    return problems


def documented_namespaces(text: str) -> set[str]:
    """Backticked tokens in the "State-store namespaces" table rows."""
    match = re.search(r"### State-store namespaces\n(.*?)(?:\n#|\Z)", text, re.DOTALL)
    if match is None:
        return set()
    tokens: set[str] = set()
    for line in match.group(1).splitlines():
        if line.startswith("|"):
            first_cell = line.split("|")[1]
            tokens.update(re.findall(r"`([a-z.]+)`", first_cell))
    tokens.discard("namespace")  # the table header
    return tokens


def check_store_namespaces(text: str) -> list[str]:
    from repro.store.registry import namespace_names

    documented = documented_namespaces(text)
    actual = set(namespace_names())
    problems = []
    for name in sorted(actual - documented):
        problems.append(
            f"namespace {name!r} is not documented in the state-store table"
        )
    for name in sorted(documented - actual):
        problems.append(
            f"documented namespace {name!r} is not in repro.store.registry"
        )
    return problems


def documented_epochs(text: str) -> set[str]:
    """Backticked tokens in the "Epoch taxonomy" table rows."""
    match = re.search(r"### Epoch taxonomy\n(.*?)(?:\n#|\Z)", text, re.DOTALL)
    if match is None:
        return set()
    tokens: set[str] = set()
    for line in match.group(1).splitlines():
        if line.startswith("|"):
            first_cell = line.split("|")[1]
            tokens.update(re.findall(r"`([a-z:<>-]+)`", first_cell))
    tokens.discard("epoch")  # the table header
    return tokens


def check_epoch_taxonomy(text: str) -> list[str]:
    from repro.clarens.readcache import CANONICAL_EPOCHS

    documented = documented_epochs(text)
    actual = {name for name, _description in CANONICAL_EPOCHS}
    problems = []
    for name in sorted(actual - documented):
        problems.append(f"epoch {name!r} is not documented in the epoch taxonomy")
    for name in sorted(documented - actual):
        problems.append(f"documented epoch {name!r} is not in CANONICAL_EPOCHS")
    return problems


def documented_codecs(text: str) -> set[str]:
    """Backticked tokens in the "Wire codecs" table rows."""
    match = re.search(r"### Wire codecs\n(.*?)(?:\n#|\Z)", text, re.DOTALL)
    if match is None:
        return set()
    tokens: set[str] = set()
    for line in match.group(1).splitlines():
        if line.startswith("|"):
            first_cell = line.split("|")[1]
            tokens.update(re.findall(r"`([a-z]+)`", first_cell))
    tokens.discard("codec")  # the table header
    return tokens


def check_wire_codecs(text: str) -> list[str]:
    from repro.clarens.codecs import codec_names

    documented = documented_codecs(text)
    actual = set(codec_names())
    problems = []
    for name in sorted(actual - documented):
        problems.append(f"codec {name!r} is not documented in the wire-codec table")
    for name in sorted(documented - actual):
        problems.append(f"documented codec {name!r} is not registered in repro.clarens.codecs")
    return problems


def documented_rule_kinds(text: str) -> set[str]:
    """Backticked tokens in the "Health-rule taxonomy" table rows."""
    match = re.search(r"### Health-rule taxonomy\n(.*?)(?:\n#|\Z)", text, re.DOTALL)
    if match is None:
        return set()
    tokens: set[str] = set()
    for line in match.group(1).splitlines():
        if line.startswith("|"):
            first_cell = line.split("|")[1]
            tokens.update(re.findall(r"`([a-z_]+)`", first_cell))
    tokens.discard("kind")  # the table header
    return tokens


def check_health_rule_taxonomy(text: str) -> list[str]:
    from repro.observability.health import RULE_KINDS

    documented = documented_rule_kinds(text)
    actual = set(RULE_KINDS)
    problems = []
    for name in sorted(actual - documented):
        problems.append(
            f"rule kind {name!r} is not documented in the health-rule taxonomy"
        )
    for name in sorted(documented - actual):
        problems.append(
            f"documented rule kind {name!r} is not in RULE_KINDS"
        )
    return problems


def documented_consumers(text: str) -> set[str]:
    """Backticked tokens in the "Journal consumers" table rows."""
    match = re.search(r"### Journal consumers\n(.*?)(?:\n#|\Z)", text, re.DOTALL)
    if match is None:
        return set()
    tokens: set[str] = set()
    for line in match.group(1).splitlines():
        if line.startswith("|"):
            first_cell = line.split("|")[1]
            tokens.update(re.findall(r"`([a-z]+)`", first_cell))
    tokens.discard("consumer")  # the table header
    return tokens


def check_journal_consumers(text: str) -> list[str]:
    from repro.observability.eventbus import CONSUMER_NAMES

    documented = documented_consumers(text)
    actual = set(CONSUMER_NAMES)
    problems = []
    for name in sorted(actual - documented):
        problems.append(
            f"consumer {name!r} is not documented in the journal-consumers table"
        )
    for name in sorted(documented - actual):
        problems.append(
            f"documented consumer {name!r} is not in CONSUMER_NAMES"
        )
    return problems


def check_scenario_cookbook() -> list[str]:
    from repro.scenarios.registry import render_cookbook
    from repro.scenarios.spec import ScenarioError

    if not SCENARIOS_MD.exists():
        return [f"{SCENARIOS_MD} does not exist"]
    text = SCENARIOS_MD.read_text(encoding="utf-8")
    try:
        rendered = render_cookbook(text)
    except ScenarioError as exc:
        return [str(exc)]
    if rendered != text:
        return [
            "the generated tables disagree with the scenarios/ registry; "
            "run `python -m repro.scenarios.registry --write`"
        ]
    return []


def main() -> int:
    if not ARCHITECTURE_MD.exists():
        print(f"error: {ARCHITECTURE_MD} does not exist", file=sys.stderr)
        return 1
    text = ARCHITECTURE_MD.read_text(encoding="utf-8")
    packages = source_packages()
    missing = [name for name in packages if name not in text]
    if missing:
        print("docs/ARCHITECTURE.md is missing these packages:", file=sys.stderr)
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
        print(
            f"\n{len(missing)} of {len(packages)} packages undocumented; "
            "add them to the package map.",
            file=sys.stderr,
        )
        return 1
    taxonomy_problems = check_event_taxonomy(text)
    if taxonomy_problems:
        print("docs/ARCHITECTURE.md event taxonomy is out of date:", file=sys.stderr)
        for problem in taxonomy_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    namespace_problems = check_store_namespaces(text)
    if namespace_problems:
        print(
            "docs/ARCHITECTURE.md state-store namespace table is out of date:",
            file=sys.stderr,
        )
        for problem in namespace_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    epoch_problems = check_epoch_taxonomy(text)
    if epoch_problems:
        print(
            "docs/ARCHITECTURE.md epoch taxonomy is out of date:",
            file=sys.stderr,
        )
        for problem in epoch_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    codec_problems = check_wire_codecs(text)
    if codec_problems:
        print(
            "docs/ARCHITECTURE.md wire-codec table is out of date:",
            file=sys.stderr,
        )
        for problem in codec_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    rule_problems = check_health_rule_taxonomy(text)
    if rule_problems:
        print(
            "docs/ARCHITECTURE.md health-rule taxonomy is out of date:",
            file=sys.stderr,
        )
        for problem in rule_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    consumer_problems = check_journal_consumers(text)
    if consumer_problems:
        print(
            "docs/ARCHITECTURE.md journal-consumers table is out of date:",
            file=sys.stderr,
        )
        for problem in consumer_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    cookbook_problems = check_scenario_cookbook()
    if cookbook_problems:
        print("docs/SCENARIOS.md is out of date:", file=sys.stderr)
        for problem in cookbook_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"docs/ARCHITECTURE.md covers all {len(packages)} packages")
    print("docs/ARCHITECTURE.md event taxonomy matches EventType")
    print("docs/ARCHITECTURE.md state-store namespaces match the registry")
    print("docs/ARCHITECTURE.md epoch taxonomy matches CANONICAL_EPOCHS")
    print("docs/ARCHITECTURE.md wire-codec table matches codec_names()")
    print("docs/ARCHITECTURE.md health-rule taxonomy matches RULE_KINDS")
    print("docs/ARCHITECTURE.md journal-consumers table matches CONSUMER_NAMES")
    print("docs/SCENARIOS.md generated tables match the scenario registry")
    return 0


if __name__ == "__main__":
    sys.exit(main())
