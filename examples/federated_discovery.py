#!/usr/bin/env python
"""Federated Clarens hosts: P2P service discovery plus real XML-RPC access.

Run with::

    python examples/federated_discovery.py

Three institutes each run their own Clarens host with a subset of GAE
services (as in the real deployment, where Caltech, CERN and NUST hosted
different pieces).  A client at one institute discovers a service hosted
elsewhere through the peer-to-peer lookup network (§3), then calls it over
genuine XML-RPC/HTTP on loopback.
"""

from repro.clarens import (
    ClarensClient,
    ClarensHost,
    DiscoveryNetwork,
    XmlRpcServerHandle,
    SocketTransport,
)


class TagService:
    """A stand-in GAE service that reports which host serves it."""

    def __init__(self, host_name: str) -> None:
        self._host_name = host_name

    def where_am_i(self) -> str:
        """Name of the host running this service instance."""
        return self._host_name


def main() -> None:
    # One Clarens host per institute, each with its own users and secret.
    hosts = {name: ClarensHost(name) for name in ("caltech", "cern", "nust")}
    for host in hosts.values():
        host.users.add_user("alice", "pw", groups=("gae-users",))
        host.acl.allow("*", groups=("gae-users",))

    # Distribute the services: only CERN hosts "estimator", only Caltech
    # hosts "steering".
    hosts["cern"].register("estimator", TagService("cern"))
    hosts["caltech"].register("steering", TagService("caltech"))

    # Peer them in a line: nust <-> cern <-> caltech.
    network = DiscoveryNetwork()
    for host in hosts.values():
        network.add_host(host)
    network.connect("nust", "cern")
    network.connect("cern", "caltech")

    # A physicist at NUST needs the steering service (hosted 2 hops away).
    for service in ("estimator", "steering"):
        hit = network.find_one(service, start="nust", ttl=3)
        print(f"lookup {service!r} from nust: found at {hit.host_name} "
              f"({hit.hops} hop{'s' if hit.hops != 1 else ''})")

    # Serve every host over real XML-RPC and call the discovered service.
    handles = {name: XmlRpcServerHandle(host).start() for name, host in hosts.items()}
    try:
        hit = network.find_one("steering", start="nust")
        url = handles[hit.host_name].url
        print(f"\nconnecting to {hit.host_name} at {url}")
        client = ClarensClient(SocketTransport(url))
        client.login("alice", "pw")
        print("remote host introspection:", client.list_services())
        answer = client.service("steering").where_am_i()
        print(f"steering.where_am_i() -> {answer!r}")
        client.logout()
    finally:
        for handle in handles.values():
            handle.shutdown()


if __name__ == "__main__":
    main()
