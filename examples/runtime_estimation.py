#!/usr/bin/env python
"""The Figure 5 runtime-estimation workflow, end to end.

Run with::

    python examples/runtime_estimation.py

Reproduces the paper's estimator evaluation: generate a Paragon-style
accounting trace (the SDSC trace is not redistributable, so a calibrated
synthetic equivalent is used), build a 100-job history, estimate 20 held-out
jobs, and report per-case and mean percentage errors — the paper's headline
number was a 13.53 % mean error.
"""

from repro import DowneyWorkloadGenerator, RuntimeEstimator, summarize_errors
from repro.analysis.figures import FigureData
from repro.analysis.report import markdown_table


def main() -> None:
    gen = DowneyWorkloadGenerator(seed=1995)
    history, tests = gen.history_and_tests(n_history=100, n_tests=20)
    print(f"history: {len(history)} accounting records "
          f"({len(history.successful())} successful)")

    estimator = RuntimeEstimator(history)

    rows = []
    actuals, estimates = [], []
    for i, rec in enumerate(tests, 1):
        est = estimator.estimate(rec.to_task_spec())
        actuals.append(rec.runtime_s)
        estimates.append(est.value)
        err = (rec.runtime_s - est.value) / rec.runtime_s * 100.0
        rows.append([
            i, rec.application, round(rec.runtime_s, 1), round(est.value, 1),
            f"{err:+.1f}%", est.method, est.n_similar,
        ])
    print(markdown_table(
        ["case", "app", "actual (s)", "estimated (s)", "error", "method", "similar"],
        rows,
    ))

    summary = summarize_errors(actuals, estimates)
    print(f"mean |% error| = {summary.mean_abs_pct:.2f}%   (paper: 13.53%)")
    print(f"mean signed % error = {summary.mean_signed_pct:+.2f}%")
    print(f"cases within ±25%: {summary.within_25_pct * 100:.0f}%")

    figure = (
        FigureData(
            title="Figure 5 (reproduced): Actual & Estimated Runtimes",
            x_label="Jobs", y_label="Job Runtime (seconds)",
        )
        .add("Actual Runtime", list(range(1, 21)), actuals)
        .add("Estimated Runtime", list(range(1, 21)), estimates)
    )
    print()
    print(figure.render())


if __name__ == "__main__":
    main()
