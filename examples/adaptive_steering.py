#!/usr/bin/env python
"""Learning steering policy from an advanced user (§1's intelligent agent).

Run with::

    python examples/adaptive_steering.py

The paper's introduction argues that giving advanced users manual steering
control "would also facilitate the development of more intelligent agents
that could observe and learn from the actions of advanced users."  This
demo closes that loop:

1. the autonomous optimizer starts with a *conservative* policy that never
   considers a job slow (so it does nothing);
2. an expert physicist watches her jobs crawl on a loaded site and moves
   them manually through the steering API;
3. the attached :class:`AdaptiveSteeringAgent` observes each manual move —
   the progress rate she tolerated and how long she waited;
4. the learned policy is adopted, and the next slow job is moved
   *autonomously*, with no human in the loop.
"""

from dataclasses import replace

from repro import GridBuilder, Job, SteeringPolicy, build_gae
from repro.core.estimators.history import HistoryRepository
from repro.core.steering.agent import AdaptiveSteeringAgent
from repro.workloads.generators import make_prime_count_task, prime_job_history_records


def submit_pinned(gae, site, owner="expert"):
    task = make_prime_count_task(owner=owner)
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): site
    gae.scheduler.submit_job(Job(tasks=[task], owner=owner))
    gae.scheduler.select_site = original
    return task


def main() -> None:
    grid = (
        GridBuilder(seed=8)
        .site("busy", background_load=1.0)    # jobs crawl at half speed
        .site("idle", background_load=0.0)
        .probe_noise(0.0)
        .build()
    )
    history = HistoryRepository(prime_job_history_records(n=8, sigma=0.01))
    # Start timid: the optimizer never intervenes on its own.
    timid = SteeringPolicy(auto_move=False, min_elapsed_wall_s=1e9)
    gae = build_gae(grid, policy=timid, history=history)
    gae.add_user("expert", "pw")

    agent = AdaptiveSteeringAgent(min_observations=2)
    gae.steering.attach_agent(agent)

    # --- phase 1: the expert steers by hand ---------------------------
    client = gae.client("expert", "pw")
    steering = client.service("steering")
    print("phase 1: expert moves crawling jobs manually")
    for i in range(2):
        task = submit_pinned(gae, "busy")
        gae.grid.run_until(gae.sim.now + 120.0)  # she watches for 2 minutes
        progress = steering.task_progress(task.task_id)
        print(f"  job {i + 1}: progress {progress['progress'] * 100:.0f}% after 120s "
              f"-> expert moves it to 'idle'")
        steering.move(task.task_id, "idle")

    print(f"\n{agent.summary()}")

    # --- phase 2: adopt the learned policy ----------------------------
    learned = replace(agent.recommended_policy(), auto_move=True)
    gae.steering.adopt_policy(learned)
    print(f"adopted: threshold={learned.slow_rate_threshold:.2f}, "
          f"poll={learned.poll_interval_s:.0f}s, grace={learned.min_elapsed_wall_s:.0f}s")

    # Let the expert's jobs drain, then submit another crawler.
    gae.grid.run_until(gae.sim.now + 700.0)
    print("\nphase 2: a new job crawls on 'busy' — nobody is watching")
    task = submit_pinned(gae, "busy")
    gae.steering.start()
    gae.grid.run_until(gae.sim.now + 1000.0)
    gae.stop()

    actions = [a for a in gae.steering.actions if a.task_id == task.task_id]
    if actions:
        a = actions[0]
        print(f"  autonomous move at t={a.time:.0f}s: {a.decision.reason}")
    end = gae.grid.execution_services["idle"].pool.ad(task.task_id).end_time
    print(f"  job completed at t={end:.0f}s on 'idle' — steered by the learned policy")


if __name__ == "__main__":
    main()
