#!/usr/bin/env python
"""The Figure 7 steering scenario, narrated.

Run with::

    python examples/steering_scenario.py

Reproduces the paper's §7 experiment: the 283 s prime job starts on a site
with heavy CPU load; the steering service notices the slow progress rate
through the job monitoring service, asks the estimators where the job would
finish sooner, and moves it.  An identical "shadow" job is left on the slow
site for comparison, exactly as the paper did ("the job was also allowed to
continue running on site A for testing purposes").
"""

from repro import GridBuilder, Job, SteeringPolicy, build_gae
from repro.analysis.figures import FigureData
from repro.core.estimators.history import HistoryRepository
from repro.workloads.generators import (
    PRIME_JOB_FREE_CPU_SECONDS,
    make_prime_count_task,
    prime_job_history_records,
)


def main() -> None:
    grid = (
        GridBuilder(seed=2005)
        .site("siteA", background_load=1.5)   # progress rate 0.4
        .site("siteB", background_load=0.0)   # a free CPU
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )
    # The estimator's history: the paper calibrated the job "by running it
    # many times on machines with negligible CPU load" — 283 s each.
    history = HistoryRepository(prime_job_history_records(n=10, sigma=0.01))
    policy = SteeringPolicy(
        poll_interval_s=20.0,        # how often the steering loop looks
        min_elapsed_wall_s=40.0,     # grace period before judging
        slow_rate_threshold=0.8,     # below 80 % of free-CPU rate = slow
        min_improvement_factor=1.2,  # alternative must be 20 % better
    )
    gae = build_gae(grid, policy=policy, history=history)
    gae.add_user("physicist", "pw")

    # Pin the steered job AND the shadow job to the loaded siteA.
    steered = make_prime_count_task(owner="physicist")
    shadow = make_prime_count_task(owner="physicist")
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    gae.scheduler.submit_job(Job(tasks=[steered], owner="physicist"))
    gae.scheduler.select_site = original
    gae.grid.execution_services["siteA"].submit_task(shadow)  # not steered

    gae.start()
    es = gae.grid.execution_services
    curve_a, curve_b = [], []
    print(f"{'t (s)':>6}  {'steered job':>22}  {'shadow at siteA':>16}")
    for t in range(0, 801, 40):
        gae.grid.run_until(float(t))
        site = "siteB" if es["siteB"].pool.has_task(steered.task_id) else "siteA"
        p_steer = es[site].pool.status(steered.task_id).progress * 100
        p_shadow = es["siteA"].pool.status(shadow.task_id).progress * 100
        curve_b.append((t, p_steer))
        curve_a.append((t, p_shadow))
        print(f"{t:6d}  {p_steer:15.1f}% @{site:<5}  {p_shadow:15.1f}%")
    gae.grid.run_until(2000.0)
    gae.stop()

    move = gae.steering.actions[0]
    steered_end = es["siteB"].pool.ad(steered.task_id).end_time
    shadow_end = es["siteA"].pool.ad(shadow.task_id).end_time
    print(f"\nsteering decision at t={move.time:.0f}s: {move.decision.reason}")
    print(f"steered job completed at {steered_end:.0f}s "
          f"(paper: ~369 s; free-CPU bound: {PRIME_JOB_FREE_CPU_SECONDS:.0f} s)")
    print(f"shadow at siteA completed at {shadow_end:.0f}s")

    figure = (
        FigureData(
            title="Figure 7 (reproduced): Job Completion at different sites",
            x_label="Elapsed time (s)", y_label="Job progress (%)",
        )
        .add("steered job", *zip(*curve_b))
        .add("shadow at siteA", *zip(*curve_a))
    )
    print()
    print(figure.render())


if __name__ == "__main__":
    main()
