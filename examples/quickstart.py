#!/usr/bin/env python
"""Quickstart: build a grid, wire the GAE, submit a job, watch it run.

Run with::

    python examples/quickstart.py

This walks the shortest useful path through the library:

1. declare a two-site simulated grid (one busy, one idle),
2. wire the full Grid Analysis Environment over it (Clarens host, steering,
   monitoring, estimator and accounting services),
3. submit the paper's 283-second prime-counting job,
4. poll its monitoring record through the Clarens client API while the
   simulation advances, and
5. print where and when it completed.
"""

from repro import GridBuilder, Job, build_gae, make_prime_count_task


def main() -> None:
    # 1. A small grid: siteA is busy (background load 1.0 means a task gets
    #    only half the CPU), siteB is idle.
    grid = (
        GridBuilder(seed=42)
        .site("siteA", nodes=2, background_load=1.0)
        .site("siteB", nodes=2, background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=622.0, latency_s=0.05)
        .build()
    )

    # 2. The full GAE: all four services on one Clarens host, with the
    #    simulator's clock driving session expiry and periodic loops.
    gae = build_gae(grid)
    gae.add_user("alice", "secret")
    gae.start()  # arm the steering loop + load publisher

    # 3. Submit the paper's prime-counting job (283 s of CPU work).  The
    #    Sphinx-like scheduler asks each site's estimator and MonALISA for
    #    load, then picks the best site — the idle siteB.
    task = make_prime_count_task(owner="alice")
    job = Job(tasks=[task], owner="alice")
    plan = gae.scheduler.submit_job(job)
    print(f"scheduler placed {task.task_id} on {plan.site_for(task.task_id)}")

    # 4. Watch it through the public Clarens API, as a remote client would.
    client = gae.client("alice", "secret")
    jobmon = client.service("jobmon")
    for t in (60, 120, 180, 240, 300):
        gae.grid.run_until(float(t))
        info = jobmon.job_info(task.task_id)
        print(
            f"t={t:4d}s  status={info['status']:<9}  "
            f"progress={info['progress'] * 100:5.1f}%  "
            f"elapsed={info['elapsed_time_s']:6.1f}s  "
            f"remaining~{info['remaining_time_s']:6.1f}s"
        )

    # 5. Wrap up.
    gae.grid.run_until(600.0)
    gae.stop()
    final = jobmon.job_info(task.task_id)
    print(
        f"\njob {final['status']} at site {final['site']} "
        f"after {final['completion_time']:.0f} simulated seconds "
        f"(free-CPU bound: 283 s)"
    )


if __name__ == "__main__":
    main()
