#!/usr/bin/env python
"""A CMS-style physics-analysis DAG across a three-site grid, with a
mid-flight site failure and automatic recovery.

Run with::

    python examples/physics_analysis_dag.py

This is the workload the paper's introduction motivates (§2): analysis jobs
"split up into a number of processing steps (arranged to follow a directed
acyclic graph structure)" over tera-scale datasets replicated across sites.
The script:

1. builds a caltech–cern–nust grid with a dataset replica at CERN,
2. submits a stage-in → 4-way analysis → merge DAG,
3. kills one site's execution service mid-run,
4. shows Backup & Recovery resubmitting the casualties, and
5. prints the final per-task monitoring report and who was charged what.
"""

from repro import GridBuilder, build_gae
from repro.analysis.report import markdown_table
from repro.workloads.generators import physics_analysis_job


def main() -> None:
    grid = (
        GridBuilder(seed=11)
        .site("caltech", nodes=2, background_load=0.2, cpu_hour_rate=2.0)
        .site("cern", nodes=4, background_load=0.6, cpu_hour_rate=1.0)
        .site("nust", nodes=2, background_load=0.1, cpu_hour_rate=0.5)
        .link("caltech", "cern", capacity_mbps=622.0, latency_s=0.08)
        .link("cern", "nust", capacity_mbps=45.0, latency_s=0.12)
        .link("caltech", "nust", capacity_mbps=34.0, latency_s=0.15)
        .file("hits-2005.db", size_mb=400.0, at="cern")
        .probe_noise(0.02)
        .build()
    )
    gae = build_gae(grid)
    gae.add_user("alice", "pw")
    gae.accounting.quotas.set_quota("alice", 50.0)
    gae.start()

    job = physics_analysis_job(
        owner="alice",
        n_analysis_tasks=4,
        dataset_files=("hits-2005.db",),
        stage_seconds=120.0,
        analysis_seconds=1800.0,
        merge_seconds=240.0,
        rng=grid.rngs.stream("dag-jitter"),
    )
    plan = gae.scheduler.submit_job(job)
    print("concrete job plan (task -> site):")
    for b in plan.bindings:
        print(f"  {b.task_id} -> {b.site_name}")

    # Let the stage-in and the analyses get going, then kill a site.
    gae.grid.run_until(400.0)
    victim = gae.scheduler.site_of_task(job.tasks[1].task_id)
    print(f"\nt=400s: execution service at {victim!r} crashes!")
    gae.grid.execution_services[victim].fail()

    # Run to completion; the B&R sweep resubmits the dead site's tasks.
    gae.grid.run_until(20000.0)
    gae.stop()
    print(f"job state: {job.state.value}")

    print("\nclient notifications (what alice was told):")
    for n in gae.steering.backup_recovery.notifications:
        print(f"  t={n.time:7.1f}s  {n.kind:<15}  {n.task_id}  {n.detail}")

    client = gae.client("alice", "pw")
    records = client.service("jobmon").job_tasks(job.job_id)
    print("\nfinal monitoring report:")
    print(markdown_table(
        ["task", "site", "status", "cpu time (s)", "started", "completed"],
        [
            [r["task_id"], r["site"], r["status"], round(r["cpu_time_used_s"], 1),
             round(r["execution_time"] or 0, 1), round(r["completion_time"] or 0, 1)]
            for r in records
        ],
    ))

    # Charge the completed work against alice's quota.
    total = 0.0
    for r in records:
        total += gae.accounting.charge_completed_task(
            "alice", r["site"], cpu_seconds=r["cpu_time_used_s"],
            note=r["task_id"],
        )
    print(f"total charged: {total:.2f} units; "
          f"alice's remaining quota: {gae.accounting.quota_available('alice'):.2f}")


if __name__ == "__main__":
    main()
