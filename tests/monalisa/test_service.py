"""Unit tests for the MonALISA query service (grid-weather API)."""

import pytest

from repro.clarens.server import ClarensHost
from repro.monalisa.repository import JobStateEvent, MonALISARepository
from repro.monalisa.service import MonALISAQueryService


@pytest.fixture
def service():
    repo = MonALISARepository()
    repo.publish("siteA", "load", 0.0, 1.5)
    repo.publish("siteA", "load", 30.0, 2.0)
    repo.publish("siteB", "load", 0.0, 0.1)
    repo.publish("siteA", "cpu_temp", 10.0, 60.0)
    repo.publish_job_state(
        JobStateEvent(time=5.0, task_id="t1", job_id="j1", site="siteA",
                      state="running", progress=0.4)
    )
    return MonALISAQueryService(repo)


class TestQueries:
    def test_farms(self, service):
        assert service.farms() == ["siteA", "siteB"]

    def test_metrics_of(self, service):
        assert service.metrics_of("siteA") == ["cpu_temp", "load"]

    def test_site_load(self, service):
        assert service.site_load("siteA") == 2.0
        assert service.site_load("ghost") == 0.0

    def test_grid_weather_snapshot(self, service):
        assert service.grid_weather() == {"siteA": 2.0, "siteB": 0.1}

    def test_latest(self, service):
        assert service.latest("siteA", "cpu_temp") == 60.0
        with pytest.raises(KeyError):
            service.latest("siteB", "cpu_temp")

    def test_series_window(self, service):
        out = service.series_window("siteA", "load", 0.0, 30.0)
        assert out["times"] == [0.0, 30.0]
        assert out["values"] == [1.5, 2.0]

    def test_job_events_filters(self, service):
        assert len(service.job_events()) == 1
        assert service.job_events(task_id="t1")[0]["state"] == "running"
        assert service.job_events(task_id="ghost") == []


class TestHosting:
    def test_dispatch_through_clarens(self, service):
        host = ClarensHost()
        host.users.add_user("u", "p", groups=("g",))
        host.acl.allow("monalisa.*", groups=("g",))
        host.register("monalisa", service)
        token = host.dispatch("system.login", ["u", "p"])
        weather = host.dispatch("monalisa.grid_weather", [], token)
        assert weather["siteA"] == 2.0

    def test_gae_hosts_it(self, gae):
        gae.add_user("alice", "pw")
        gae.load_publisher.publish_now()
        client = gae.client("alice", "pw")
        weather = client.service("monalisa").grid_weather()
        assert set(weather) == {"siteA", "siteB"}
        assert weather["siteA"] > weather["siteB"]
