"""Unit tests for periodic load publication and job-state bridging."""

import pytest

from repro.gridsim.clock import Simulator
from repro.gridsim.job import Task, TaskSpec
from repro.gridsim.site import Site
from repro.monalisa.publisher import JobStatePublisher, SiteLoadPublisher
from repro.monalisa.repository import MonALISARepository


@pytest.fixture
def env():
    sim = Simulator()
    site = Site.simple(sim, "siteX", background_load=2.0)
    repo = MonALISARepository()
    return sim, site, repo


class TestSiteLoadPublisher:
    def test_start_publishes_immediately(self, env):
        sim, site, repo = env
        SiteLoadPublisher(sim, repo, [site], period_s=30.0).start()
        assert repo.site_load("siteX") == pytest.approx(2.0)

    def test_periodic_samples(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site], period_s=30.0).start()
        sim.run_until(95.0)
        pub.stop()
        times, _ = repo.series("siteX", "load").as_arrays()
        assert list(times) == [0.0, 30.0, 60.0, 90.0]

    def test_load_reflects_submitted_work(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site], period_s=10.0).start()
        site.pool.submit(Task(spec=TaskSpec(), work_seconds=100.0))
        sim.run_until(10.0)
        pub.stop()
        assert repo.site_load("siteX") > 2.0

    def test_stop_halts_publication(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site], period_s=10.0).start()
        sim.run_until(10.0)
        pub.stop()
        sim.run_until(100.0)
        assert len(repo.series("siteX", "load")) == 2  # t=0 and t=10

    def test_double_start_is_idempotent(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site], period_s=30.0).start()
        assert pub.start() is pub  # no error, no second periodic schedule
        sim.run_until(35.0)
        pub.stop()
        times, _ = repo.series("siteX", "load").as_arrays()
        assert list(times) == [0.0, 30.0]  # one immediate sample, one period

    def test_publish_after_stop_is_noop(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site], period_s=30.0).start()
        pub.stop()
        pub.publish_now()
        assert len(repo.series("siteX", "load")) == 1  # only the start sample

    def test_context_manager_lifecycle(self, env):
        sim, site, repo = env
        with SiteLoadPublisher(sim, repo, [site], period_s=10.0) as pub:
            sim.run_until(10.0)
        sim.run_until(100.0)
        assert len(repo.series("siteX", "load")) == 2  # t=0 and t=10
        pub.publish_now()  # guarded after __exit__
        assert len(repo.series("siteX", "load")) == 2

    def test_invalid_period_rejected(self, env):
        sim, site, repo = env
        with pytest.raises(ValueError):
            SiteLoadPublisher(sim, repo, [site], period_s=0.0)


class TestJobStatePublisher:
    def test_state_transitions_published(self, env):
        sim, site, repo = env
        JobStatePublisher(sim, repo).attach(site)
        t = Task(spec=TaskSpec(), work_seconds=50.0)
        site.pool.submit(t)
        sim.run()
        states = [e.state for e in repo.job_events(task_id=t.task_id)]
        assert states == ["queued", "running", "completed"]

    def test_progress_reported_on_completion(self, env):
        sim, site, repo = env
        JobStatePublisher(sim, repo).attach(site)
        t = Task(spec=TaskSpec(), work_seconds=50.0)
        site.pool.submit(t)
        sim.run()
        final = repo.job_events(task_id=t.task_id)[-1]
        assert final.progress == pytest.approx(1.0)
        assert final.site == "siteX"


class TestServiceMetricsPublisher:
    @pytest.fixture
    def host_env(self):
        from repro.clarens.server import ClarensHost
        from repro.monalisa.publisher import ServiceMetricsPublisher

        sim = Simulator()
        repo = MonALISARepository()
        host = ClarensHost("svc-host", time_source=lambda: sim.now)
        pub = ServiceMetricsPublisher(sim, repo, host, period_s=60.0)
        return sim, repo, host, pub

    def test_publishes_counts_and_latency_series(self, host_env):
        sim, repo, host, pub = host_env
        for _ in range(4):
            host.dispatch("system.ping", [], "")
        pub.publish_now()
        assert repo.latest("svc-host", "rpc.calls") == 4.0
        assert repo.latest("svc-host", "rpc.faults") == 0.0
        assert repo.latest("svc-host", "rpc.system.ping.calls") == 4.0
        assert repo.latest("svc-host", "rpc.system.ping.p95_ms") >= 0.0

    def test_periodic_sampling_under_the_sim_clock(self, host_env):
        sim, repo, host, pub = host_env
        host.dispatch("system.ping", [], "")
        pub.start()
        sim.run_until(125.0)
        pub.stop()
        times, _ = repo.series("svc-host", "rpc.calls").as_arrays()
        assert list(times) == [0.0, 60.0, 120.0]

    def test_rejects_bad_period(self, host_env):
        from repro.monalisa.publisher import ServiceMetricsPublisher

        sim, repo, host, _ = host_env
        with pytest.raises(ValueError):
            ServiceMetricsPublisher(sim, repo, host, period_s=0.0)

    def test_idempotent_lifecycle_and_stop_guard(self, host_env):
        sim, repo, host, pub = host_env
        host.dispatch("system.ping", [], "")
        assert pub.start() is pub.start()  # double start is a no-op
        sim.run_until(65.0)
        pub.stop()
        pub.stop()  # idempotent
        pub.publish_now()  # guarded after stop
        times, _ = repo.series("svc-host", "rpc.calls").as_arrays()
        assert list(times) == [0.0, 60.0]

    def test_context_manager(self, host_env):
        sim, repo, host, pub = host_env
        host.dispatch("system.ping", [], "")
        with pub as entered:
            assert entered is pub
            sim.run_until(65.0)
        sim.run_until(300.0)
        times, _ = repo.series("svc-host", "rpc.calls").as_arrays()
        assert list(times) == [0.0, 60.0]

    def test_service_health_query_reports_it(self, host_env):
        from repro.monalisa.service import MonALISAQueryService

        sim, repo, host, pub = host_env
        host.dispatch("system.ping", [], "")
        pub.publish_now()
        repo.publish("siteA", "load", 0.0, 1.5)
        service = MonALISAQueryService(repo)
        health = service.service_health()
        assert "svc-host" in health
        assert "siteA" not in health  # sites are weather, not service health
        assert health["svc-host"]["rpc.calls"] == 1.0
        # ... and the host farm stays out of the load-only weather map.
        assert set(service.grid_weather()) == {"siteA"}
