"""Unit tests for periodic load publication and job-state bridging."""

import pytest

from repro.gridsim.clock import Simulator
from repro.gridsim.job import Task, TaskSpec
from repro.gridsim.site import Site
from repro.monalisa.publisher import JobStatePublisher, SiteLoadPublisher
from repro.monalisa.repository import MonALISARepository


@pytest.fixture
def env():
    sim = Simulator()
    site = Site.simple(sim, "siteX", background_load=2.0)
    repo = MonALISARepository()
    return sim, site, repo


class TestSiteLoadPublisher:
    def test_start_publishes_immediately(self, env):
        sim, site, repo = env
        SiteLoadPublisher(sim, repo, [site], period_s=30.0).start()
        assert repo.site_load("siteX") == pytest.approx(2.0)

    def test_periodic_samples(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site], period_s=30.0).start()
        sim.run_until(95.0)
        pub.stop()
        times, _ = repo.series("siteX", "load").as_arrays()
        assert list(times) == [0.0, 30.0, 60.0, 90.0]

    def test_load_reflects_submitted_work(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site], period_s=10.0).start()
        site.pool.submit(Task(spec=TaskSpec(), work_seconds=100.0))
        sim.run_until(10.0)
        pub.stop()
        assert repo.site_load("siteX") > 2.0

    def test_stop_halts_publication(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site], period_s=10.0).start()
        sim.run_until(10.0)
        pub.stop()
        sim.run_until(100.0)
        assert len(repo.series("siteX", "load")) == 2  # t=0 and t=10

    def test_double_start_rejected(self, env):
        sim, site, repo = env
        pub = SiteLoadPublisher(sim, repo, [site]).start()
        with pytest.raises(RuntimeError):
            pub.start()

    def test_invalid_period_rejected(self, env):
        sim, site, repo = env
        with pytest.raises(ValueError):
            SiteLoadPublisher(sim, repo, [site], period_s=0.0)


class TestJobStatePublisher:
    def test_state_transitions_published(self, env):
        sim, site, repo = env
        JobStatePublisher(sim, repo).attach(site)
        t = Task(spec=TaskSpec(), work_seconds=50.0)
        site.pool.submit(t)
        sim.run()
        states = [e.state for e in repo.job_events(task_id=t.task_id)]
        assert states == ["queued", "running", "completed"]

    def test_progress_reported_on_completion(self, env):
        sim, site, repo = env
        JobStatePublisher(sim, repo).attach(site)
        t = Task(spec=TaskSpec(), work_seconds=50.0)
        site.pool.submit(t)
        sim.run()
        final = repo.job_events(task_id=t.task_id)[-1]
        assert final.progress == pytest.approx(1.0)
        assert final.site == "siteX"
