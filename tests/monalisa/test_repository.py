"""Unit tests for the MonALISA-style repository."""

import pytest

from repro.monalisa.repository import (
    JobStateEvent,
    MonALISARepository,
    UnknownMetricError,
)


@pytest.fixture
def repo():
    r = MonALISARepository()
    r.publish("siteA", "load", 0.0, 1.5)
    r.publish("siteB", "load", 0.0, 0.2)
    r.publish("siteA", "load", 30.0, 1.8)
    r.publish("siteA", "cpu_temp", 30.0, 55.0)
    return r


class TestMetrics:
    def test_latest(self, repo):
        assert repo.latest("siteA", "load") == 1.8
        assert repo.latest("siteB", "load") == 0.2

    def test_latest_missing_with_default(self, repo):
        assert repo.latest("ghost", "load", default=0.0) == 0.0

    def test_latest_missing_without_default_raises(self, repo):
        with pytest.raises(KeyError):
            repo.latest("ghost", "load")

    def test_series_accessible(self, repo):
        assert len(repo.series("siteA", "load")) == 2

    def test_has_series(self, repo):
        assert repo.has_series("siteA", "cpu_temp")
        assert not repo.has_series("siteB", "cpu_temp")

    def test_farms_sorted(self, repo):
        assert repo.farms() == ["siteA", "siteB"]

    def test_metrics_of(self, repo):
        assert repo.metrics_of("siteA") == ["cpu_temp", "load"]

    def test_series_missing_raises_structured_error(self, repo):
        with pytest.raises(UnknownMetricError) as exc:
            repo.series("ghost", "load")
        assert exc.value.farm == "ghost"
        assert exc.value.metric == "load"
        assert exc.value.reason == "never published"

    def test_latest_missing_raises_structured_error(self, repo):
        with pytest.raises(UnknownMetricError):
            repo.latest("siteA", "ghost_metric")

    def test_unknown_metric_error_is_keyerror(self, repo):
        # Pre-existing ``except KeyError`` callers must keep working.
        assert issubclass(UnknownMetricError, KeyError)

    def test_unknown_metric_error_str_not_reprd(self):
        # KeyError.__str__ would wrap the message in quotes.
        err = UnknownMetricError("siteA", "load")
        assert str(err) == "no samples for siteA/load (never published)"

    def test_unknown_metric_error_to_wire(self):
        err = UnknownMetricError("siteA", "load", reason="expired")
        assert err.to_wire() == {
            "error": "not-found",
            "resource": "metric",
            "id": "siteA/load",
            "reason": "expired",
            "status": 404,
        }

    def test_metric_subscribers_fan_out(self, repo):
        seen = []
        repo.subscribe_metrics(lambda u: seen.append((u.farm, u.value)))
        repo.publish("siteB", "load", 60.0, 0.5)
        assert seen == [("siteB", 0.5)]


class TestLoadOracle:
    def test_site_load(self, repo):
        assert repo.site_load("siteA") == 1.8

    def test_site_load_default_for_unknown(self, repo):
        assert repo.site_load("ghost") == 0.0

    def test_oracle_callable(self, repo):
        oracle = repo.load_oracle(default=7.0)
        assert oracle("siteA") == 1.8
        assert oracle("ghost") == 7.0


class TestJobEvents:
    def make_event(self, task="t1", job="j1", state="running", t=1.0):
        return JobStateEvent(
            time=t, task_id=task, job_id=job, site="s", state=state, progress=0.5
        )

    def test_publish_and_filter(self, repo):
        repo.publish_job_state(self.make_event(task="t1"))
        repo.publish_job_state(self.make_event(task="t2", job="j2"))
        assert len(repo.job_events()) == 2
        assert len(repo.job_events(task_id="t1")) == 1
        assert len(repo.job_events(job_id="j2")) == 1
        assert repo.job_events(task_id="t1", job_id="j2") == []

    def test_job_subscribers_fan_out(self, repo):
        seen = []
        repo.subscribe_job_states(lambda e: seen.append(e.state))
        repo.publish_job_state(self.make_event(state="completed"))
        assert seen == ["completed"]
