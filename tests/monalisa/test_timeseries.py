"""Unit tests for the monitoring time series."""

import numpy as np
import pytest

from repro.monalisa.timeseries import TimeSeries


@pytest.fixture
def series():
    ts = TimeSeries()
    for t, v in [(0.0, 1.0), (10.0, 2.0), (20.0, 3.0), (30.0, 2.5)]:
        ts.append(t, v)
    return ts


class TestAppend:
    def test_length(self, series):
        assert len(series) == 4

    def test_out_of_order_rejected(self, series):
        with pytest.raises(ValueError):
            series.append(25.0, 1.0)

    def test_equal_time_allowed(self, series):
        series.append(30.0, 9.0)
        assert series.latest() == (30.0, 9.0)


class TestPointQueries:
    def test_latest(self, series):
        assert series.latest() == (30.0, 2.5)

    def test_latest_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().latest()

    def test_value_at_exact_sample(self, series):
        assert series.value_at(10.0) == 2.0

    def test_value_at_between_samples_steps(self, series):
        assert series.value_at(15.0) == 2.0

    def test_value_at_after_last(self, series):
        assert series.value_at(100.0) == 2.5

    def test_value_at_before_first_raises(self, series):
        with pytest.raises(ValueError):
            series.value_at(-1.0)


class TestWindowQueries:
    def test_window_inclusive(self, series):
        times, values = series.window(10.0, 20.0)
        assert list(times) == [10.0, 20.0]
        assert list(values) == [2.0, 3.0]

    def test_window_empty(self, series):
        times, values = series.window(11.0, 19.0)
        assert len(times) == 0

    def test_window_backwards_raises(self, series):
        with pytest.raises(ValueError):
            series.window(20.0, 10.0)

    def test_mean_whole_series(self, series):
        assert series.mean() == pytest.approx(np.mean([1.0, 2.0, 3.0, 2.5]))

    def test_mean_window(self, series):
        assert series.mean(10.0, 20.0) == pytest.approx(2.5)

    def test_mean_empty_window_raises(self, series):
        with pytest.raises(ValueError):
            series.mean(11.0, 19.0)

    def test_max(self, series):
        assert series.max() == 3.0

    def test_as_arrays_copies(self, series):
        times, values = series.as_arrays()
        times[0] = -999.0
        assert series.as_arrays()[0][0] == 0.0
