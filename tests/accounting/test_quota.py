"""Unit tests for quota management."""

import pytest

from repro.accounting.quota import QuotaError, QuotaManager


@pytest.fixture
def quotas():
    q = QuotaManager()
    q.set_quota("alice", 100.0)
    return q


class TestQuotaBasics:
    def test_available_equals_limit_initially(self, quotas):
        assert quotas.available("alice") == 100.0

    def test_unknown_user_raises(self, quotas):
        with pytest.raises(QuotaError):
            quotas.available("ghost")

    def test_resize_preserves_spend(self, quotas):
        r = quotas.reserve("alice", 10.0)
        quotas.commit(r.reservation_id, 10.0)
        quotas.set_quota("alice", 50.0)
        assert quotas.available("alice") == 40.0

    def test_negative_limit_rejected(self, quotas):
        with pytest.raises(QuotaError):
            quotas.set_quota("x", -1.0)


class TestReservations:
    def test_reserve_reduces_availability(self, quotas):
        quotas.reserve("alice", 30.0)
        assert quotas.available("alice") == 70.0

    def test_over_reserve_rejected(self, quotas):
        quotas.reserve("alice", 90.0)
        with pytest.raises(QuotaError):
            quotas.reserve("alice", 20.0)

    def test_commit_converts_to_spend(self, quotas):
        r = quotas.reserve("alice", 30.0)
        quotas.commit(r.reservation_id, 25.0)
        assert quotas.available("alice") == 75.0
        assert quotas.spent("alice") == 25.0

    def test_commit_can_exceed_reservation(self, quotas):
        r = quotas.reserve("alice", 10.0)
        quotas.commit(r.reservation_id, 40.0)
        assert quotas.spent("alice") == 40.0

    def test_release_returns_funds(self, quotas):
        r = quotas.reserve("alice", 30.0)
        quotas.release(r.reservation_id)
        assert quotas.available("alice") == 100.0

    def test_double_commit_rejected(self, quotas):
        r = quotas.reserve("alice", 10.0)
        quotas.commit(r.reservation_id, 10.0)
        with pytest.raises(QuotaError):
            quotas.commit(r.reservation_id, 10.0)

    def test_release_unknown_rejected(self, quotas):
        with pytest.raises(QuotaError):
            quotas.release(999)

    def test_negative_amounts_rejected(self, quotas):
        with pytest.raises(QuotaError):
            quotas.reserve("alice", -5.0)
        r = quotas.reserve("alice", 5.0)
        with pytest.raises(QuotaError):
            quotas.commit(r.reservation_id, -1.0)

    def test_ledger_records_commits(self, quotas):
        r = quotas.reserve("alice", 10.0, note="job-1")
        quotas.commit(r.reservation_id, 8.0)
        assert quotas.ledger == [("alice", 8.0, "job-1")]

    def test_concurrent_reservations_cannot_overdraw(self, quotas):
        quotas.reserve("alice", 60.0)
        with pytest.raises(QuotaError):
            quotas.reserve("alice", 60.0)
