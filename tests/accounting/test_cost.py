"""Unit tests for the cost model."""

import pytest

from repro.accounting.cost import CostModel
from repro.gridsim.clock import Simulator
from repro.gridsim.site import ChargeRates, Site


@pytest.fixture
def model():
    m = CostModel()
    m.register_rates("cheap", ChargeRates(cpu_hour=0.5, idle_hour=0.05))
    m.register_rates("pricey", ChargeRates(cpu_hour=5.0, idle_hour=1.0))
    return m


class TestCostModel:
    def test_register_site_pulls_rates(self):
        sim = Simulator()
        site = Site.simple(sim, "s", charge_rates=ChargeRates(cpu_hour=2.0))
        m = CostModel()
        m.register_site(site)
        assert m.rates("s").cpu_hour == 2.0

    def test_estimate_formula(self, model):
        est = model.estimate("pricey", runtime_s=3600.0, queue_time_s=1800.0, nodes=2)
        assert est.cpu_hours == pytest.approx(2.0)
        assert est.idle_hours == pytest.approx(1.0)
        assert est.cpu_cost == pytest.approx(10.0)
        assert est.idle_cost == pytest.approx(1.0)
        assert est.total == pytest.approx(11.0)

    def test_estimate_validation(self, model):
        with pytest.raises(ValueError):
            model.estimate("cheap", runtime_s=-1.0)
        with pytest.raises(ValueError):
            model.estimate("cheap", runtime_s=1.0, nodes=0)

    def test_unknown_site_raises(self, model):
        with pytest.raises(KeyError):
            model.rates("ghost")

    def test_sites_sorted(self, model):
        assert model.sites() == ["cheap", "pricey"]


class TestCheapestSite:
    def test_picks_lowest_total(self, model):
        est = model.cheapest_site({"cheap": 3600.0, "pricey": 3600.0})
        assert est.site_name == "cheap"

    def test_runtime_differences_can_flip_choice(self, model):
        # pricey at 10x rate but 100x faster
        est = model.cheapest_site({"cheap": 36000.0, "pricey": 360.0})
        assert est.site_name == "pricey"

    def test_queue_time_counts(self, model):
        est = model.cheapest_site(
            {"cheap": 3600.0, "pricey": 3600.0},
            queue_time_by_site={"cheap": 10 * 3600.0 * 100, "pricey": 0.0},
        )
        assert est.site_name == "pricey"

    def test_exclusion(self, model):
        est = model.cheapest_site({"cheap": 1.0, "pricey": 1.0}, exclude={"cheap"})
        assert est.site_name == "pricey"

    def test_unknown_sites_ignored(self, model):
        est = model.cheapest_site({"cheap": 1.0, "ghost": 0.0})
        assert est.site_name == "cheap"

    def test_no_candidates_raises(self, model):
        with pytest.raises(ValueError):
            model.cheapest_site({"ghost": 1.0})

    def test_tie_breaks_alphabetically(self):
        m = CostModel()
        m.register_rates("b", ChargeRates(cpu_hour=1.0))
        m.register_rates("a", ChargeRates(cpu_hour=1.0))
        assert m.cheapest_site({"a": 100.0, "b": 100.0}).site_name == "a"
