"""Unit tests for the Quota and Accounting Service facade."""

import pytest

from repro.accounting.service import QuotaAccountingService
from repro.gridsim.clock import Simulator
from repro.gridsim.site import ChargeRates, Site


@pytest.fixture
def service():
    sim = Simulator()
    svc = QuotaAccountingService()
    svc.register_site(Site.simple(sim, "cheap", charge_rates=ChargeRates(cpu_hour=0.5)))
    svc.register_site(Site.simple(sim, "pricey", charge_rates=ChargeRates(cpu_hour=5.0)))
    svc.quotas.set_quota("alice", 1000.0)
    return svc


class TestWireMethods:
    def test_site_rates(self, service):
        assert service.site_rates("cheap") == {"cpu_hour": 0.5, "idle_hour": 0.1}

    def test_estimate_cost(self, service):
        out = service.estimate_cost("pricey", runtime_s=3600.0)
        assert out["total"] == pytest.approx(5.0)

    def test_cheapest_site_query(self, service):
        out = service.cheapest_site({"cheap": 3600.0, "pricey": 3600.0})
        assert out["site"] == "cheap"
        assert out["total"] == pytest.approx(0.5)

    def test_cheapest_site_with_queue_times(self, service):
        out = service.cheapest_site(
            {"cheap": 3600.0, "pricey": 3600.0},
            queue_time_by_site={"cheap": 3600.0 * 1000},
        )
        assert out["site"] == "pricey"

    def test_quota_available(self, service):
        assert service.quota_available("alice") == 1000.0

    def test_charge_completed_task(self, service):
        amount = service.charge_completed_task("alice", "pricey", cpu_seconds=3600.0)
        assert amount == pytest.approx(5.0)
        assert service.quota_available("alice") == pytest.approx(995.0)
        assert service.quotas.ledger[-1][0] == "alice"

    def test_registrable_on_clarens_host(self, service):
        from repro.clarens.server import ClarensHost

        host = ClarensHost()
        host.users.add_user("u", "p", groups=("g",))
        host.acl.allow("accounting.*", groups=("g",))
        host.register("accounting", service)
        token = host.dispatch("system.login", ["u", "p"])
        out = host.dispatch("accounting.cheapest_site", [{"cheap": 10.0}], token)
        assert out["site"] == "cheap"
