"""Unit tests for load profiles and nodes."""

import numpy as np
import pytest

from repro.gridsim.node import LoadProfile, Node


class TestLoadProfileBasics:
    def test_constant_profile(self):
        p = LoadProfile.constant(2.0)
        assert p.load_at(0.0) == 2.0
        assert p.load_at(1e9) == 2.0

    def test_free_profile_rate_is_one(self):
        p = LoadProfile.free()
        assert p.rate_at(123.0) == 1.0

    def test_steps_switch_at_boundaries(self):
        p = LoadProfile.steps([(0.0, 0.0), (100.0, 3.0)])
        assert p.load_at(99.999) == 0.0
        assert p.load_at(100.0) == 3.0
        assert p.load_at(500.0) == 3.0

    def test_implicit_free_before_first_segment(self):
        p = LoadProfile.steps([(50.0, 4.0)])
        assert p.load_at(0.0) == 0.0
        assert p.load_at(50.0) == 4.0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile.constant(-0.5)

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile([])

    def test_rate_formula(self):
        p = LoadProfile.constant(1.0)
        assert p.rate_at(0.0) == pytest.approx(0.5)
        assert LoadProfile.constant(3.0).rate_at(0.0) == pytest.approx(0.25)

    def test_next_change_after(self):
        p = LoadProfile.steps([(0.0, 0.0), (10.0, 1.0), (20.0, 2.0)])
        assert p.next_change_after(0.0) == 10.0
        assert p.next_change_after(10.0) == 20.0
        assert p.next_change_after(20.0) is None


class TestWorkIntegration:
    def test_work_on_free_cpu_equals_wall_time(self):
        p = LoadProfile.free()
        assert p.work_between(0.0, 283.0) == pytest.approx(283.0)

    def test_work_under_load_is_diluted(self):
        p = LoadProfile.constant(1.0)
        assert p.work_between(0.0, 100.0) == pytest.approx(50.0)

    def test_work_across_segment_boundary(self):
        p = LoadProfile.steps([(0.0, 0.0), (50.0, 1.0)])
        # 50 s free + 50 s at half rate = 75 CPU-seconds
        assert p.work_between(0.0, 100.0) == pytest.approx(75.0)

    def test_work_between_backwards_raises(self):
        with pytest.raises(ValueError):
            LoadProfile.free().work_between(10.0, 5.0)

    def test_time_to_accrue_on_free_cpu(self):
        assert LoadProfile.free().time_to_accrue(0.0, 283.0) == pytest.approx(283.0)

    def test_time_to_accrue_under_load(self):
        assert LoadProfile.constant(1.0).time_to_accrue(0.0, 50.0) == pytest.approx(100.0)

    def test_time_to_accrue_across_boundary(self):
        p = LoadProfile.steps([(0.0, 1.0), (100.0, 0.0)])
        # First 100 s yields 50 CPU-s, remaining 25 at full rate.
        assert p.time_to_accrue(0.0, 75.0) == pytest.approx(125.0)

    def test_time_to_accrue_zero_work(self):
        assert LoadProfile.constant(5.0).time_to_accrue(10.0, 0.0) == 0.0

    def test_time_to_accrue_negative_raises(self):
        with pytest.raises(ValueError):
            LoadProfile.free().time_to_accrue(0.0, -1.0)

    def test_inverse_relation(self):
        """work_between(t0, t0 + time_to_accrue(t0, w)) == w."""
        p = LoadProfile.steps([(0.0, 2.0), (30.0, 0.5), (90.0, 4.0)])
        for w in (1.0, 25.0, 80.0, 300.0):
            t = p.time_to_accrue(5.0, w)
            assert p.work_between(5.0, 5.0 + t) == pytest.approx(w, rel=1e-9)


class TestRandomWalkProfile:
    def test_random_walk_deterministic_per_seed(self):
        a = LoadProfile.random_walk(np.random.default_rng(1), horizon=1000.0)
        b = LoadProfile.random_walk(np.random.default_rng(1), horizon=1000.0)
        for t in (0.0, 300.0, 600.0, 900.0):
            assert a.load_at(t) == b.load_at(t)

    def test_random_walk_loads_nonnegative(self):
        p = LoadProfile.random_walk(np.random.default_rng(2), horizon=5000.0, volatility=2.0)
        for t in np.linspace(0, 5000, 50):
            assert p.load_at(float(t)) >= 0.0

    def test_random_walk_validation(self):
        with pytest.raises(ValueError):
            LoadProfile.random_walk(np.random.default_rng(0), horizon=0.0)


class TestNode:
    def test_slot_accounting(self):
        n = Node(name="n", cpu_count=2)
        assert n.free_slots == 2
        n.occupy("t1")
        n.occupy("t2")
        assert n.free_slots == 0
        n.release("t1")
        assert n.free_slots == 1

    def test_occupy_full_node_raises(self):
        n = Node(name="n", cpu_count=1)
        n.occupy("t1")
        with pytest.raises(RuntimeError):
            n.occupy("t2")

    def test_double_occupy_same_task_raises(self):
        n = Node(name="n", cpu_count=2)
        n.occupy("t1")
        with pytest.raises(RuntimeError):
            n.occupy("t1")

    def test_release_unknown_raises(self):
        n = Node(name="n")
        with pytest.raises(ValueError):
            n.release("ghost")

    def test_invalid_cpu_count(self):
        with pytest.raises(ValueError):
            Node(name="n", cpu_count=0)

    def test_load_at_delegates_to_profile(self):
        n = Node(name="n", load_profile=LoadProfile.constant(1.5))
        assert n.load_at(99.0) == 1.5
