"""Unit tests for simulated input-file stage-in (§7's transfer-time factor)."""

import pytest

from repro.gridsim import GridBuilder, Job, JobState, Task, TaskSpec


def make_grid(simulate=True, bandwidth=80.0):
    grid = (
        GridBuilder(seed=4)
        .site("data", background_load=0.0)
        .site("compute", background_load=0.0)
        .link("data", "compute", capacity_mbps=bandwidth, latency_s=0.0)
        .file("input.dat", size_mb=100.0, at="data")  # 10 s over 80 Mbps
        .probe_noise(0.0)
        .build()
    )
    grid.scheduler.simulate_stage_in = simulate
    for es in grid.execution_services.values():
        es.runtime_estimator = lambda spec: spec.requested_cpu_hours * 3600.0
    return grid


def data_task(work=50.0):
    return Task(
        spec=TaskSpec(requested_cpu_hours=work / 3600.0, input_files=("input.dat",)),
        work_seconds=work,
    )


def pin(grid, site):
    grid.scheduler.select_site = lambda t, exclude=(): site


class TestStageIn:
    def test_remote_input_delays_start(self):
        grid = make_grid()
        pin(grid, "compute")
        t = data_task(work=50.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        assert t.state is JobState.PENDING  # still staging
        assert t.task_id in grid.scheduler.staging
        grid.run()
        ad = grid.sites["compute"].pool.ad(t.task_id)
        assert ad.start_time == pytest.approx(10.0)  # 100 MB / 80 Mbps
        assert ad.end_time == pytest.approx(60.0)

    def test_local_input_starts_immediately(self):
        grid = make_grid()
        pin(grid, "data")
        t = data_task(work=50.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        assert t.state is JobState.RUNNING
        grid.run()
        assert grid.sites["data"].pool.ad(t.task_id).end_time == pytest.approx(50.0)

    def test_staging_registry_cleared_after_delivery(self):
        grid = make_grid()
        pin(grid, "compute")
        t = data_task()
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        grid.run()
        assert t.task_id not in grid.scheduler.staging

    def test_simulation_can_be_disabled(self):
        grid = make_grid(simulate=False)
        pin(grid, "compute")
        t = data_task(work=50.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        grid.run()
        assert grid.sites["compute"].pool.ad(t.task_id).end_time == pytest.approx(50.0)

    def test_submission_listener_fires_after_staging(self):
        grid = make_grid()
        pin(grid, "compute")
        seen = []
        grid.scheduler.submission_listeners.append(
            lambda task, site: seen.append((grid.sim.now, site))
        )
        t = data_task()
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        assert seen == []  # not delivered yet
        grid.run()
        assert seen == [(10.0, "compute")]

    def test_slow_pipe_makes_stage_in_dominate(self):
        grid = make_grid(bandwidth=1.0)  # 800 s transfer
        pin(grid, "compute")
        t = data_task(work=50.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        grid.run()
        assert grid.sites["compute"].pool.ad(t.task_id).end_time == pytest.approx(850.0)

    def test_scheduler_prefers_data_local_site_end_to_end(self):
        """With honest stage-in charging, the ranked choice avoids the
        transfer entirely."""
        grid = make_grid(bandwidth=1.0)
        t = data_task(work=50.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        grid.run()
        assert grid.sites["data"].pool.has_task(t.task_id)
        assert grid.sites["data"].pool.ad(t.task_id).end_time == pytest.approx(50.0)


class TestCheckpointImageTransfer:
    def make_grid(self):
        grid = (
            GridBuilder(seed=6)
            .site("from", background_load=0.0)
            .site("to", background_load=0.0)
            .link("from", "to", capacity_mbps=80.0, latency_s=0.0)
            .probe_noise(0.0)
            .build()
        )
        for es in grid.execution_services.values():
            es.runtime_estimator = lambda spec: spec.requested_cpu_hours * 3600.0
        return grid

    def test_image_transfer_delays_restart(self):
        grid = self.make_grid()
        pin(grid, "from")
        t = Task(
            spec=TaskSpec(requested_cpu_hours=0.1),
            work_seconds=100.0,
            checkpointable=True,
            checkpoint_image_mb=100.0,  # 10 s over 80 Mbps
        )
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        grid.sim.run_until(40.0)
        ad = grid.execution_services["from"].vacate_task(t.task_id)
        grid.scheduler.redirect_task(
            t.task_id, new_site="to", carry_work=ad.accrued_work,
            image_size_mb=t.checkpoint_image_mb,
        )
        assert t.task_id in grid.scheduler.staging
        grid.run()
        new_ad = grid.sites["to"].pool.ad(t.task_id)
        assert new_ad.submit_time == pytest.approx(50.0)   # 40 + 10 transfer
        assert new_ad.accrued_work == pytest.approx(100.0)
        assert new_ad.end_time == pytest.approx(110.0)     # 60 s work left

    def test_zero_image_moves_instantly(self):
        grid = self.make_grid()
        pin(grid, "from")
        t = Task(spec=TaskSpec(requested_cpu_hours=0.1), work_seconds=100.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        grid.sim.run_until(40.0)
        grid.execution_services["from"].vacate_task(t.task_id)
        grid.scheduler.redirect_task(t.task_id, new_site="to")
        assert grid.sites["to"].pool.ad(t.task_id).submit_time == pytest.approx(40.0)

    def test_command_processor_ships_the_image(self):
        """End to end through the steering move verb."""
        from repro.core.steering.commands import CommandProcessor
        from repro.core.steering.subscriber import Subscriber

        grid = self.make_grid()
        subscriber = Subscriber()
        grid.scheduler.plan_listeners.append(subscriber.receive_plan)
        pin(grid, "from")
        t = Task(
            spec=TaskSpec(requested_cpu_hours=0.1),
            work_seconds=100.0,
            checkpointable=True,
            checkpoint_image_mb=100.0,
        )
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        grid.sim.run_until(40.0)
        processor = CommandProcessor(subscriber, grid.scheduler, grid.execution_services)
        result = processor.move(t.task_id, target_site="to")
        assert result.ok
        grid.run()
        new_ad = grid.sites["to"].pool.ad(t.task_id)
        assert new_ad.submit_time == pytest.approx(50.0)


class TestStagingEdgeCases:
    def test_killed_while_staging_never_delivers(self):
        grid = make_grid()
        pin(grid, "compute")
        t = data_task(work=50.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        assert t.task_id in grid.scheduler.staging
        t.state = JobState.KILLED  # killed mid-transfer
        grid.run()
        assert not grid.sites["compute"].pool.has_task(t.task_id)
        assert t.state is JobState.KILLED

    def test_steering_kill_works_during_staging(self):
        from repro.core.steering.commands import CommandProcessor
        from repro.core.steering.subscriber import Subscriber

        grid = make_grid()
        subscriber = Subscriber()
        grid.scheduler.plan_listeners.append(subscriber.receive_plan)
        pin(grid, "compute")
        t = data_task(work=50.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        processor = CommandProcessor(subscriber, grid.scheduler, grid.execution_services)
        result = processor.kill(t.task_id)
        assert result.ok
        assert "staging" in result.detail
        grid.run()
        assert t.state is JobState.KILLED
        assert not grid.sites["compute"].pool.has_task(t.task_id)

    def test_pause_during_staging_fails_cleanly(self):
        from repro.core.steering.commands import CommandProcessor
        from repro.core.steering.subscriber import Subscriber

        grid = make_grid()
        subscriber = Subscriber()
        grid.scheduler.plan_listeners.append(subscriber.receive_plan)
        pin(grid, "compute")
        t = data_task(work=50.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        processor = CommandProcessor(subscriber, grid.scheduler, grid.execution_services)
        result = processor.pause(t.task_id)
        assert not result.ok  # no pool holds it yet; honest failure
        grid.run()
        assert t.state is JobState.COMPLETED  # staging still delivered
