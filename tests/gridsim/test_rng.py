"""Unit tests for deterministic random streams."""

import numpy as np

from repro.gridsim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(seed=1).stream("workload").random(5)
        b = RngStreams(seed=1).stream("workload").random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).stream("workload").random(5)
        b = RngStreams(seed=2).stream("workload").random(5)
        assert not np.allclose(a, b)

    def test_different_names_are_independent(self):
        rngs = RngStreams(seed=1)
        a = rngs.stream("a").random(5)
        b = rngs.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_stream_cached_by_name(self):
        rngs = RngStreams(seed=1)
        assert rngs.stream("x") is rngs.stream("x")

    def test_creation_order_irrelevant(self):
        r1 = RngStreams(seed=9)
        r1.stream("first")
        a = r1.stream("target").random(3)

        r2 = RngStreams(seed=9)
        r2.stream("other")
        r2.stream("yet-another")
        b = r2.stream("target").random(3)
        assert np.allclose(a, b)

    def test_draws_on_one_stream_do_not_perturb_another(self):
        r1 = RngStreams(seed=3)
        r1.stream("noisy").random(1000)
        a = r1.stream("quiet").random(3)

        r2 = RngStreams(seed=3)
        b = r2.stream("quiet").random(3)
        assert np.allclose(a, b)

    def test_fork_indexed_streams(self):
        rngs = RngStreams(seed=4)
        a = rngs.fork("site", 0).random(3)
        b = rngs.fork("site", 1).random(3)
        assert not np.allclose(a, b)
        again = RngStreams(seed=4).fork("site", 0).random(3)
        assert np.allclose(a, again)
