"""Unit tests for the event queue primitives."""

import pytest

from repro.gridsim.events import Event, EventQueue, SimulationError


def make_queue_with(times):
    q = EventQueue()
    fired = []
    handles = [q.push(t, (lambda t=t: fired.append(t)), label=f"t{t}") for t in times]
    return q, fired, handles


class TestEventOrdering:
    def test_pops_in_time_order(self):
        q, fired, _ = make_queue_with([3.0, 1.0, 2.0])
        times = []
        while q:
            ev = q.pop()
            times.append(ev.time)
        assert times == [1.0, 2.0, 3.0]

    def test_equal_times_pop_in_insertion_order(self):
        q = EventQueue()
        order = []
        q.push(5.0, lambda: order.append("first"))
        q.push(5.0, lambda: order.append("second"))
        q.push(5.0, lambda: order.append("third"))
        while q:
            q.pop().action()
        assert order == ["first", "second", "third"]

    def test_event_comparison_uses_time_then_seq(self):
        a = Event(time=1.0, seq=5, action=lambda: None)
        b = Event(time=1.0, seq=6, action=lambda: None)
        c = Event(time=0.5, seq=9, action=lambda: None)
        assert a < b
        assert c < a


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        fired = []
        h = q.push(1.0, lambda: fired.append("a"))
        q.push(2.0, lambda: fired.append("b"))
        h.cancel()
        while q:
            q.pop().action()
        assert fired == ["b"]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert h.cancelled
        assert len(q) == 0

    def test_len_excludes_cancelled(self):
        q, _, handles = make_queue_with([1.0, 2.0, 3.0])
        handles[1].cancel()
        assert len(q) == 2

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None, label="dead")
        q.push(2.0, lambda: None, label="live")
        h.cancel()
        assert q.peek().label == "live"


class TestQueueEdgeCases:
    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        h = q.push(1.0, lambda: None)
        assert q
        h.cancel()
        assert not q

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(float("nan"), lambda: None)

    def test_clear_empties_queue(self):
        q, _, _ = make_queue_with([1.0, 2.0])
        q.clear()
        assert len(q) == 0
        assert q.peek() is None

    def test_handle_reports_time(self):
        q = EventQueue()
        h = q.push(7.5, lambda: None)
        assert h.time == 7.5


class TestHeapCompaction:
    def test_heap_stays_bounded_under_repeated_rearming(self):
        """A forever re-armed timer must not grow the heap without bound.

        This is the steering-poll pattern: cancel the pending timer, arm a
        new one.  Lazy cancellation alone would retain every cancelled
        entry until its pop time; compaction keeps cancelled entries from
        ever outnumbering live ones.
        """
        q = EventQueue()
        handle = q.push(1.0, lambda: None, label="timer")
        for i in range(10_000):
            handle.cancel()
            handle = q.push(float(i + 2), lambda: None, label="timer")
        assert len(q) == 1  # one live timer
        # Bounded: cancelled entries can never exceed half the heap (plus
        # the one just cancelled before compaction triggers).
        assert len(q._heap) <= 3

    def test_compaction_preserves_pop_order_bit_for_bit(self):
        # (time, seq) is a total order with unique seq, so the expected
        # pop order of the surviving events is their sorted key order —
        # heavy cancellation (and the compactions it triggers) must not
        # change it.
        import random

        rng = random.Random(42)
        q = EventQueue()
        expected = []
        for i in range(2_000):
            t = rng.uniform(0.0, 100.0)
            handle = q.push(t, lambda: None, label=f"e{i}")
            if rng.random() < 0.7:
                handle.cancel()
            else:
                expected.append((t, handle.event.seq, f"e{i}"))
        expected.sort()
        got = []
        while q:
            e = q.pop()
            got.append((e.time, e.seq, e.label))
        assert got == expected

    def test_cancel_after_fire_does_not_corrupt_accounting(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.pop()  # fires h's event
        h.cancel()  # late cancel of an already-fired event
        assert len(q) == 1
        assert q.pop().time == 2.0
