"""Unit tests for tasks, jobs, DAGs and concrete job plans."""

import pytest

from repro.gridsim.job import (
    ConcreteJobPlan,
    DependencyError,
    Job,
    JobState,
    Task,
    TaskBinding,
    TaskSpec,
    bag_of_tasks,
    sequential_job,
)


def make_task(work=100.0, **spec_kwargs):
    return Task(spec=TaskSpec(**spec_kwargs), work_seconds=work)


class TestTaskSpec:
    def test_defaults(self):
        spec = TaskSpec()
        assert spec.nodes == 1
        assert spec.task_type == "batch"

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            TaskSpec(nodes=0)

    def test_invalid_requested_hours(self):
        with pytest.raises(ValueError):
            TaskSpec(requested_cpu_hours=0.0)

    def test_invalid_task_type(self):
        with pytest.raises(ValueError):
            TaskSpec(task_type="weird")

    def test_attributes_cover_template_fields(self):
        attrs = TaskSpec(owner="u", executable="e").attributes()
        assert attrs["owner"] == "u"
        assert attrs["executable"] == "e"
        assert set(attrs) == {
            "owner", "account", "partition", "queue", "nodes", "task_type", "executable",
        }

    def test_with_priority_returns_copy(self):
        spec = TaskSpec(priority=0)
        updated = spec.with_priority(9)
        assert updated.priority == 9
        assert spec.priority == 0


class TestTask:
    def test_work_must_be_positive(self):
        with pytest.raises(ValueError):
            Task(spec=TaskSpec(), work_seconds=0.0)

    def test_unique_ids(self):
        a, b = make_task(), make_task()
        assert a.task_id != b.task_id

    def test_initial_state_pending(self):
        assert make_task().state is JobState.PENDING


class TestJobStates:
    def test_terminal_states(self):
        for state in (JobState.COMPLETED, JobState.FAILED, JobState.KILLED, JobState.MOVED):
            assert state.is_terminal
        for state in (JobState.PENDING, JobState.QUEUED, JobState.RUNNING, JobState.PAUSED):
            assert not state.is_terminal

    def test_active_states(self):
        assert JobState.RUNNING.is_active
        assert JobState.QUEUED.is_active
        assert JobState.PAUSED.is_active
        assert not JobState.PENDING.is_active
        assert not JobState.COMPLETED.is_active


class TestJob:
    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            Job(tasks=[])

    def test_tasks_inherit_job_id(self):
        t = make_task()
        job = Job(tasks=[t])
        assert t.job_id == job.job_id

    def test_duplicate_task_ids_rejected(self):
        t = make_task()
        with pytest.raises(DependencyError):
            Job(tasks=[t, t])

    def test_unknown_dependency_target_rejected(self):
        t = make_task()
        with pytest.raises(DependencyError):
            Job(tasks=[t], dependencies={"nope": (t.task_id,)})

    def test_unknown_parent_rejected(self):
        t = make_task()
        with pytest.raises(DependencyError):
            Job(tasks=[t], dependencies={t.task_id: ("ghost",)})

    def test_cycle_rejected(self):
        a, b = make_task(), make_task()
        with pytest.raises(DependencyError):
            Job(tasks=[a, b], dependencies={a.task_id: (b.task_id,), b.task_id: (a.task_id,)})

    def test_self_cycle_rejected(self):
        a = make_task()
        with pytest.raises(DependencyError):
            Job(tasks=[a], dependencies={a.task_id: (a.task_id,)})

    def test_task_lookup(self):
        a = make_task()
        job = Job(tasks=[a])
        assert job.task(a.task_id) is a
        with pytest.raises(KeyError):
            job.task("missing")

    def test_ready_tasks_respect_dependencies(self):
        a, b, c = make_task(), make_task(), make_task()
        job = Job(
            tasks=[a, b, c],
            dependencies={b.task_id: (a.task_id,), c.task_id: (b.task_id,)},
        )
        assert job.ready_tasks([]) == [a]
        assert job.ready_tasks([a.task_id]) == [b]
        assert job.ready_tasks([a.task_id, b.task_id]) == [c]

    def test_ready_tasks_skips_non_pending(self):
        a = make_task()
        job = Job(tasks=[a])
        a.state = JobState.RUNNING
        assert job.ready_tasks([]) == []

    def test_topological_order_valid(self):
        a, b, c, d = (make_task() for _ in range(4))
        job = Job(
            tasks=[d, c, b, a],
            dependencies={
                b.task_id: (a.task_id,),
                c.task_id: (a.task_id,),
                d.task_id: (b.task_id, c.task_id),
            },
        )
        order = [t.task_id for t in job.topological_order()]
        assert order.index(a.task_id) < order.index(b.task_id)
        assert order.index(a.task_id) < order.index(c.task_id)
        assert order.index(b.task_id) < order.index(d.task_id)
        assert order.index(c.task_id) < order.index(d.task_id)

    def test_aggregate_state_precedence(self):
        a, b = make_task(), make_task()
        job = Job(tasks=[a, b])
        assert job.state is JobState.PENDING
        a.state = JobState.QUEUED
        assert job.state is JobState.QUEUED
        a.state = JobState.RUNNING
        assert job.state is JobState.RUNNING
        b.state = JobState.FAILED
        assert job.state is JobState.FAILED
        b.state = JobState.COMPLETED
        a.state = JobState.COMPLETED
        assert job.state is JobState.COMPLETED


class TestConcreteJobPlan:
    def make_plan(self):
        a, b = make_task(), make_task()
        job = Job(tasks=[a, b])
        plan = ConcreteJobPlan(
            job_id=job.job_id,
            bindings=(
                TaskBinding(a.task_id, "siteA"),
                TaskBinding(b.task_id, "siteB"),
            ),
        )
        return job, plan, a, b

    def test_site_for(self):
        _, plan, a, b = self.make_plan()
        assert plan.site_for(a.task_id) == "siteA"
        assert plan.site_for(b.task_id) == "siteB"

    def test_site_for_unknown_raises(self):
        _, plan, _, _ = self.make_plan()
        with pytest.raises(KeyError):
            plan.site_for("ghost")

    def test_sites_deduplicated_in_order(self):
        a, b = make_task(), make_task()
        plan = ConcreteJobPlan(
            job_id="j",
            bindings=(TaskBinding(a.task_id, "s1"), TaskBinding(b.task_id, "s1")),
        )
        assert plan.sites() == ["s1"]

    def test_rebind_moves_one_task(self):
        _, plan, a, b = self.make_plan()
        new = plan.rebind(a.task_id, "siteC")
        assert new.site_for(a.task_id) == "siteC"
        assert new.site_for(b.task_id) == "siteB"
        assert plan.site_for(a.task_id) == "siteA"  # original untouched

    def test_rebind_unknown_raises(self):
        _, plan, _, _ = self.make_plan()
        with pytest.raises(KeyError):
            plan.rebind("ghost", "siteC")


class TestJobFactories:
    def test_sequential_job_chains_dependencies(self):
        specs = [TaskSpec(executable=f"s{i}") for i in range(3)]
        job = sequential_job(specs, [10.0, 20.0, 30.0])
        order = job.topological_order()
        assert [t.spec.executable for t in order] == ["s0", "s1", "s2"]

    def test_sequential_job_length_mismatch(self):
        with pytest.raises(ValueError):
            sequential_job([TaskSpec()], [1.0, 2.0])

    def test_bag_of_tasks_has_no_dependencies(self):
        job = bag_of_tasks([TaskSpec(), TaskSpec()], [5.0, 6.0])
        assert job.dependencies == {}
        assert len(job.ready_tasks([])) == 2
