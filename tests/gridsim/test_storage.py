"""Unit tests for storage elements and the replica catalog."""

import pytest

from repro.gridsim.network import Link, Network
from repro.gridsim.storage import GridFile, ReplicaCatalog, StorageElement, StorageError


class TestGridFile:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            GridFile("f", size_mb=-1.0)


class TestStorageElement:
    def test_store_and_get(self):
        el = StorageElement("s")
        el.store(GridFile("f", 10.0))
        assert el.has("f")
        assert el.get("f").size_mb == 10.0

    def test_get_missing_raises(self):
        with pytest.raises(StorageError):
            StorageElement("s").get("ghost")

    def test_capacity_enforced(self):
        el = StorageElement("s", capacity_mb=100.0)
        el.store(GridFile("a", 80.0))
        with pytest.raises(StorageError):
            el.store(GridFile("b", 30.0))

    def test_overwrite_counts_delta(self):
        el = StorageElement("s", capacity_mb=100.0)
        el.store(GridFile("a", 80.0))
        el.store(GridFile("a", 95.0))  # replaces, delta 15 fits
        assert el.used_mb == pytest.approx(95.0)

    def test_delete(self):
        el = StorageElement("s")
        el.store(GridFile("a", 1.0))
        el.delete("a")
        assert not el.has("a")
        with pytest.raises(StorageError):
            el.delete("a")

    def test_free_space_accounting(self):
        el = StorageElement("s", capacity_mb=50.0)
        el.store(GridFile("a", 20.0))
        assert el.free_mb == pytest.approx(30.0)

    def test_files_sorted(self):
        el = StorageElement("s")
        el.store(GridFile("b", 1.0))
        el.store(GridFile("a", 1.0))
        assert [f.name for f in el.files()] == ["a", "b"]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StorageElement("s", capacity_mb=0.0)


def make_catalog():
    net = Network()
    net.add_link(Link("near", "home", capacity_mbps=1000.0, latency_s=0.001))
    net.add_link(Link("far", "home", capacity_mbps=10.0, latency_s=0.2))
    catalog = ReplicaCatalog(network=net)
    for name in ("near", "far", "home"):
        catalog.register(StorageElement(name))
    return catalog


class TestReplicaCatalog:
    def test_publish_and_replicas(self):
        c = make_catalog()
        c.publish("near", GridFile("data", 100.0))
        c.publish("far", GridFile("data", 100.0))
        assert c.replicas("data") == {"near", "far"}

    def test_lookup_missing_raises(self):
        with pytest.raises(StorageError):
            make_catalog().lookup("ghost")

    def test_unregistered_site_raises(self):
        with pytest.raises(StorageError):
            make_catalog().element("ghost")

    def test_closest_replica_prefers_local(self):
        c = make_catalog()
        c.publish("home", GridFile("data", 100.0))
        c.publish("near", GridFile("data", 100.0))
        assert c.closest_replica("data", "home") == "home"

    def test_closest_replica_by_transfer_cost(self):
        c = make_catalog()
        c.publish("near", GridFile("data", 100.0))
        c.publish("far", GridFile("data", 100.0))
        assert c.closest_replica("data", "home") == "near"

    def test_closest_replica_no_replica_raises(self):
        with pytest.raises(StorageError):
            make_catalog().closest_replica("ghost", "home")

    def test_stage_in_local_files_free(self):
        c = make_catalog()
        c.publish("home", GridFile("data", 100.0))
        assert c.stage_in_time(["data"], "home") == 0.0

    def test_stage_in_sums_transfers(self):
        c = make_catalog()
        c.publish("near", GridFile("a", 125.0))   # 1000 Mbit at 1000 Mbps = 1s
        c.publish("near", GridFile("b", 125.0))
        t = c.stage_in_time(["a", "b"], "home")
        assert t == pytest.approx(2 * (0.001 + 1.0))

    def test_catalog_without_network_lexicographic(self):
        c = ReplicaCatalog()
        c.register(StorageElement("zeta"))
        c.register(StorageElement("alpha"))
        c.publish("zeta", GridFile("f", 1.0))
        c.publish("alpha", GridFile("f", 1.0))
        assert c.closest_replica("f", "other") == "alpha"
