"""Unit tests for the GridBuilder facade."""

import pytest

from repro.gridsim import GridBuilder, Job, LoadProfile, Task, TaskSpec


class TestGridBuilder:
    def test_builds_declared_sites(self, two_site_grid):
        assert sorted(two_site_grid.sites) == ["siteA", "siteB"]
        assert sorted(two_site_grid.execution_services) == ["siteA", "siteB"]

    def test_background_load_applied(self, two_site_grid):
        assert two_site_grid.site("siteA").nodes[0].load_at(0.0) == 1.5
        assert two_site_grid.site("siteB").nodes[0].load_at(0.0) == 0.0

    def test_explicit_load_profile_wins(self):
        profile = LoadProfile.steps([(0.0, 0.0), (100.0, 5.0)])
        grid = GridBuilder().site("s", background_load=9.0, load_profile=profile).build()
        assert grid.site("s").nodes[0].load_at(50.0) == 0.0
        assert grid.site("s").nodes[0].load_at(150.0) == 5.0

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError):
            GridBuilder().site("x").site("x")

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridBuilder().build()

    def test_links_registered(self, two_site_grid):
        assert two_site_grid.network.path_bandwidth_mbps("siteA", "siteB") == 100.0

    def test_files_published(self):
        grid = (
            GridBuilder()
            .site("a").site("b")
            .link("a", "b", capacity_mbps=10.0)
            .file("data.db", size_mb=50.0, at="a")
            .build()
        )
        assert grid.catalog.replicas("data.db") == {"a"}

    def test_flocking_configured(self):
        grid = GridBuilder().site("a").site("b").flock("a", "b").build()
        assert grid.sites["b"].pool in grid.sites["a"].pool.flock_targets

    def test_charge_rates_configurable(self):
        grid = GridBuilder().site("s", cpu_hour_rate=5.0, idle_hour_rate=0.5).build()
        assert grid.site("s").charge_rates.cpu_hour == 5.0

    def test_scheduler_knows_all_sites(self, two_site_grid):
        assert two_site_grid.scheduler.sites() == ["siteA", "siteB"]

    def test_end_to_end_job_run(self, two_site_grid):
        for es in two_site_grid.execution_services.values():
            es.runtime_estimator = lambda spec: spec.requested_cpu_hours * 3600.0
        t = Task(spec=TaskSpec(requested_cpu_hours=0.1), work_seconds=360.0)
        two_site_grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        two_site_grid.run()
        assert t.state.value == "completed"

    def test_probe_noise_zero_gives_exact_probe(self, two_site_grid):
        r = two_site_grid.probe.measure("siteA", "siteB")
        assert r.measured_mbps == r.true_mbps

    def test_same_seed_same_grid_behaviour(self):
        def build_and_probe(seed):
            grid = (
                GridBuilder(seed=seed)
                .site("a").site("b")
                .link("a", "b", capacity_mbps=100.0)
                .probe_noise(0.1)
                .build()
            )
            return [grid.probe.measure("a", "b").measured_mbps for _ in range(5)]

        assert build_and_probe(3) == build_and_probe(3)
        assert build_and_probe(3) != build_and_probe(4)
