"""Unit and robustness tests for stochastic fault injection."""

import numpy as np
import pytest

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState, Task, TaskSpec
from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService, ExecutionServiceDown
from repro.gridsim.faults import FaultInjector, FaultPlan
from repro.gridsim.site import Site


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(mtbf_s=0.0, mttr_s=1.0)
        with pytest.raises(ValueError):
            FaultPlan(mtbf_s=1.0, mttr_s=-1.0)


class TestFaultInjector:
    def make(self, mtbf=100.0, mttr=50.0, seed=0):
        sim = Simulator()
        es = ExecutionService(Site.simple(sim, "s"))
        injector = FaultInjector(sim, rng=np.random.default_rng(seed))
        injector.add_site(es, mtbf_s=mtbf, mttr_s=mttr)
        return sim, es, injector

    def test_failure_then_repair_cycle(self):
        sim, es, injector = self.make()
        injector.start()
        sim.run_until(2000.0)
        kinds = [e.kind for e in injector.events]
        assert "failure" in kinds and "repair" in kinds
        # Events alternate: failure, repair, failure, ...
        for a, b in zip(kinds, kinds[1:]):
            assert a != b

    def test_service_actually_goes_down_and_up(self):
        sim, es, injector = self.make()
        injector.start()
        first_failure = None
        while first_failure is None:
            sim.step()
            if injector.events:
                first_failure = injector.events[0]
        with pytest.raises(ExecutionServiceDown):
            es.ping()
        # Run until the matching repair.
        while len(injector.events) < 2:
            sim.step()
        assert es.ping() is True

    def test_deterministic_per_seed(self):
        _, _, a = self.make(seed=9)
        a.start()
        a.sim.run_until(5000.0)
        _, _, b = self.make(seed=9)
        b.start()
        b.sim.run_until(5000.0)
        assert [(e.time, e.kind) for e in a.events] == [(e.time, e.kind) for e in b.events]

    def test_availability_accounting(self):
        sim, es, injector = self.make(mtbf=100.0, mttr=100.0)
        injector.start()
        sim.run_until(10000.0)
        avail = injector.availability("s", 10000.0)
        # MTBF == MTTR -> availability near 50 %.
        assert 0.3 < avail < 0.7

    def test_duplicate_site_rejected(self):
        sim, es, injector = self.make()
        with pytest.raises(ValueError):
            injector.add_site(es, mtbf_s=1.0, mttr_s=1.0)

    def test_double_start_rejected(self):
        sim, es, injector = self.make()
        injector.start()
        with pytest.raises(RuntimeError):
            injector.start()


class TestRobustnessUnderChurn:
    def test_all_jobs_complete_despite_site_churn(self):
        """The headline robustness property: with Backup & Recovery running,
        every job completes even while sites fail and recover underneath."""
        grid = (
            GridBuilder(seed=55)
            .site("a", nodes=2).site("b", nodes=2).site("c", nodes=2)
            .probe_noise(0.0)
            .build()
        )
        policy = SteeringPolicy(poll_interval_s=30.0, min_elapsed_wall_s=1e9)
        gae = build_gae(grid, policy=policy)
        gae.add_user("u", "pw")

        injector = FaultInjector(gae.sim, rng=np.random.default_rng(3))
        # Only two of three sites churn; one stays reliable so completion
        # is always possible.
        injector.add_site(gae.grid.execution_services["a"], mtbf_s=600.0, mttr_s=300.0)
        injector.add_site(gae.grid.execution_services["b"], mtbf_s=600.0, mttr_s=300.0)

        tasks = [
            Task(spec=TaskSpec(owner="u", requested_cpu_hours=0.1), work_seconds=300.0)
            for _ in range(6)
        ]
        for t in tasks:
            gae.scheduler.submit_job(Job(tasks=[t], owner="u"))

        gae.start()
        injector.start()
        gae.grid.run_until(40000.0)
        gae.stop()

        assert injector.failures(), "churn must actually have happened"
        for t in tasks:
            assert t.state is JobState.COMPLETED, f"{t.task_id} ended {t.state}"


class TestOutageWindows:
    def test_window_validation(self):
        from repro.gridsim.faults import OutageWindow

        with pytest.raises(ValueError):
            OutageWindow(-1.0, 5.0)
        with pytest.raises(ValueError):
            OutageWindow(5.0, 5.0)

    def test_merge_overlapping_and_abutting(self):
        from repro.gridsim.faults import OutageWindow, merge_windows

        merged = merge_windows([
            OutageWindow(0.0, 10.0),
            OutageWindow(10.0, 20.0),   # exact abutment: one outage
            OutageWindow(15.0, 30.0),   # overlap
            OutageWindow(40.0, 50.0),   # disjoint
        ])
        assert merged == [OutageWindow(0.0, 30.0), OutageWindow(40.0, 50.0)]

    def test_flapping_full_duty_degenerates_to_one_outage(self):
        from repro.gridsim.faults import flapping_windows, merge_windows

        windows = flapping_windows(0.0, 30.0, period_s=10.0, duty=1.0)
        assert len(windows) == 3
        assert len(merge_windows(windows)) == 1

    def test_flapping_validation(self):
        from repro.gridsim.faults import flapping_windows

        with pytest.raises(ValueError):
            flapping_windows(0.0, 10.0, period_s=0.0)
        with pytest.raises(ValueError):
            flapping_windows(0.0, 10.0, period_s=5.0, duty=0.0)
        with pytest.raises(ValueError):
            flapping_windows(10.0, 10.0, period_s=5.0)


class TestOutageScheduler:
    def make(self):
        from repro.gridsim.faults import OutageScheduler

        sim = Simulator()
        es = ExecutionService(Site.simple(sim, "s"))
        return sim, es, OutageScheduler(sim)

    def test_single_window_fails_and_recovers(self):
        sim, es, sched = self.make()
        sched.add_outage(es, 10.0, 5.0)
        sched.start()
        sim.run_until(12.0)
        with pytest.raises(ExecutionServiceDown):
            es.ping()
        sim.run_until(15.0)
        assert es.ping() is True
        assert [e.kind for e in sched.events] == ["failure", "repair"]
        assert sched.availability("s", 100.0) == pytest.approx(0.95)

    def test_abutting_windows_do_not_double_fire_recovery(self):
        """The boundary regression: a window ending exactly at the clock
        tick another begins must behave as ONE outage — exactly one
        failure and one repair, no repair/failure pair at the shared
        boundary instant."""
        sim, es, sched = self.make()
        sched.add_outage(es, 0.0, 10.0)
        sched.add_outage(es, 10.0, 10.0)   # ends exactly where #1 starts
        sim_events = sched.start().events
        sim.run_until(10.0)                # the shared boundary tick
        assert [e.kind for e in sim_events] == ["failure"]
        with pytest.raises(ExecutionServiceDown):
            es.ping()                      # still down across the boundary
        sim.run_until(20.0)
        assert [(e.time, e.kind) for e in sim_events] == [
            (0.0, "failure"), (20.0, "repair"),
        ]

    def test_boundary_tick_replay_fires_repair_once(self):
        sim, es, sched = self.make()
        sched.add_outage(es, 0.0, 10.0)
        sched.start()
        sim.run_until(10.0)
        sim.run_until(10.0)                # re-running the boundary tick
        sim.run_until(10.0)
        repairs = [e for e in sched.events if e.kind == "repair"]
        assert len(repairs) == 1
        assert es.ping() is True

    def test_does_not_repair_outages_it_did_not_cause(self):
        sim, es, sched = self.make()
        sched.add_outage(es, 10.0, 5.0)
        sched.start()
        es.fail()                          # someone else took the site down
        sim.run_until(20.0)
        with pytest.raises(ExecutionServiceDown):
            es.ping()                      # scheduler must not "fix" it
        assert sched.events == []

    def test_registration_after_start_rejected(self):
        sim, es, sched = self.make()
        sched.add_outage(es, 0.0, 1.0)
        sched.start()
        with pytest.raises(RuntimeError):
            sched.add_outage(es, 5.0, 1.0)
        with pytest.raises(RuntimeError):
            sched.add_flapping(es, 5.0, 10.0, 1.0)
        with pytest.raises(RuntimeError):
            sched.start()

    def test_flapping_schedule_events(self):
        sim, es, sched = self.make()
        sched.add_flapping(es, 0.0, 30.0, period_s=10.0, duty=0.5)
        sched.start()
        sim.run_until(30.0)
        assert [(e.time, e.kind) for e in sched.events] == [
            (0.0, "failure"), (5.0, "repair"),
            (10.0, "failure"), (15.0, "repair"),
            (20.0, "failure"), (25.0, "repair"),
        ]
