"""Unit and robustness tests for stochastic fault injection."""

import numpy as np
import pytest

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState, Task, TaskSpec
from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService, ExecutionServiceDown
from repro.gridsim.faults import FaultInjector, FaultPlan
from repro.gridsim.site import Site


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(mtbf_s=0.0, mttr_s=1.0)
        with pytest.raises(ValueError):
            FaultPlan(mtbf_s=1.0, mttr_s=-1.0)


class TestFaultInjector:
    def make(self, mtbf=100.0, mttr=50.0, seed=0):
        sim = Simulator()
        es = ExecutionService(Site.simple(sim, "s"))
        injector = FaultInjector(sim, rng=np.random.default_rng(seed))
        injector.add_site(es, mtbf_s=mtbf, mttr_s=mttr)
        return sim, es, injector

    def test_failure_then_repair_cycle(self):
        sim, es, injector = self.make()
        injector.start()
        sim.run_until(2000.0)
        kinds = [e.kind for e in injector.events]
        assert "failure" in kinds and "repair" in kinds
        # Events alternate: failure, repair, failure, ...
        for a, b in zip(kinds, kinds[1:]):
            assert a != b

    def test_service_actually_goes_down_and_up(self):
        sim, es, injector = self.make()
        injector.start()
        first_failure = None
        while first_failure is None:
            sim.step()
            if injector.events:
                first_failure = injector.events[0]
        with pytest.raises(ExecutionServiceDown):
            es.ping()
        # Run until the matching repair.
        while len(injector.events) < 2:
            sim.step()
        assert es.ping() is True

    def test_deterministic_per_seed(self):
        _, _, a = self.make(seed=9)
        a.start()
        a.sim.run_until(5000.0)
        _, _, b = self.make(seed=9)
        b.start()
        b.sim.run_until(5000.0)
        assert [(e.time, e.kind) for e in a.events] == [(e.time, e.kind) for e in b.events]

    def test_availability_accounting(self):
        sim, es, injector = self.make(mtbf=100.0, mttr=100.0)
        injector.start()
        sim.run_until(10000.0)
        avail = injector.availability("s", 10000.0)
        # MTBF == MTTR -> availability near 50 %.
        assert 0.3 < avail < 0.7

    def test_duplicate_site_rejected(self):
        sim, es, injector = self.make()
        with pytest.raises(ValueError):
            injector.add_site(es, mtbf_s=1.0, mttr_s=1.0)

    def test_double_start_rejected(self):
        sim, es, injector = self.make()
        injector.start()
        with pytest.raises(RuntimeError):
            injector.start()


class TestRobustnessUnderChurn:
    def test_all_jobs_complete_despite_site_churn(self):
        """The headline robustness property: with Backup & Recovery running,
        every job completes even while sites fail and recover underneath."""
        grid = (
            GridBuilder(seed=55)
            .site("a", nodes=2).site("b", nodes=2).site("c", nodes=2)
            .probe_noise(0.0)
            .build()
        )
        policy = SteeringPolicy(poll_interval_s=30.0, min_elapsed_wall_s=1e9)
        gae = build_gae(grid, policy=policy)
        gae.add_user("u", "pw")

        injector = FaultInjector(gae.sim, rng=np.random.default_rng(3))
        # Only two of three sites churn; one stays reliable so completion
        # is always possible.
        injector.add_site(gae.grid.execution_services["a"], mtbf_s=600.0, mttr_s=300.0)
        injector.add_site(gae.grid.execution_services["b"], mtbf_s=600.0, mttr_s=300.0)

        tasks = [
            Task(spec=TaskSpec(owner="u", requested_cpu_hours=0.1), work_seconds=300.0)
            for _ in range(6)
        ]
        for t in tasks:
            gae.scheduler.submit_job(Job(tasks=[t], owner="u"))

        gae.start()
        injector.start()
        gae.grid.run_until(40000.0)
        gae.stop()

        assert injector.failures(), "churn must actually have happened"
        for t in tasks:
            assert t.state is JobState.COMPLETED, f"{t.task_id} ended {t.state}"
