"""Unit tests for the simulator clock and event loop."""

import pytest

from repro.gridsim.clock import SimClock, Simulator
from repro.gridsim.events import SimulationError


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(10.0).now == 10.0

    def test_advance_forward(self):
        c = SimClock()
        c._advance_to(5.0)
        assert c.now == 5.0

    def test_advance_backward_raises(self):
        c = SimClock(5.0)
        with pytest.raises(SimulationError):
            c._advance_to(4.0)

    def test_advance_to_same_time_ok(self):
        c = SimClock(5.0)
        c._advance_to(5.0)
        assert c.now == 5.0


class TestScheduling:
    def test_schedule_relative(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10.0]

    def test_at_absolute(self, sim):
        fired = []
        sim.at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_at_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(3.0, lambda: None)

    def test_zero_delay_runs_after_existing_same_instant(self, sim):
        order = []
        sim.schedule(0.0, lambda: order.append("a"))
        sim.schedule(0.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def outer():
            sim.schedule(5.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [6.0]


class TestRunUntil:
    def test_runs_only_due_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        n = sim.run_until(5.0)
        assert n == 1
        assert fired == [1]
        assert sim.now == 5.0

    def test_clock_lands_exactly_on_target(self, sim):
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_event_at_boundary_included(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run_until(5.0)
        assert fired == [1]

    def test_run_until_past_raises(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_max_events_cap(self, sim):
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        n = sim.run_until(100.0, max_events=3)
        assert n == 3


class TestRun:
    def test_run_drains_queue(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run() == 5
        assert sim.pending_events == 0

    def test_runaway_guard(self, sim):
        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_executed_events_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.executed_events == 2


class TestPeriodic:
    def test_every_fires_repeatedly(self, sim):
        fired = []
        handle = sim.every(10.0, lambda: fired.append(sim.now))
        sim.run_until(35.0)
        handle.cancel()
        assert fired == [10.0, 20.0, 30.0]

    def test_first_delay_override(self, sim):
        fired = []
        handle = sim.every(10.0, lambda: fired.append(sim.now), first_delay=1.0)
        sim.run_until(25.0)
        handle.cancel()
        assert fired == [1.0, 11.0, 21.0]

    def test_cancel_stops_future_firings(self, sim):
        fired = []
        handle = sim.every(5.0, lambda: fired.append(sim.now))
        sim.run_until(12.0)
        handle.cancel()
        sim.run_until(50.0)
        assert fired == [5.0, 10.0]

    def test_action_can_cancel_own_handle(self, sim):
        fired = []
        handle = sim.every(5.0, lambda: (fired.append(sim.now), handle.cancel()))
        sim.run_until(100.0)
        assert fired == [5.0]

    def test_nonpositive_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_cancelled_flag(self, sim):
        handle = sim.every(5.0, lambda: None)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled


class TestTrace:
    def test_trace_records_executed_events(self):
        sim = Simulator(trace=True)
        sim.schedule(1.0, lambda: None, label="one")
        sim.schedule(2.0, lambda: None, label="two")
        sim.run()
        assert [(t.time, t.label) for t in sim.trace_log] == [(1.0, "one"), (2.0, "two")]

    def test_trace_off_by_default(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.trace_log == []
