"""Unit tests for the Sphinx-like scheduler."""

import pytest

from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import Job, JobState, Task, TaskSpec
from repro.gridsim.scheduler import SchedulingError, SphinxScheduler, default_ranking
from repro.gridsim.site import Site


def make_env(loads={"fast": 0.0, "slow": 2.0}):
    sim = Simulator()
    scheduler = SphinxScheduler(sim)
    services = {}
    for name, load in loads.items():
        site = Site.simple(sim, name, background_load=load)
        es = ExecutionService(site)
        es.runtime_estimator = lambda spec: spec.requested_cpu_hours * 3600.0
        scheduler.register_site(es)
        services[name] = es
    return sim, scheduler, services


def make_task(work=100.0, **kw):
    kw.setdefault("requested_cpu_hours", work / 3600.0)
    return Task(spec=TaskSpec(**kw), work_seconds=work)


class TestRanking:
    def test_default_ranking_monotone(self):
        assert default_ranking(100.0, 0.0, 0.0) < default_ranking(100.0, 1.0, 0.0)
        assert default_ranking(100.0, 0.0, 0.0) < default_ranking(100.0, 0.0, 50.0)

    def test_rank_sites_sorted_best_first(self):
        _, scheduler, _ = make_env()
        ranks = scheduler.rank_sites(make_task())
        assert [r.site_name for r in ranks] == ["fast", "slow"]
        assert ranks[0].score <= ranks[1].score

    def test_select_site_picks_least_loaded(self):
        _, scheduler, _ = make_env()
        assert scheduler.select_site(make_task()) == "fast"

    def test_exclusion_respected(self):
        _, scheduler, _ = make_env()
        assert scheduler.select_site(make_task(), exclude={"fast"}) == "slow"

    def test_down_sites_skipped(self):
        _, scheduler, services = make_env()
        services["fast"].fail()
        assert scheduler.select_site(make_task()) == "slow"

    def test_no_sites_raises(self):
        sim = Simulator()
        scheduler = SphinxScheduler(sim)
        with pytest.raises(SchedulingError):
            scheduler.select_site(make_task())

    def test_missing_estimator_uses_fallback(self):
        sim = Simulator()
        scheduler = SphinxScheduler(sim, fallback_runtime=1234.0)
        es = ExecutionService(Site.simple(sim, "bare"))
        scheduler.register_site(es)
        ranks = scheduler.rank_sites(make_task())
        assert ranks[0].estimated_runtime == 1234.0

    def test_load_oracle_overrides_direct_query(self):
        sim = Simulator()
        scheduler = SphinxScheduler(sim, load_oracle=lambda s: {"a": 9.0, "b": 0.0}[s])
        for name in ("a", "b"):
            es = ExecutionService(Site.simple(sim, name))
            es.runtime_estimator = lambda spec: 100.0
            scheduler.register_site(es)
        assert scheduler.select_site(make_task()) == "b"

    def test_duplicate_site_registration_rejected(self):
        sim, scheduler, services = make_env()
        with pytest.raises(SchedulingError):
            scheduler.register_site(services["fast"])


class TestJobSubmission:
    def test_plan_binds_every_task(self):
        _, scheduler, _ = make_env()
        job = Job(tasks=[make_task(), make_task()], owner="u")
        plan = scheduler.submit_job(job)
        assert {b.task_id for b in plan.bindings} == {t.task_id for t in job.tasks}

    def test_plan_listeners_notified(self):
        _, scheduler, _ = make_env()
        received = []
        scheduler.plan_listeners.append(lambda plan, job: received.append((plan, job)))
        job = Job(tasks=[make_task()], owner="u")
        scheduler.submit_job(job)
        assert received[0][1] is job

    def test_submission_listeners_notified(self):
        _, scheduler, _ = make_env()
        seen = []
        scheduler.submission_listeners.append(lambda t, s: seen.append((t.task_id, s)))
        job = Job(tasks=[make_task()], owner="u")
        scheduler.submit_job(job)
        assert len(seen) == 1

    def test_double_submission_rejected(self):
        _, scheduler, _ = make_env()
        job = Job(tasks=[make_task()], owner="u")
        scheduler.submit_job(job)
        with pytest.raises(SchedulingError):
            scheduler.submit_job(job)

    def test_dag_tasks_submitted_in_dependency_order(self):
        sim, scheduler, _ = make_env()
        a, b = make_task(work=50.0), make_task(work=30.0)
        job = Job(tasks=[a, b], owner="u", dependencies={b.task_id: (a.task_id,)})
        scheduler.submit_job(job)
        assert a.state is JobState.RUNNING
        assert b.state is JobState.PENDING  # waits for a
        sim.run()
        assert a.state is JobState.COMPLETED
        assert b.state is JobState.COMPLETED

    def test_completion_listeners_fire(self):
        sim, scheduler, _ = make_env()
        done = []
        scheduler.completion_listeners.append(lambda t, s: done.append(t.task_id))
        t = make_task(work=10.0)
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        sim.run()
        assert done == [t.task_id]

    def test_plan_lookup(self):
        _, scheduler, _ = make_env()
        t = make_task()
        job = Job(tasks=[t], owner="u")
        plan = scheduler.submit_job(job)
        assert scheduler.plan(job.job_id) == plan
        assert scheduler.job(job.job_id) is job
        assert scheduler.site_of_task(t.task_id) == plan.site_for(t.task_id)

    def test_unknown_job_raises(self):
        _, scheduler, _ = make_env()
        with pytest.raises(SchedulingError):
            scheduler.plan("ghost")
        with pytest.raises(SchedulingError):
            scheduler.job("ghost")


class TestFlockFollowsPlan:
    def make_flocking_env(self):
        sim = Simulator()
        scheduler = SphinxScheduler(sim)
        services = {}
        for name in ("src", "dst"):
            site = Site.simple(sim, name)
            es = ExecutionService(site)
            es.runtime_estimator = lambda spec: spec.requested_cpu_hours * 3600.0
            scheduler.register_site(es)
            services[name] = es
        services["src"].pool.enable_flocking(services["dst"].pool)
        return sim, scheduler, services

    def test_plan_rebinds_when_a_task_flocks(self):
        _, scheduler, services = self.make_flocking_env()
        services["src"].submit_task(make_task(work=500.0))  # occupy src's slot
        t = make_task(work=50.0)
        job = Job(tasks=[t], owner="u")
        original = scheduler.select_site
        scheduler.select_site = lambda task, exclude=(): "src"
        scheduler.submit_job(job)
        scheduler.select_site = original
        # The pool forwarded the idle task to dst; the plan must follow.
        assert services["dst"].pool.has_task(t.task_id)
        assert scheduler.site_of_task(t.task_id) == "dst"

    def test_rebound_plan_emitted_to_listeners(self):
        _, scheduler, services = self.make_flocking_env()
        services["src"].submit_task(make_task(work=500.0))
        plans = []
        scheduler.plan_listeners.append(lambda plan, job: plans.append(plan))
        t = make_task(work=50.0)
        original = scheduler.select_site
        scheduler.select_site = lambda task, exclude=(): "src"
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        scheduler.select_site = original
        assert plans[0].site_for(t.task_id) == "src"
        assert plans[-1].site_for(t.task_id) == "dst"

    def test_no_rebind_when_task_queues_where_planned(self):
        _, scheduler, _ = make_env()
        plans = []
        scheduler.plan_listeners.append(lambda plan, job: plans.append(plan))
        scheduler.submit_job(Job(tasks=[make_task()], owner="u"))
        assert len(plans) == 1  # the original plan only

    def test_foreign_pool_arrivals_ignored(self):
        _, scheduler, services = self.make_flocking_env()
        # A task submitted around the scheduler must not confuse it.
        services["src"].submit_task(make_task(work=10.0))
        assert scheduler.jobs() == []


class TestRedirection:
    def test_redirect_moves_task_and_updates_plan(self):
        sim, scheduler, services = make_env()
        t = make_task(work=100.0)
        job = Job(tasks=[t], owner="u")
        scheduler.submit_job(job)          # lands on "fast"
        sim.run_until(10.0)
        services["fast"].vacate_task(t.task_id)
        new_site = scheduler.redirect_task(t.task_id, carry_work=0.0)
        assert new_site == "slow"
        assert scheduler.plan(job.job_id).site_for(t.task_id) == "slow"
        assert services["slow"].pool.has_task(t.task_id)

    def test_redirect_explicit_target(self):
        sim, scheduler, services = make_env()
        t = make_task(work=100.0)
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        services["fast"].vacate_task(t.task_id)
        assert scheduler.redirect_task(t.task_id, new_site="slow") == "slow"

    def test_redirect_unknown_target_rejected(self):
        sim, scheduler, services = make_env()
        t = make_task()
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        services["fast"].vacate_task(t.task_id)
        with pytest.raises(SchedulingError):
            scheduler.redirect_task(t.task_id, new_site="ghost")

    def test_redirect_carries_checkpoint_work(self):
        sim, scheduler, services = make_env()
        t = make_task(work=100.0)
        t.checkpointable = True
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        sim.run_until(40.0)
        ad = services["fast"].vacate_task(t.task_id)
        scheduler.redirect_task(t.task_id, carry_work=ad.accrued_work)
        new_ad = services["slow"].pool.ad(t.task_id)
        assert new_ad.accrued_work == pytest.approx(40.0)

    def test_redirect_updated_plan_reaches_listeners(self):
        sim, scheduler, services = make_env()
        plans = []
        scheduler.plan_listeners.append(lambda p, j: plans.append(p))
        t = make_task()
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        services["fast"].vacate_task(t.task_id)
        scheduler.redirect_task(t.task_id)
        assert len(plans) == 2
        assert plans[-1].site_for(t.task_id) == "slow"


class TestResubmission:
    def test_resubmit_excludes_failed_site(self):
        sim, scheduler, services = make_env()
        t = make_task()
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        services["fast"].fail()
        new_site = scheduler.resubmit_task(t.task_id)
        assert new_site == "slow"
        assert services["slow"].pool.has_task(t.task_id)

    def test_resubmit_falls_back_when_only_old_site_lives(self):
        sim, scheduler, services = make_env(loads={"only": 0.0})
        t = make_task()
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        services["only"].pool.fail_task(t.task_id)
        # exclusion leaves nothing, so it falls back to the same site
        assert scheduler.resubmit_task(t.task_id) == "only"

    def test_resubmit_unknown_task_raises(self):
        _, scheduler, _ = make_env()
        with pytest.raises(SchedulingError):
            scheduler.resubmit_task("ghost")


class TestCommitmentAwareBalancing:
    def test_bag_of_tasks_spreads_across_tied_sites(self):
        """Planning a whole job in one instant must not pile every task on
        the alphabetically-first site."""
        sim = Simulator()
        scheduler = SphinxScheduler(sim, load_oracle=lambda s: 0.0)
        for name in ("s0", "s1", "s2", "s3"):
            es = ExecutionService(Site.simple(sim, name, n_nodes=2))
            es.runtime_estimator = lambda spec: 600.0
            scheduler.register_site(es)
        job = Job(tasks=[make_task(work=600.0) for _ in range(8)], owner="u")
        plan = scheduler.submit_job(job)
        assert len(plan.sites()) == 4  # all four sites used

    def test_commitments_release_on_completion(self):
        sim = Simulator()
        scheduler = SphinxScheduler(sim, load_oracle=lambda s: 0.0)
        es = ExecutionService(Site.simple(sim, "only"))
        es.runtime_estimator = lambda spec: 10.0
        scheduler.register_site(es)
        t = make_task(work=10.0)
        scheduler.submit_job(Job(tasks=[t], owner="u"))
        assert scheduler._commitments[t.task_id] == "only"
        sim.run()
        assert t.task_id not in scheduler._commitments

    def test_commitment_awareness_can_be_disabled(self):
        sim = Simulator()
        scheduler = SphinxScheduler(sim, load_oracle=lambda s: 0.0)
        scheduler.commitment_aware = False
        for name in ("s0", "s1"):
            es = ExecutionService(Site.simple(sim, name))
            es.runtime_estimator = lambda spec: 600.0
            scheduler.register_site(es)
        job = Job(tasks=[make_task(work=600.0) for _ in range(4)], owner="u")
        plan = scheduler.submit_job(job)
        assert plan.sites() == ["s0"]  # ties all break the same way
