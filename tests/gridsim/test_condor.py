"""Unit tests for the Condor-like batch pool."""

import pytest

from repro.gridsim.clock import Simulator
from repro.gridsim.condor import CondorError, CondorPool
from repro.gridsim.job import JobState, Task, TaskSpec
from repro.gridsim.node import LoadProfile, Node


def make_pool(sim, n_nodes=1, cpus=1, load=0.0):
    nodes = [
        Node(name=f"n{i}", cpu_count=cpus, load_profile=LoadProfile.constant(load))
        for i in range(n_nodes)
    ]
    return CondorPool(sim, "pool", nodes)


def make_task(work=100.0, priority=0, checkpointable=False, **kw):
    return Task(
        spec=TaskSpec(priority=priority, **kw),
        work_seconds=work,
        checkpointable=checkpointable,
    )


class TestSubmission:
    def test_submit_assigns_condor_ids_sequentially(self, sim):
        pool = make_pool(sim, n_nodes=2)
        ids = [pool.submit(make_task()) for _ in range(2)]
        assert ids == [1, 2]

    def test_submit_starts_immediately_when_slot_free(self, sim):
        pool = make_pool(sim)
        t = make_task()
        pool.submit(t)
        assert t.state is JobState.RUNNING

    def test_excess_tasks_queue(self, sim):
        pool = make_pool(sim)
        t1, t2 = make_task(), make_task()
        pool.submit(t1)
        pool.submit(t2)
        assert t1.state is JobState.RUNNING
        assert t2.state is JobState.QUEUED
        assert pool.queue_position(t2.task_id) == 0

    def test_duplicate_live_submission_rejected(self, sim):
        pool = make_pool(sim)
        t = make_task()
        pool.submit(t)
        with pytest.raises(CondorError):
            pool.submit(t)

    def test_terminal_ad_archived_on_resubmission(self, sim):
        pool = make_pool(sim)
        t = make_task(work=10.0)
        pool.submit(t)
        pool.kill(t.task_id)
        pool.submit(t)  # rerun after kill
        assert len(pool.archive) == 1
        assert pool.ad(t.task_id).state is JobState.RUNNING

    def test_invalid_initial_work_rejected(self, sim):
        pool = make_pool(sim)
        with pytest.raises(CondorError):
            pool.submit(make_task(work=10.0), initial_work=20.0)


class TestCompletion:
    def test_free_cpu_completes_in_work_seconds(self, sim):
        pool = make_pool(sim)
        t = make_task(work=283.0)
        pool.submit(t)
        sim.run()
        ad = pool.ad(t.task_id)
        assert t.state is JobState.COMPLETED
        assert ad.end_time == pytest.approx(283.0)
        assert ad.accrued_work == pytest.approx(283.0)

    def test_loaded_cpu_stretches_completion(self, sim):
        pool = make_pool(sim, load=1.0)
        t = make_task(work=100.0)
        pool.submit(t)
        sim.run()
        assert pool.ad(t.task_id).end_time == pytest.approx(200.0)

    def test_queued_task_starts_after_predecessor(self, sim):
        pool = make_pool(sim)
        t1, t2 = make_task(work=50.0), make_task(work=30.0)
        pool.submit(t1)
        pool.submit(t2)
        sim.run()
        ad2 = pool.ad(t2.task_id)
        assert ad2.start_time == pytest.approx(50.0)
        assert ad2.end_time == pytest.approx(80.0)

    def test_on_complete_callbacks_fire(self, sim):
        pool = make_pool(sim)
        done = []
        pool.on_complete.append(lambda ad: done.append(ad.task_id))
        t = make_task(work=10.0)
        pool.submit(t)
        sim.run()
        assert done == [t.task_id]

    def test_progress_tracks_wall_clock_accrual(self, sim):
        """The paper's 141s-of-283s => ~50% progress example."""
        pool = make_pool(sim, load=1.0)  # half rate
        t = make_task(work=283.0)
        pool.submit(t)
        sim.run_until(282.0)
        ad = pool.status(t.task_id)
        assert ad.accrued_work == pytest.approx(141.0)
        assert ad.progress == pytest.approx(141.0 / 283.0)

    def test_load_profile_change_handled_analytically(self, sim):
        profile = LoadProfile.steps([(0.0, 1.0), (100.0, 0.0)])
        pool = CondorPool(sim, "p", [Node(name="n", load_profile=profile)])
        t = make_task(work=150.0)
        pool.submit(t)
        sim.run()
        # 100 s at half rate = 50 work; 100 more at full rate.
        assert pool.ad(t.task_id).end_time == pytest.approx(200.0)


class TestPriorities:
    def test_higher_priority_dispatches_first(self, sim):
        pool = make_pool(sim)
        blocker = make_task(work=10.0)
        low = make_task(work=5.0, priority=1)
        high = make_task(work=5.0, priority=9)
        pool.submit(blocker)
        pool.submit(low)
        pool.submit(high)
        assert pool.queue_snapshot()[0].task_id == high.task_id
        sim.run()
        assert pool.ad(high.task_id).start_time < pool.ad(low.task_id).start_time

    def test_fifo_within_priority(self, sim):
        pool = make_pool(sim)
        pool.submit(make_task(work=10.0))
        a = make_task(work=5.0, priority=3)
        b = make_task(work=5.0, priority=3)
        pool.submit(a)
        pool.submit(b)
        snap = pool.queue_snapshot()
        assert [ad.task_id for ad in snap] == [a.task_id, b.task_id]

    def test_set_priority_reorders_queue(self, sim):
        pool = make_pool(sim)
        pool.submit(make_task(work=10.0))
        a = make_task(work=5.0, priority=1)
        b = make_task(work=5.0, priority=1)
        pool.submit(a)
        pool.submit(b)
        pool.set_priority(b.task_id, 10)
        assert pool.queue_snapshot()[0].task_id == b.task_id

    def test_set_priority_on_terminal_rejected(self, sim):
        pool = make_pool(sim)
        t = make_task(work=1.0)
        pool.submit(t)
        sim.run()
        with pytest.raises(CondorError):
            pool.set_priority(t.task_id, 5)

    def test_tasks_ahead_of(self, sim):
        pool = make_pool(sim)
        running = make_task(work=100.0)
        ahead = make_task(work=10.0, priority=5)
        me = make_task(work=10.0, priority=1)
        behind = make_task(work=10.0, priority=0)
        for t in (running, ahead, me, behind):
            pool.submit(t)
        names = {ad.task_id for ad in pool.tasks_ahead_of(me.task_id)}
        assert names == {running.task_id, ahead.task_id}


class TestJobControl:
    def test_pause_freezes_progress(self, sim):
        pool = make_pool(sim)
        t = make_task(work=100.0)
        pool.submit(t)
        sim.run_until(30.0)
        pool.pause(t.task_id)
        sim.run_until(500.0)
        ad = pool.status(t.task_id)
        assert ad.state is JobState.PAUSED
        assert ad.accrued_work == pytest.approx(30.0)

    def test_resume_continues_from_pause_point(self, sim):
        pool = make_pool(sim)
        t = make_task(work=100.0)
        pool.submit(t)
        sim.run_until(30.0)
        pool.pause(t.task_id)
        sim.run_until(100.0)
        pool.resume(t.task_id)
        sim.run()
        assert pool.ad(t.task_id).end_time == pytest.approx(170.0)

    def test_pause_keeps_slot(self, sim):
        pool = make_pool(sim)
        t1, t2 = make_task(work=100.0), make_task(work=10.0)
        pool.submit(t1)
        pool.submit(t2)
        pool.pause(t1.task_id)
        assert t2.state is JobState.QUEUED  # slot not released

    def test_pause_non_running_rejected(self, sim):
        pool = make_pool(sim)
        t1, t2 = make_task(), make_task()
        pool.submit(t1)
        pool.submit(t2)
        with pytest.raises(CondorError):
            pool.pause(t2.task_id)

    def test_resume_non_paused_rejected(self, sim):
        pool = make_pool(sim)
        t = make_task()
        pool.submit(t)
        with pytest.raises(CondorError):
            pool.resume(t.task_id)

    def test_kill_releases_slot_and_dispatches_next(self, sim):
        pool = make_pool(sim)
        t1, t2 = make_task(work=100.0), make_task(work=10.0)
        pool.submit(t1)
        pool.submit(t2)
        pool.kill(t1.task_id)
        assert t1.state is JobState.KILLED
        assert t2.state is JobState.RUNNING

    def test_kill_terminal_rejected(self, sim):
        pool = make_pool(sim)
        t = make_task(work=1.0)
        pool.submit(t)
        sim.run()
        with pytest.raises(CondorError):
            pool.kill(t.task_id)

    def test_vacate_returns_progress(self, sim):
        pool = make_pool(sim)
        t = make_task(work=100.0)
        pool.submit(t)
        sim.run_until(40.0)
        ad = pool.vacate(t.task_id)
        assert ad.state is JobState.MOVED
        assert ad.accrued_work == pytest.approx(40.0)

    def test_unknown_task_raises(self, sim):
        pool = make_pool(sim)
        with pytest.raises(CondorError):
            pool.ad("ghost")
        with pytest.raises(CondorError):
            pool.ad_by_condor_id(99)


class TestFailure:
    def test_fail_task_fires_callbacks(self, sim):
        pool = make_pool(sim)
        failed = []
        pool.on_failed.append(lambda ad: failed.append(ad.task_id))
        t = make_task()
        pool.submit(t)
        pool.fail_task(t.task_id)
        assert failed == [t.task_id]
        assert t.state is JobState.FAILED

    def test_crash_fails_everything(self, sim):
        pool = make_pool(sim, n_nodes=2)
        tasks = [make_task() for _ in range(3)]
        for t in tasks:
            pool.submit(t)
        victims = pool.crash()
        assert len(victims) == 3
        assert all(t.state is JobState.FAILED for t in tasks)

    def test_crash_skips_already_terminal(self, sim):
        pool = make_pool(sim)
        t = make_task(work=1.0)
        pool.submit(t)
        sim.run()
        assert pool.crash() == []


class TestFlocking:
    def test_idle_jobs_flock_to_free_pool(self, sim):
        a = make_pool(sim)
        b = CondorPool(sim, "poolB", [Node(name="bn")])
        a.enable_flocking(b)
        t1, t2 = make_task(work=100.0), make_task(work=50.0)
        a.submit(t1)
        a.submit(t2)  # no free slot at A -> flocks to B
        assert b.has_task(t2.task_id)
        assert t2.state is JobState.RUNNING

    def test_checkpointable_flocked_job_carries_work(self, sim):
        a = make_pool(sim)
        b = CondorPool(sim, "poolB", [Node(name="bn")])
        t1 = make_task(work=100.0)
        a.submit(t1)
        t2 = make_task(work=100.0, checkpointable=True)
        a.submit(t2)  # queued at A (no flocking yet)
        # Manually seed progress then enable flocking via resubmission path:
        a.enable_flocking(b)
        a._try_flock()
        assert b.has_task(t2.task_id)

    def test_self_flocking_rejected(self, sim):
        pool = make_pool(sim)
        with pytest.raises(CondorError):
            pool.enable_flocking(pool)


class TestLoadIndicator:
    def test_empty_pool_load_zero(self, sim):
        assert make_pool(sim).current_load() == 0.0

    def test_load_grows_with_occupancy_and_queue(self, sim):
        pool = make_pool(sim)
        pool.submit(make_task())
        l1 = pool.current_load()
        pool.submit(make_task())
        l2 = pool.current_load()
        assert 0 < l1 < l2

    def test_background_load_included(self, sim):
        pool = make_pool(sim, load=2.0)
        assert pool.current_load() == pytest.approx(2.0)


class TestFlockChains:
    def test_flocking_cascades_through_a_chain(self, sim):
        """A -> B -> C: if B is also full, the job lands at C."""
        a = make_pool(sim)
        b = CondorPool(sim, "poolB", [Node(name="bn")])
        c = CondorPool(sim, "poolC", [Node(name="cn")])
        a.enable_flocking(b)
        b.enable_flocking(c)
        # Fill A and B.
        a.submit(make_task(work=1000.0))
        b.submit(make_task(work=1000.0))
        overflow = make_task(work=10.0)
        a.submit(overflow)  # A full -> flocks to B; B full -> flocks to C
        assert c.has_task(overflow.task_id)
        sim.run_until(20.0)
        assert overflow.state is JobState.COMPLETED


class TestPausedTaskControl:
    def test_vacate_paused_task_and_restart_elsewhere(self, sim):
        a = make_pool(sim)
        b = CondorPool(sim, "poolB", [Node(name="bn")])
        t = make_task(work=100.0)
        a.submit(t)
        sim.run_until(30.0)
        a.pause(t.task_id)
        ad = a.vacate(t.task_id)
        assert ad.accrued_work == pytest.approx(30.0)
        assert a.nodes[0].free_slots == 1  # the held slot was released
        b.submit(t, initial_work=ad.accrued_work if t.checkpointable else 0.0)
        sim.run()
        assert t.state is JobState.COMPLETED

    def test_kill_paused_task(self, sim):
        pool = make_pool(sim)
        t = make_task()
        pool.submit(t)
        pool.pause(t.task_id)
        pool.kill(t.task_id)
        assert t.state is JobState.KILLED
        assert pool.nodes[0].free_slots == 1

    def test_paused_task_survives_queue_churn(self, sim):
        pool = make_pool(sim, n_nodes=2)
        paused = make_task(work=100.0)
        pool.submit(paused)
        pool.pause(paused.task_id)
        # Other work flows through the remaining slot.
        others = [make_task(work=5.0) for _ in range(3)]
        for o in others:
            pool.submit(o)
        sim.run_until(100.0)
        assert all(o.state is JobState.COMPLETED for o in others)
        assert paused.state is JobState.PAUSED
        pool.resume(paused.task_id)
        sim.run()
        assert paused.state is JobState.COMPLETED

    def test_mutual_flocking_with_no_capacity_does_not_loop(self, sim):
        """A <-> B, both full: the job stays queued, no infinite handoff."""
        a = make_pool(sim)
        b = CondorPool(sim, "poolB", [Node(name="bn")])
        a.enable_flocking(b)
        b.enable_flocking(a)
        a.submit(make_task(work=1000.0))
        b.submit(make_task(work=1000.0))
        waiting = make_task(work=10.0)
        a.submit(waiting)  # nowhere to go; must terminate cleanly
        assert waiting.state is JobState.QUEUED
        assert a.has_task(waiting.task_id)
        sim.run_until(1011.0)
        assert waiting.state is JobState.COMPLETED

    def test_flock_to_reachable_capacity_through_full_middle_both_ways(self, sim):
        """Cycle-safe reachability: A <-> B, C hangs off B with capacity."""
        a = make_pool(sim)
        b = CondorPool(sim, "poolB", [Node(name="bn")])
        c = CondorPool(sim, "poolC", [Node(name="cn")])
        a.enable_flocking(b)
        b.enable_flocking(a, c)
        a.submit(make_task(work=1000.0))
        b.submit(make_task(work=1000.0))
        job = make_task(work=10.0)
        a.submit(job)
        assert c.has_task(job.task_id)
        sim.run_until(20.0)
        assert job.state is JobState.COMPLETED
