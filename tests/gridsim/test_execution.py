"""Unit tests for sites and the per-site execution service."""

import pytest

from repro.gridsim.execution import ExecutionService, ExecutionServiceDown
from repro.gridsim.job import JobState, Task, TaskSpec
from repro.gridsim.site import ChargeRates, Site


def make_service(sim, load=0.0, n_nodes=1):
    site = Site.simple(sim, "siteX", n_nodes=n_nodes, background_load=load)
    return ExecutionService(site)


def make_task(work=100.0, **kw):
    return Task(spec=TaskSpec(**kw), work_seconds=work)


class TestSite:
    def test_simple_constructor(self, sim):
        site = Site.simple(sim, "s", n_nodes=3, cpus_per_node=2, background_load=0.5)
        assert len(site.nodes) == 3
        assert site.pool.total_slots == 6
        assert site.nodes[0].load_at(0.0) == 0.5

    def test_charge_rates_default(self, sim):
        site = Site.simple(sim, "s")
        assert site.charge_rates.cpu_hour == 1.0

    def test_charge_rates_validation(self):
        with pytest.raises(ValueError):
            ChargeRates(cpu_hour=-1.0)

    def test_current_load_delegates(self, sim):
        site = Site.simple(sim, "s", background_load=2.0)
        assert site.current_load() == pytest.approx(2.0)


class TestExecutionServiceBasics:
    def test_name_derived_from_site(self, sim):
        assert make_service(sim).name == "execution.siteX"

    def test_submit_and_status(self, sim):
        es = make_service(sim)
        t = make_task(work=50.0)
        cid = es.submit_task(t)
        assert cid == 1
        assert es.job_status(t.task_id).state is JobState.RUNNING

    def test_elapsed_runtime_tracks_accrual(self, sim):
        es = make_service(sim, load=1.0)
        t = make_task(work=100.0)
        es.submit_task(t)
        sim.run_until(60.0)
        assert es.elapsed_runtime(t.task_id) == pytest.approx(30.0)

    def test_queue_introspection(self, sim):
        es = make_service(sim)
        t1, t2 = make_task(), make_task()
        es.submit_task(t1)
        es.submit_task(t2)
        assert [a.task_id for a in es.queue_info()] == [t2.task_id]
        assert [a.task_id for a in es.running_info()] == [t1.task_id]
        assert es.queue_position(t2.task_id) == 0
        assert es.queue_position(t1.task_id) == -1

    def test_job_control_verbs(self, sim):
        es = make_service(sim)
        t = make_task(work=100.0)
        es.submit_task(t)
        es.pause_task(t.task_id)
        assert t.state is JobState.PAUSED
        es.resume_task(t.task_id)
        assert t.state is JobState.RUNNING
        es.set_task_priority(t.task_id, 7)
        assert es.job_status(t.task_id).priority == 7
        es.kill_task(t.task_id)
        assert t.state is JobState.KILLED

    def test_vacate_returns_ad(self, sim):
        es = make_service(sim)
        t = make_task(work=100.0)
        es.submit_task(t)
        sim.run_until(25.0)
        ad = es.vacate_task(t.task_id)
        assert ad.accrued_work == pytest.approx(25.0)


class TestEstimatorHook:
    def test_no_estimator_raises(self, sim):
        es = make_service(sim)
        assert not es.has_estimator
        with pytest.raises(RuntimeError):
            es.estimate_runtime(TaskSpec())

    def test_installed_estimator_called(self, sim):
        es = make_service(sim)
        es.runtime_estimator = lambda spec: spec.requested_cpu_hours * 3600.0
        assert es.has_estimator
        assert es.estimate_runtime(TaskSpec(requested_cpu_hours=2.0)) == pytest.approx(7200.0)


class TestFailure:
    def test_ping_when_up(self, sim):
        assert make_service(sim).ping() is True

    def test_failed_service_raises_everywhere(self, sim):
        es = make_service(sim)
        t = make_task()
        es.submit_task(t)
        es.fail()
        for call in (
            lambda: es.ping(),
            lambda: es.submit_task(make_task()),
            lambda: es.job_status(t.task_id),
            lambda: es.queue_info(),
            lambda: es.kill_task(t.task_id),
        ):
            with pytest.raises(ExecutionServiceDown):
                call()

    def test_fail_crashes_pool_by_default(self, sim):
        es = make_service(sim)
        t = make_task()
        es.submit_task(t)
        victims = es.fail()
        assert [v.task_id for v in victims] == [t.task_id]
        assert t.state is JobState.FAILED

    def test_fail_without_crash_keeps_tasks(self, sim):
        es = make_service(sim)
        t = make_task()
        es.submit_task(t)
        assert es.fail(crash_pool=False) == []
        assert t.state is JobState.RUNNING

    def test_recover_restores_service(self, sim):
        es = make_service(sim)
        es.fail()
        es.recover()
        assert es.ping() is True


class TestFilesAndState:
    def test_completed_task_files_retrievable(self, sim):
        es = make_service(sim)
        t = make_task(work=10.0, output_files=("result.root",))
        es.submit_task(t)
        sim.run()
        assert es.retrieve_local_files(t.task_id) == ["result.root"]

    def test_failed_task_leaves_partials(self, sim):
        es = make_service(sim)
        t = make_task(output_files=("result.root",))
        es.submit_task(t)
        es.pool.fail_task(t.task_id)
        assert es.retrieve_local_files(t.task_id) == ["result.root.partial"]

    def test_running_task_has_no_retrievable_files(self, sim):
        es = make_service(sim)
        t = make_task(output_files=("x",))
        es.submit_task(t)
        assert es.retrieve_local_files(t.task_id) == []

    def test_execution_state_struct(self, sim):
        es = make_service(sim)
        t = make_task(work=10.0, owner="alice")
        es.submit_task(t)
        sim.run()
        state = es.execution_state(t.task_id)
        assert state["state"] == "completed"
        assert state["owner"] == "alice"
        assert state["site"] == "siteX"
        assert state["progress"] == pytest.approx(1.0)
