"""Unit tests for the network model and iperf probe."""

import numpy as np
import pytest

from repro.gridsim.network import IperfProbe, Link, Network, NetworkError


def make_triangle():
    net = Network()
    net.add_link(Link("a", "b", capacity_mbps=100.0, latency_s=0.01))
    net.add_link(Link("b", "c", capacity_mbps=50.0, latency_s=0.02))
    net.add_link(Link("a", "c", capacity_mbps=10.0, latency_s=0.5))
    return net


class TestLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            Link("a", "b", capacity_mbps=0.0)
        with pytest.raises(ValueError):
            Link("a", "b", capacity_mbps=10.0, latency_s=-1.0)
        with pytest.raises(ValueError):
            Link("a", "b", capacity_mbps=10.0, utilization=1.0)

    def test_available_bandwidth(self):
        link = Link("a", "b", capacity_mbps=100.0, utilization=0.25)
        assert link.available_mbps == pytest.approx(75.0)


class TestRouting:
    def test_direct_route(self):
        net = make_triangle()
        route = net.route("a", "b")
        assert len(route) == 1
        assert route[0].capacity_mbps == 100.0

    def test_lowest_latency_route_wins(self):
        net = make_triangle()
        # a->c direct costs 0.5s; a->b->c costs 0.03s.
        route = net.route("a", "c")
        assert len(route) == 2

    def test_route_to_self_is_empty(self):
        assert make_triangle().route("a", "a") == []

    def test_unknown_site_raises(self):
        with pytest.raises(NetworkError):
            make_triangle().route("a", "ghost")

    def test_unreachable_raises(self):
        net = make_triangle()
        net.add_site("island")
        with pytest.raises(NetworkError):
            net.route("a", "island")

    def test_link_between_missing_raises(self):
        net = Network()
        net.add_site("a")
        net.add_site("b")
        with pytest.raises(NetworkError):
            net.link_between("a", "b")


class TestBandwidthAndTransfer:
    def test_bottleneck_bandwidth(self):
        net = make_triangle()
        assert net.path_bandwidth_mbps("a", "c") == pytest.approx(50.0)

    def test_local_bandwidth_infinite(self):
        assert make_triangle().path_bandwidth_mbps("a", "a") == float("inf")

    def test_transfer_time_formula(self):
        net = Network()
        net.add_link(Link("x", "y", capacity_mbps=80.0, latency_s=0.1))
        # 100 MB = 800 Mbit at 80 Mbit/s = 10 s + 0.1 latency
        assert net.transfer_time("x", "y", 100.0) == pytest.approx(10.1)

    def test_local_transfer_free(self):
        assert make_triangle().transfer_time("a", "a", 1e6) == 0.0

    def test_zero_size_free(self):
        assert make_triangle().transfer_time("a", "b", 0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_triangle().transfer_time("a", "b", -1.0)

    def test_utilization_shrinks_bandwidth(self):
        net = Network()
        net.add_link(Link("x", "y", capacity_mbps=100.0, latency_s=0.0))
        t0 = net.transfer_time("x", "y", 100.0)
        net.set_utilization("x", "y", 0.5)
        assert net.transfer_time("x", "y", 100.0) == pytest.approx(2 * t0)

    def test_set_utilization_validation(self):
        net = make_triangle()
        with pytest.raises(ValueError):
            net.set_utilization("a", "b", 1.5)


class TestIperfProbe:
    def test_noiseless_probe_exact(self):
        net = make_triangle()
        probe = IperfProbe(net, noise_sigma=0.0)
        r = probe.measure("a", "b")
        assert r.measured_mbps == pytest.approx(100.0)
        assert r.true_mbps == pytest.approx(100.0)

    def test_noisy_probe_near_truth(self):
        net = make_triangle()
        probe = IperfProbe(net, rng=np.random.default_rng(0), noise_sigma=0.05)
        rs = [probe.measure("a", "b").measured_mbps for _ in range(200)]
        assert np.mean(rs) == pytest.approx(100.0, rel=0.05)

    def test_probe_deterministic_per_seed(self):
        net = make_triangle()
        a = IperfProbe(net, rng=np.random.default_rng(5)).measure("a", "b").measured_mbps
        b = IperfProbe(net, rng=np.random.default_rng(5)).measure("a", "b").measured_mbps
        assert a == b

    def test_history_accumulates(self):
        probe = IperfProbe(make_triangle(), noise_sigma=0.0)
        probe.measure("a", "b")
        probe.measure("a", "b")
        assert len(probe.history) == 2

    def test_smoothed_fills_window(self):
        probe = IperfProbe(make_triangle(), noise_sigma=0.0)
        assert probe.smoothed_mbps("a", "b", window=3) == pytest.approx(100.0)
        assert len(probe.history) == 3

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            IperfProbe(make_triangle(), noise_sigma=-0.1)


class TestNetworkWeather:
    def make(self, seed=0, period=100.0):
        from repro.gridsim.clock import Simulator
        from repro.gridsim.network import NetworkWeather

        sim = Simulator()
        net = make_triangle()
        weather = NetworkWeather(
            sim, net, rng=np.random.default_rng(seed), period_s=period,
            mean_utilization=0.3, volatility=0.1,
        )
        return sim, net, weather

    def test_utilizations_change_over_time(self):
        sim, net, weather = self.make()
        before = net.path_bandwidth_mbps("a", "b")
        weather.start()
        sim.run_until(1000.0)
        weather.stop()
        after = net.path_bandwidth_mbps("a", "b")
        assert after != before

    def test_utilization_stays_in_bounds(self):
        sim, net, weather = self.make(seed=7)
        weather.start()
        for t in range(100, 5000, 100):
            sim.run_until(float(t))
            for edge in net._graph.edges:
                u = net._graph.edges[edge]["link"].utilization
                assert 0.0 <= u <= 0.95
        weather.stop()

    def test_deterministic_per_seed(self):
        def run(seed):
            sim, net, weather = self.make(seed=seed)
            weather.start()
            sim.run_until(1000.0)
            weather.stop()
            return [net._graph.edges[e]["link"].utilization
                    for e in sorted(net._graph.edges)]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_transfer_estimates_go_stale_under_weather(self):
        """A probe taken before the weather shifts mispredicts afterwards."""
        from repro.core.estimators.transfer_time import TransferTimeEstimator
        from repro.gridsim.network import IperfProbe

        sim, net, weather = self.make(seed=3)
        probe = IperfProbe(net, noise_sigma=0.0)
        estimator = TransferTimeEstimator(probe)
        predicted = estimator.estimate("a", "b", 500.0).transfer_time_s
        weather.start()
        sim.run_until(2000.0)
        weather.stop()
        actual = net.transfer_time("a", "b", 500.0)
        assert actual != pytest.approx(predicted)
        # A fresh probe fixes the prediction (§6.3 ignores latency, so
        # allow the 10 ms propagation term).
        fresh = estimator.estimate("a", "b", 500.0).transfer_time_s
        assert fresh == pytest.approx(actual, rel=1e-2)

    def test_validation_and_double_start(self):
        from repro.gridsim.clock import Simulator
        from repro.gridsim.network import NetworkWeather

        sim = Simulator()
        with pytest.raises(ValueError):
            NetworkWeather(sim, make_triangle(), period_s=0.0)
        with pytest.raises(ValueError):
            NetworkWeather(sim, make_triangle(), mean_utilization=1.5)
        weather = NetworkWeather(sim, make_triangle())
        weather.start()
        with pytest.raises(RuntimeError):
            weather.start()
        weather.stop()
