"""Unit tests for multi-node (gang) task scheduling in the pool."""

import pytest

from repro.gridsim.clock import Simulator
from repro.gridsim.condor import CondorError, CondorPool
from repro.gridsim.job import JobState, Task, TaskSpec
from repro.gridsim.node import LoadProfile, Node


def make_pool(sim, node_specs):
    """node_specs: list of (cpu_count, load)."""
    nodes = [
        Node(name=f"n{i}", cpu_count=c, load_profile=LoadProfile.constant(l))
        for i, (c, l) in enumerate(node_specs)
    ]
    return CondorPool(sim, "pool", nodes)


def gang_task(nodes, work=100.0, priority=0):
    return Task(
        spec=TaskSpec(nodes=nodes, priority=priority, requested_cpu_hours=work / 3600.0),
        work_seconds=work,
    )


class TestCombineMaxProfile:
    def test_single_profile_identity(self):
        p = LoadProfile.constant(2.0)
        assert LoadProfile.combine_max([p]) is p

    def test_max_of_constants(self):
        combined = LoadProfile.combine_max(
            [LoadProfile.constant(1.0), LoadProfile.constant(3.0)]
        )
        assert combined.load_at(0.0) == 3.0

    def test_union_of_breakpoints(self):
        a = LoadProfile.steps([(0.0, 0.0), (100.0, 5.0)])
        b = LoadProfile.steps([(0.0, 2.0), (200.0, 0.0)])
        c = LoadProfile.combine_max([a, b])
        assert c.load_at(50.0) == 2.0    # max(0, 2)
        assert c.load_at(150.0) == 5.0   # max(5, 2)
        assert c.load_at(250.0) == 5.0   # max(5, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile.combine_max([])


class TestGangDispatch:
    def test_gang_spans_multiple_nodes(self, sim):
        pool = make_pool(sim, [(2, 0.0), (2, 0.0)])
        t = gang_task(nodes=4, work=50.0)
        pool.submit(t)
        ad = pool.ad(t.task_id)
        assert t.state is JobState.RUNNING
        assert len(ad.allocated) == 2
        assert pool.busy_slots == 4
        sim.run()
        assert ad.end_time == pytest.approx(50.0)

    def test_gang_waits_for_enough_slots(self, sim):
        pool = make_pool(sim, [(2, 0.0)])
        small = gang_task(nodes=1, work=30.0)
        big = gang_task(nodes=2, work=10.0)
        pool.submit(small)
        pool.submit(big)
        assert big.state is JobState.QUEUED  # only 1 slot free
        sim.run_until(30.0)
        assert big.state is JobState.RUNNING
        sim.run()
        assert pool.ad(big.task_id).end_time == pytest.approx(40.0)

    def test_no_backfill_preserves_queue_order(self, sim):
        pool = make_pool(sim, [(2, 0.0)])
        pool.submit(gang_task(nodes=1, work=50.0))   # occupies 1 slot
        blocked = gang_task(nodes=2, work=10.0)       # can't fit yet
        little = gang_task(nodes=1, work=10.0)        # *could* fit, but waits
        pool.submit(blocked)
        pool.submit(little)
        assert blocked.state is JobState.QUEUED
        assert little.state is JobState.QUEUED  # strict order: no backfill
        sim.run()
        assert pool.ad(blocked.task_id).start_time < pool.ad(little.task_id).start_time

    def test_oversized_gang_rejected(self, sim):
        pool = make_pool(sim, [(2, 0.0)])
        with pytest.raises(CondorError):
            pool.submit(gang_task(nodes=5))

    def test_oversized_gang_allowed_with_flocking(self, sim):
        pool = make_pool(sim, [(1, 0.0)])
        big_pool = make_pool(sim, [(4, 0.0)])
        big_pool.name = "big"
        pool.enable_flocking(big_pool)
        t = gang_task(nodes=3, work=20.0)
        pool.submit(t)  # flocks to the big pool
        assert big_pool.has_task(t.task_id)
        sim.run()
        assert t.state is JobState.COMPLETED


class TestGangProgress:
    def test_slowest_node_sets_the_pace(self, sim):
        """SPMD gang: progress at the max-load node's rate."""
        pool = make_pool(sim, [(1, 0.0), (1, 1.0)])  # free + half-speed
        t = gang_task(nodes=2, work=100.0)
        pool.submit(t)
        sim.run()
        # Rate = 1/(1+max load) = 0.5 -> 200 s.
        assert pool.ad(t.task_id).end_time == pytest.approx(200.0)

    def test_gang_pause_resume(self, sim):
        pool = make_pool(sim, [(2, 0.0)])
        t = gang_task(nodes=2, work=100.0)
        pool.submit(t)
        sim.run_until(30.0)
        pool.pause(t.task_id)
        sim.run_until(200.0)
        pool.resume(t.task_id)
        sim.run()
        assert pool.ad(t.task_id).end_time == pytest.approx(270.0)

    def test_gang_vacate_releases_all_slots(self, sim):
        pool = make_pool(sim, [(2, 0.0), (2, 0.0)])
        t = gang_task(nodes=4, work=100.0)
        pool.submit(t)
        sim.run_until(25.0)
        ad = pool.vacate(t.task_id)
        assert ad.accrued_work == pytest.approx(25.0)
        assert pool.busy_slots == 0
        assert all(n.free_slots == n.cpu_count for n in pool.nodes)

    def test_gang_failure_releases_all_slots(self, sim):
        pool = make_pool(sim, [(4, 0.0)])
        t = gang_task(nodes=3)
        pool.submit(t)
        pool.fail_task(t.task_id)
        assert pool.busy_slots == 0

    def test_profile_change_respected_for_gang(self, sim):
        stepped = LoadProfile.steps([(0.0, 0.0), (50.0, 3.0)])
        nodes = [
            Node(name="a", load_profile=stepped),
            Node(name="b", load_profile=LoadProfile.constant(1.0)),
        ]
        pool = CondorPool(sim, "p", nodes)
        t = gang_task(nodes=2, work=100.0)
        pool.submit(t)
        sim.run()
        # First 50 s at rate 1/(1+max(0,1))=0.5 -> 25 work; remaining 75 at
        # rate 1/(1+max(3,1))=0.25 -> 300 s more.
        assert pool.ad(t.task_id).end_time == pytest.approx(350.0)
