"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.gae import build_gae
from repro.gridsim import GridBuilder, Simulator
from repro.gridsim.job import reset_id_counters


@pytest.fixture(autouse=True)
def _fresh_task_ids():
    """Reset the global task/job id allocators so every test sees
    deterministic ids regardless of execution order."""
    reset_id_counters()
    yield
    reset_id_counters()


@pytest.fixture
def sim() -> Simulator:
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def two_site_grid():
    """The canonical Figure 7 testbed: loaded site A, free site B."""
    return (
        GridBuilder(seed=42)
        .site("siteA", nodes=1, background_load=1.5)
        .site("siteB", nodes=1, background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )


@pytest.fixture
def gae(two_site_grid):
    """A fully wired GAE over the two-site grid (periodic loops not armed)."""
    return build_gae(two_site_grid)
