"""Unit tests for the Job Monitoring Service facade (§5)."""

import pytest

from repro.clarens.errors import RemoteFault
from repro.clarens.server import ClarensHost
from repro.core.monitoring.service import JobMonitoringService, MonitoringError
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import Job, Task, TaskSpec
from repro.gridsim.site import Site
from repro.monalisa.repository import MonALISARepository


@pytest.fixture
def env(sim):
    site = Site.simple(sim, "s1", background_load=1.0)
    es = ExecutionService(site)
    monalisa = MonALISARepository()
    svc = JobMonitoringService(sim, monalisa=monalisa, estimate_lookup=lambda tid: 200.0)
    svc.attach(es)
    return sim, es, svc, monalisa


def make_task(work=100.0, **kw):
    return Task(spec=TaskSpec(**kw), work_seconds=work)


class TestPaperApiFields:
    """The §5 field list, method by method."""

    def test_job_status(self, env):
        sim, es, svc, _ = env
        t = make_task()
        es.submit_task(t)
        assert svc.job_status(t.task_id) == "running"

    def test_elapsed_and_remaining(self, env):
        sim, es, svc, _ = env
        t = make_task(work=100.0)
        es.submit_task(t)
        sim.run_until(60.0)  # load 1.0 -> 30 s accrued
        assert svc.elapsed_time(t.task_id) == pytest.approx(30.0)
        assert svc.remaining_time(t.task_id) == pytest.approx(170.0)

    def test_estimated_run_time(self, env):
        sim, es, svc, _ = env
        t = make_task()
        es.submit_task(t)
        assert svc.estimated_run_time(t.task_id) == 200.0

    def test_queue_position(self, env):
        sim, es, svc, _ = env
        t1, t2 = make_task(), make_task()
        es.submit_task(t1)
        es.submit_task(t2)
        assert svc.queue_position(t2.task_id) == 0
        assert svc.queue_position(t1.task_id) == -1

    def test_progress(self, env):
        sim, es, svc, _ = env
        t = make_task(work=100.0)
        es.submit_task(t)
        sim.run_until(100.0)
        assert svc.progress(t.task_id) == pytest.approx(0.5)

    def test_job_info_struct_complete(self, env):
        sim, es, svc, _ = env
        t = make_task(owner="alice", environment={"X": "1"})
        es.submit_task(t)
        info = svc.job_info(t.task_id)
        for field in (
            "status", "elapsed_time_s", "estimated_run_time_s", "remaining_time_s",
            "queue_position", "priority", "submission_time", "execution_time",
            "completion_time", "cpu_time_used_s", "input_io_mb", "output_io_mb",
            "owner", "environment",
        ):
            assert field in info
        assert info["owner"] == "alice"
        assert info["environment"] == {"X": "1"}

    def test_unknown_task_raises(self, env):
        _, _, svc, _ = env
        with pytest.raises(MonitoringError):
            svc.job_status("ghost")


class TestAggregates:
    def test_job_tasks(self, env):
        sim, es, svc, _ = env
        tasks = [make_task(work=10.0), make_task(work=10.0)]
        job = Job(tasks=tasks, owner="u")
        for t in tasks:
            es.submit_task(t)
        sim.run()
        records = svc.job_tasks(job.job_id)
        assert len(records) == 2
        assert all(r["status"] == "completed" for r in records)

    def test_owner_tasks(self, env):
        sim, es, svc, _ = env
        t = make_task(work=10.0, owner="alice")
        es.submit_task(t)
        sim.run()
        assert [r["task_id"] for r in svc.owner_tasks("alice")] == [t.task_id]
        assert svc.owner_tasks("nobody") == []

    def test_running_tasks(self, env):
        sim, es, svc, _ = env
        t = make_task()
        es.submit_task(t)
        assert [r["task_id"] for r in svc.running_tasks()] == [t.task_id]


class TestMonalisaIntegration:
    def test_state_changes_published(self, env):
        """§5: 'sends an update to MonALISA whenever the state of a job
        changes' (terminal transitions flow through the DBManager)."""
        sim, es, svc, monalisa = env
        t = make_task(work=10.0)
        es.submit_task(t)
        sim.run()
        events = monalisa.job_events(task_id=t.task_id)
        assert [e.state for e in events] == ["completed"]


class TestClarensHosting:
    def test_dispatch_through_host(self, env):
        sim, es, svc, _ = env
        host = ClarensHost()
        host.users.add_user("u", "p", groups=("g",))
        host.acl.allow("jobmon.*", groups=("g",))
        host.register("jobmon", svc)
        t = make_task()
        es.submit_task(t)
        token = host.dispatch("system.login", ["u", "p"])
        assert host.dispatch("jobmon.job_status", [t.task_id], token) == "running"

    def test_unknown_task_becomes_remote_fault(self, env):
        sim, es, svc, _ = env
        host = ClarensHost()
        host.users.add_user("u", "p", groups=("g",))
        host.acl.allow("jobmon.*", groups=("g",))
        host.register("jobmon", svc)
        token = host.dispatch("system.login", ["u", "p"])
        with pytest.raises(RemoteFault):
            host.dispatch("jobmon.job_status", ["ghost"], token)


class TestContinuousMonitoring:
    def test_periodic_snapshots_build_progress_history(self, env):
        sim, es, svc, _ = env
        t = make_task(work=100.0)  # load 1.0 -> 200 s wall
        es.submit_task(t)
        svc.start_periodic_snapshots(period_s=50.0)
        sim.run_until(210.0)
        svc.stop_periodic_snapshots()
        history = svc.progress_history(t.task_id)
        assert len(history) >= 4
        times = [h["snapshot_time"] for h in history]
        assert times == sorted(times)
        progresses = [h["progress"] for h in history]
        assert progresses == sorted(progresses)  # monotone progress
        assert history[-1]["status"] == "completed"
        assert history[-1]["progress"] == pytest.approx(1.0)

    def test_snapshot_running_returns_count(self, env):
        sim, es, svc, _ = env
        es.submit_task(make_task())
        es.submit_task(make_task())  # queued (1 slot)
        assert svc.snapshot_running() == 1

    def test_history_empty_without_snapshots(self, env):
        sim, es, svc, _ = env
        t = make_task(work=1e6)
        es.submit_task(t)
        sim.run_until(10.0)
        assert svc.progress_history(t.task_id) == []

    def test_double_snapshot_start_rejected(self, env):
        sim, es, svc, _ = env
        svc.start_periodic_snapshots()
        with pytest.raises(RuntimeError):
            svc.start_periodic_snapshots()
        svc.stop_periodic_snapshots()

    def test_gae_wiring_arms_snapshots(self):
        from repro.gae import build_gae
        from repro.gridsim import GridBuilder, Job as GJob

        grid = GridBuilder(seed=3).site("s").probe_noise(0.0).build()
        gae = build_gae(grid, monitor_snapshot_period_s=25.0)
        gae.add_user("u", "pw")
        t = make_task(work=100.0)
        gae.scheduler.submit_job(GJob(tasks=[t], owner="u"))
        gae.start()
        gae.grid.run_until(120.0)
        gae.stop()
        history = gae.client("u", "pw").service("jobmon").progress_history(t.task_id)
        assert len(history) >= 3
