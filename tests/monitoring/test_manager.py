"""Unit tests for the JMManager / JMExecutable information flow (§5.3)."""

import pytest

from repro.core.monitoring.collector import JobInformationCollector
from repro.core.monitoring.db_manager import DBManager
from repro.core.monitoring.manager import JMExecutable, JMManager
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import Job, Task, TaskSpec
from repro.gridsim.site import Site


@pytest.fixture
def env(sim):
    site = Site.simple(sim, "s1")
    es = ExecutionService(site)
    db = DBManager()
    collector = JobInformationCollector(sim, db)
    collector.attach(es)
    manager = JMManager(db, collector)
    return sim, es, db, manager


def make_task(work=100.0):
    return Task(spec=TaskSpec(), work_seconds=work)


class TestGetInfo:
    def test_terminal_answered_from_db(self, env):
        sim, es, db, manager = env
        t = make_task(work=10.0)
        es.submit_task(t)
        sim.run()
        record = manager.get_info(t.task_id)
        assert record.status == "completed"

    def test_live_task_recollected_fresh(self, env):
        sim, es, db, manager = env
        t = make_task(work=100.0)
        es.submit_task(t)
        sim.run_until(20.0)
        first = manager.get_info(t.task_id)
        sim.run_until(40.0)
        second = manager.get_info(t.task_id)
        assert second.elapsed_time_s > first.elapsed_time_s

    def test_unknown_task_returns_none(self, env):
        _, _, _, manager = env
        assert manager.get_info("ghost") is None

    def test_db_fallback_when_collector_cannot_reach(self, env):
        sim, es, db, manager = env
        t = make_task()
        es.submit_task(t)
        # Stash a (stale, non-terminal) record, then take the service down.
        db.update(manager.collector._snapshot(es.pool.ad(t.task_id), "s1"))
        es.fail(crash_pool=False)
        record = manager.get_info(t.task_id)
        assert record is not None
        assert record.status == "running"  # the stale stored snapshot


class TestGetJobInfo:
    def test_covers_all_job_tasks(self, env):
        sim, es, db, manager = env
        tasks = [make_task(work=10.0), make_task(work=20.0)]
        job = Job(tasks=tasks, owner="u")
        for t in tasks:
            es.submit_task(t)
        sim.run()
        records = manager.get_job_info(job.job_id)
        assert {r.task_id for r in records} == {t.task_id for t in tasks}
        assert all(r.status == "completed" for r in records)

    def test_includes_still_running_tasks(self, env):
        sim, es, db, manager = env
        tasks = [make_task(work=10.0), make_task(work=500.0)]
        job = Job(tasks=tasks, owner="u")
        for t in tasks:
            es.submit_task(t)
        sim.run_until(20.0)
        records = manager.get_job_info(job.job_id)
        statuses = {r.task_id: r.status for r in records}
        assert statuses[tasks[0].task_id] == "completed"
        assert statuses[tasks[1].task_id] == "running"


class TestJMExecutable:
    def test_forwards_to_manager(self, env):
        sim, es, db, manager = env
        executable = JMExecutable(manager)
        t = make_task(work=10.0)
        es.submit_task(t)
        sim.run()
        assert executable.get_info(t.task_id).status == "completed"
        assert executable.get_info("ghost") is None
