"""Unit tests for the Job Information Collector (§5.2)."""

import pytest

from repro.core.monitoring.collector import JobInformationCollector
from repro.core.monitoring.db_manager import DBManager
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import Task, TaskSpec
from repro.gridsim.site import Site


@pytest.fixture
def env(sim):
    site = Site.simple(sim, "s1", background_load=0.0)
    es = ExecutionService(site)
    db = DBManager()
    collector = JobInformationCollector(sim, db, estimate_lookup=lambda tid: 100.0)
    collector.attach(es)
    return sim, es, db, collector


def make_task(work=100.0, **kw):
    return Task(spec=TaskSpec(**kw), work_seconds=work)


class TestTerminalUpdates:
    def test_completion_pushed_to_db(self, env):
        sim, es, db, _ = env
        t = make_task(work=50.0)
        es.submit_task(t)
        sim.run()
        stored = db.get(t.task_id)
        assert stored.status == "completed"
        assert stored.completion_time == pytest.approx(50.0)

    def test_failure_pushed_to_db(self, env):
        sim, es, db, _ = env
        t = make_task()
        es.submit_task(t)
        es.pool.fail_task(t.task_id)
        assert db.get(t.task_id).status == "failed"

    def test_kill_pushed_to_db(self, env):
        sim, es, db, _ = env
        t = make_task()
        es.submit_task(t)
        es.kill_task(t.task_id)
        assert db.get(t.task_id).status == "killed"

    def test_move_pushed_to_db(self, env):
        sim, es, db, _ = env
        t = make_task()
        es.submit_task(t)
        es.vacate_task(t.task_id)
        assert db.get(t.task_id).status == "moved"

    def test_running_not_in_db_yet(self, env):
        sim, es, db, _ = env
        t = make_task()
        es.submit_task(t)
        assert db.get(t.task_id) is None


class TestLiveCollection:
    def test_collect_running_task(self, env):
        sim, es, db, collector = env
        t = make_task(work=100.0)
        es.submit_task(t)
        sim.run_until(30.0)
        record = collector.collect(t.task_id)
        assert record.status == "running"
        assert record.elapsed_time_s == pytest.approx(30.0)
        assert record.estimated_run_time_s == 100.0
        assert record.remaining_time_s == pytest.approx(70.0)
        assert record.snapshot_time == 30.0

    def test_collect_unknown_returns_none(self, env):
        _, _, _, collector = env
        assert collector.collect("ghost") is None

    def test_collect_skips_down_services(self, env):
        sim, es, _, collector = env
        t = make_task()
        es.submit_task(t)
        es.fail(crash_pool=False)
        assert collector.collect(t.task_id) is None

    def test_collect_running_across_sites(self, env):
        sim, es, db, collector = env
        site2 = Site.simple(sim, "s2")
        es2 = ExecutionService(site2)
        collector.attach(es2)
        t1, t2 = make_task(), make_task()
        es.submit_task(t1)
        es2.submit_task(t2)
        records = collector.collect_running()
        assert {r.site for r in records} == {"s1", "s2"}

    def test_queue_position_reported(self, env):
        sim, es, _, collector = env
        t1, t2 = make_task(), make_task()
        es.submit_task(t1)
        es.submit_task(t2)
        assert collector.collect(t2.task_id).queue_position == 0

    def test_double_attach_rejected(self, env):
        sim, es, _, collector = env
        with pytest.raises(ValueError):
            collector.attach(es)

    def test_attached_sites_sorted(self, env):
        sim, es, _, collector = env
        assert collector.attached_sites() == ["s1"]

    def test_estimate_lookup_failure_degrades_to_zero(self, sim):
        site = Site.simple(sim, "s")
        es = ExecutionService(site)

        def broken_lookup(tid):
            raise KeyError(tid)

        collector = JobInformationCollector(sim, DBManager(), estimate_lookup=broken_lookup)
        collector.attach(es)
        t = make_task()
        es.submit_task(t)
        assert collector.collect(t.task_id).estimated_run_time_s == 0.0
