"""Unit tests for the monitoring record."""

import pytest

from repro.core.monitoring.records import MonitoringRecord
from repro.gridsim.condor import CondorPool
from repro.gridsim.job import Task, TaskSpec
from repro.gridsim.node import LoadProfile, Node


def make_ad(sim, work=100.0, **spec_kw):
    pool = CondorPool(sim, "s", [Node(name="n", load_profile=LoadProfile.constant(1.0))])
    t = Task(spec=TaskSpec(**spec_kw), work_seconds=work)
    pool.submit(t)
    return pool, pool.ad(t.task_id)


class TestFromAd:
    def test_snapshot_fields(self, sim):
        pool, ad = make_ad(sim, owner="alice", environment={"ROOTSYS": "/opt/root"})
        sim.run_until(50.0)
        pool._sync(ad)
        record = MonitoringRecord.from_ad(
            ad, site="s", estimated_run_time_s=100.0, snapshot_time=50.0
        )
        assert record.status == "running"
        assert record.owner == "alice"
        assert record.site == "s"
        assert record.elapsed_time_s == pytest.approx(25.0)   # load=1 halves rate
        assert record.remaining_time_s == pytest.approx(75.0)
        assert record.progress == pytest.approx(0.25)
        assert record.environment == {"ROOTSYS": "/opt/root"}
        assert record.snapshot_time == 50.0

    def test_no_estimate_reports_zero_remaining(self, sim):
        _, ad = make_ad(sim)
        record = MonitoringRecord.from_ad(ad, site="s", estimated_run_time_s=0.0)
        assert record.remaining_time_s == 0.0

    def test_remaining_floors_at_zero(self, sim):
        pool, ad = make_ad(sim, work=100.0)
        sim.run_until(120.0)
        pool._sync(ad)
        record = MonitoringRecord.from_ad(ad, site="s", estimated_run_time_s=10.0)
        assert record.remaining_time_s == 0.0

    def test_terminal_detection(self, sim):
        pool, ad = make_ad(sim, work=10.0)
        sim.run()
        record = MonitoringRecord.from_ad(ad, site="s")
        assert record.status == "completed"
        assert record.is_terminal
        assert record.completion_time == pytest.approx(20.0)

    def test_non_terminal_detection(self, sim):
        _, ad = make_ad(sim)
        assert not MonitoringRecord.from_ad(ad, site="s").is_terminal
