"""Unit tests for the SQLite-backed DBManager."""

import pytest

from repro.core.monitoring.db_manager import DBManager
from repro.core.monitoring.records import MonitoringRecord
from repro.monalisa.repository import MonALISARepository


def make_record(task_id="t1", job_id="j1", owner="alice", status="running", **kw):
    defaults = dict(
        site="s", elapsed_time_s=10.0, estimated_run_time_s=100.0,
        remaining_time_s=90.0, progress=0.1, queue_position=-1, priority=0,
        submission_time=0.0, execution_time=1.0, completion_time=None,
        cpu_time_used_s=10.0, input_io_mb=0.0, output_io_mb=0.0,
        environment={"KEY": "VAL"}, snapshot_time=10.0,
    )
    defaults.update(kw)
    return MonitoringRecord(task_id=task_id, job_id=job_id, owner=owner, status=status, **defaults)


@pytest.fixture
def db():
    return DBManager()


class TestCrud:
    def test_get_missing_returns_none(self, db):
        assert db.get("ghost") is None

    def test_update_then_get_round_trips(self, db):
        record = make_record()
        db.update(record)
        assert db.get("t1") == record

    def test_upsert_replaces(self, db):
        db.update(make_record(status="running"))
        db.update(make_record(status="completed", completion_time=50.0))
        assert db.get("t1").status == "completed"
        assert len(db) == 1

    def test_environment_json_round_trip(self, db):
        db.update(make_record(environment={"A": "1", "B": "2"}))
        assert db.get("t1").environment == {"A": "1", "B": "2"}

    def test_none_times_preserved(self, db):
        db.update(make_record(execution_time=None, completion_time=None))
        got = db.get("t1")
        assert got.execution_time is None
        assert got.completion_time is None


class TestQueries:
    def test_for_job(self, db):
        db.update(make_record(task_id="t1", job_id="j1"))
        db.update(make_record(task_id="t2", job_id="j1"))
        db.update(make_record(task_id="t3", job_id="j2"))
        assert [r.task_id for r in db.for_job("j1")] == ["t1", "t2"]

    def test_for_owner(self, db):
        db.update(make_record(task_id="t1", owner="alice"))
        db.update(make_record(task_id="t2", owner="bob"))
        assert [r.task_id for r in db.for_owner("alice")] == ["t1"]

    def test_task_ids_sorted(self, db):
        db.update(make_record(task_id="b"))
        db.update(make_record(task_id="a"))
        assert db.task_ids() == ["a", "b"]


class TestLifecycle:
    def test_close_is_idempotent(self, db):
        db.close()
        db.close()  # must not raise

    def test_update_after_close_raises(self, db):
        db.update(make_record())
        db.close()
        with pytest.raises(Exception):
            db.update(make_record(task_id="t2"))

    def test_context_manager_closes(self):
        with DBManager() as db:
            db.update(make_record())
            assert len(db) == 1
        with pytest.raises(Exception):
            db.update(make_record(task_id="t2"))

    def test_store_backed_close_leaves_shared_connection_open(self):
        from repro.store import MemoryStore

        store = MemoryStore()
        db = DBManager(store=store)
        db.update(make_record())
        db.close()
        # The store owns the connection; it must survive the manager.
        conn = store.sql_connection()
        assert conn.execute("SELECT COUNT(*) FROM monitoring").fetchone() == (1,)
        store.close()


class TestUpdateMany:
    def test_empty_batch_is_a_noop(self, db):
        assert db.update_many([]) == 0
        assert len(db) == 0

    def test_batched_rows_identical_to_update_loop(self):
        records = [
            make_record(task_id=f"t{i}", job_id=f"j{i % 3}", progress=i / 10)
            for i in range(10)
        ]
        loop_db, batch_db = DBManager(), DBManager()
        for record in records:
            loop_db.update(record)
        assert batch_db.update_many(records) == len(records)
        assert batch_db.export_state() == loop_db.export_state()

    def test_batched_upsert_keeps_last_write(self, db):
        db.update_many(
            [make_record(status="running"), make_record(status="completed")]
        )
        assert db.get("t1").status == "completed"
        assert len(db) == 1

    def test_batch_publishes_once_per_record_in_order(self):
        repo = MonALISARepository()
        db = DBManager(monalisa=repo)
        db.update_many(
            [
                make_record(task_id="t1", status="running"),
                make_record(task_id="t2", status="queued"),
                make_record(task_id="t1", status="completed"),
            ]
        )
        assert [e.state for e in repo.job_events(task_id="t1")] == [
            "running",
            "completed",
        ]
        assert [e.state for e in repo.job_events(task_id="t2")] == ["queued"]


class TestStateRoundTrip:
    def test_export_import_round_trips_both_tables(self):
        source = DBManager()
        for i in range(3):
            source.update(make_record(task_id="t1", progress=i / 3, snapshot_time=10.0 * i))
        source.update(make_record(task_id="t2"))

        target = DBManager()
        target.import_state(source.export_state())
        assert target.export_state() == source.export_state()
        assert target.progress_history("t1") == source.progress_history("t1")

    def test_import_does_not_republish_to_monalisa(self):
        source = DBManager()
        source.update(make_record())
        repo = MonALISARepository()
        target = DBManager(monalisa=repo)
        target.import_state(source.export_state())
        assert repo.job_events(task_id="t1") == []

    def test_history_seq_continues_after_import(self):
        source = DBManager()
        source.update(make_record(snapshot_time=1.0))
        source.update(make_record(snapshot_time=2.0))
        target = DBManager()
        target.import_state(source.export_state())
        target.update(make_record(snapshot_time=3.0))
        times = [row[0] for row in target.progress_history("t1")]
        assert times == [1.0, 2.0, 3.0]


class TestMonalisaPublication:
    def test_update_publishes_job_state(self):
        repo = MonALISARepository()
        db = DBManager(monalisa=repo)
        db.update(make_record(status="completed", progress=1.0))
        [event] = repo.job_events(task_id="t1")
        assert event.state == "completed"
        assert event.progress == 1.0

    def test_every_update_publishes(self):
        repo = MonALISARepository()
        db = DBManager(monalisa=repo)
        db.update(make_record(status="running"))
        db.update(make_record(status="completed"))
        assert [e.state for e in repo.job_events(task_id="t1")] == ["running", "completed"]
