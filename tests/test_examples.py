"""Smoke tests: every shipped example must run clean.

Each example is executed as a subprocess (its own interpreter, like a
user would run it) and its output checked for the landmark lines.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 180.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "scheduler placed" in out
        assert "job completed at site siteB" in out

    def test_steering_scenario(self):
        out = run_example("steering_scenario.py")
        assert "steering decision" in out
        assert "steered job completed" in out
        assert "Figure 7" in out

    def test_runtime_estimation(self):
        out = run_example("runtime_estimation.py")
        assert "mean |% error|" in out
        assert "paper: 13.53%" in out
        assert "Figure 5" in out

    def test_physics_analysis_dag(self):
        out = run_example("physics_analysis_dag.py")
        assert "crashes!" in out
        assert "job state: completed" in out
        assert "resubmitted" in out
        assert "total charged" in out

    def test_federated_discovery(self):
        out = run_example("federated_discovery.py")
        assert "found at cern" in out
        assert "found at caltech" in out
        assert "steering.where_am_i() -> 'caltech'" in out

    def test_adaptive_steering(self):
        out = run_example("adaptive_steering.py")
        assert "manual moves observed" in out
        assert "autonomous move" in out
        assert "steered by the learned policy" in out
