"""Unit tests for the GAE wiring facade itself."""

import pytest

from repro.clarens.errors import AuthenticationError, AuthorizationError
from repro.gae import build_gae, default_acl
from repro.gridsim import GridBuilder, Job, Task, TaskSpec


def small_grid(seed=71):
    return GridBuilder(seed=seed).site("a").site("b").probe_noise(0.0).build()


class TestBuildOptions:
    def test_custom_host_name(self):
        gae = build_gae(small_grid(), host_name="my-clarens")
        assert gae.host.name == "my-clarens"

    def test_record_history_off(self):
        gae = build_gae(small_grid(), record_history=False)
        t = Task(spec=TaskSpec(owner="u"), work_seconds=10.0)
        gae.scheduler.submit_job(Job(tasks=[t], owner="u"))
        gae.grid.run_until(100.0)
        assert len(gae.history) == 0

    def test_record_history_on_by_default(self):
        gae = build_gae(small_grid())
        t = Task(spec=TaskSpec(owner="u"), work_seconds=10.0)
        gae.scheduler.submit_job(Job(tasks=[t], owner="u"))
        gae.grid.run_until(100.0)
        assert len(gae.history) == 1

    def test_start_stop_idempotent_cycle(self):
        gae = build_gae(small_grid())
        gae.start()
        gae.stop()
        gae.start()  # restartable after stop
        gae.stop()

    def test_sim_and_scheduler_shortcuts(self):
        gae = build_gae(small_grid())
        assert gae.sim is gae.grid.sim
        assert gae.scheduler is gae.grid.scheduler


class TestDefaultAcl:
    def test_gae_users_allowed_everywhere(self):
        from repro.clarens.auth import Principal

        acl = default_acl()
        p = Principal(user="x", groups=frozenset({"gae-users"}))
        for path in ("estimator.estimate_runtime", "jobmon.job_info",
                     "steering.kill", "accounting.quota_available",
                     "monalisa.grid_weather"):
            assert acl.check(p, path)

    def test_outsiders_denied(self):
        from repro.clarens.auth import Principal

        acl = default_acl()
        p = Principal(user="x", groups=frozenset({"randoms"}))
        assert not acl.check(p, "steering.kill")

    def test_user_outside_gae_group_rejected_at_dispatch(self):
        gae = build_gae(small_grid())
        gae.host.users.add_user("outsider", "pw", groups=("visitors",))
        client = gae.client("outsider", "pw")
        with pytest.raises(AuthorizationError):
            client.service("jobmon").running_tasks()

    def test_anonymous_rejected_at_dispatch(self):
        gae = build_gae(small_grid())
        client = gae.client()
        with pytest.raises(AuthenticationError):
            client.service("jobmon").running_tasks()


class TestLoadPublishing:
    def test_scheduler_sees_published_loads(self):
        grid = (
            GridBuilder(seed=72)
            .site("light", background_load=0.0)
            .site("heavy", background_load=5.0)
            .probe_noise(0.0)
            .build()
        )
        gae = build_gae(grid)
        gae.load_publisher.publish_now()
        t = Task(spec=TaskSpec(owner="u"), work_seconds=100.0)
        plan = gae.scheduler.submit_job(Job(tasks=[t], owner="u"))
        assert plan.site_for(t.task_id) == "light"

    def test_stale_loads_without_publish_default_to_zero(self):
        gae = build_gae(small_grid())
        # Nothing published yet: the oracle answers 0.0 for all.
        assert gae.scheduler.load_oracle("a") == 0.0
