"""Unit tests for the declarative health-rule engine."""

import pytest

from repro.gridsim.clock import Simulator
from repro.observability.health import (
    RULE_KINDS,
    HealthEngine,
    HealthRule,
    HealthRuleError,
    default_health_rules,
)
from repro.observability.journal import EventJournal, EventType
from repro.observability.metrics import MetricsRegistry
from repro.observability.telemetry import TelemetryPipeline


def make_stack(rules=None, window_s=10.0):
    sim = Simulator()
    journal = EventJournal(lambda: sim.now)
    pipe = TelemetryPipeline(
        sim, MetricsRegistry(), journal, window_s=window_s
    ).attach()
    engine = HealthEngine(pipe, journal, rules=rules)
    pipe.start()
    return sim, journal, pipe, engine


def fail_rule(**overrides):
    base = dict(
        name="fails",
        kind="threshold",
        series="journal.failed.count",
        op=">=",
        threshold=1.0,
    )
    base.update(overrides)
    return HealthRule(**base)


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(HealthRuleError, match="unknown kind"):
            HealthRule(name="x", kind="anomaly", series="s")

    def test_threshold_needs_series(self):
        with pytest.raises(HealthRuleError, match="series: required"):
            HealthRule(name="x", kind="threshold")

    def test_burn_rate_needs_both_series(self):
        with pytest.raises(HealthRuleError, match="good_series and bad_series"):
            HealthRule(name="x", kind="burn_rate", good_series="g")

    def test_bad_op_reducer_severity(self):
        with pytest.raises(HealthRuleError, match="op"):
            fail_rule(op="==")
        with pytest.raises(HealthRuleError, match="reducer"):
            fail_rule(reducer="median")
        with pytest.raises(HealthRuleError, match="severity"):
            fail_rule(severity="fatal")

    def test_from_dict_round_trip(self):
        for rule in default_health_rules():
            assert HealthRule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(HealthRuleError, match="unknown keys"):
            HealthRule.from_dict({"name": "x", "kind": "threshold",
                                  "series": "s", "metric": "nope"})

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(HealthRuleError, match="duplicate"):
            make_stack(rules=[fail_rule(), fail_rule()])

    def test_rule_kinds_pinned(self):
        assert RULE_KINDS == ("threshold", "delta", "burn_rate")


class TestStateMachine:
    def test_threshold_fires_and_resolves(self):
        sim, journal, pipe, engine = make_stack(
            rules=[fail_rule(clear_windows=2)]
        )
        sim.at(5.0, lambda: journal.record(EventType.FAILED, "t1"))
        sim.run_until(10.0)
        assert engine.firing() == ["fails"]
        sim.run_until(20.0)  # one clean window: still firing
        assert engine.firing() == ["fails"]
        sim.run_until(30.0)  # second clean window clears it
        assert engine.firing() == []
        assert [t["to"] for t in engine.transitions()] == ["firing", "resolved"]

    def test_for_windows_debounces(self):
        sim, journal, pipe, engine = make_stack(
            rules=[fail_rule(for_windows=2)]
        )
        sim.at(5.0, lambda: journal.record(EventType.FAILED, "t1"))
        sim.run_until(10.0)
        assert engine.firing() == []  # one breach is not enough
        sim.at(15.0, lambda: journal.record(EventType.FAILED, "t2"))
        sim.run_until(20.0)
        assert engine.firing() == ["fails"]

    def test_no_data_never_fires(self):
        sim, _, _, engine = make_stack(rules=[fail_rule()])
        sim.run_until(50.0)
        assert engine.firing() == []
        snap = engine.snapshot()
        assert snap["rules"][0]["value"] is None
        assert snap["rules"][0]["evaluations"] == 5

    def test_delta_rule(self):
        rule = HealthRule(
            name="stall", kind="delta", series="journal.completed.count",
            op="<=", threshold=-2.0, windows=2,
        )
        sim, journal, pipe, engine = make_stack(rules=[rule])

        def complete(n):
            for i in range(n):
                journal.record(EventType.COMPLETED, f"t{i}")

        sim.at(5.0, lambda: complete(3))
        sim.run_until(10.0)
        assert engine.firing() == []
        sim.run_until(20.0)  # 3 -> 0 across the last 2 windows: fires
        assert engine.firing() == ["stall"]

    def test_burn_rate_math(self):
        rule = HealthRule(
            name="burn", kind="burn_rate",
            good_series="journal.completed.count",
            bad_series="journal.failed.count",
            budget=0.25, op=">=", threshold=1.0, windows=2,
        )
        sim, journal, pipe, engine = make_stack(rules=[rule])
        sim.at(5.0, lambda: journal.record(EventType.FAILED, "t1"))
        sim.at(6.0, lambda: journal.record(EventType.COMPLETED, "t2"))
        sim.at(7.0, lambda: journal.record(EventType.COMPLETED, "t3"))
        sim.at(8.0, lambda: journal.record(EventType.COMPLETED, "t4"))
        sim.run_until(10.0)
        # bad/(good+bad) = 1/4; burn = 0.25 / 0.25 = 1.0 >= 1.0: fires.
        snap = engine.snapshot()
        assert snap["rules"][0]["value"] == pytest.approx(1.0)
        assert engine.firing() == ["burn"]


class TestSideEffects:
    def test_journal_events_on_transitions(self):
        sim, journal, pipe, engine = make_stack(rules=[fail_rule()])
        sim.at(5.0, lambda: journal.record(EventType.FAILED, "t1"))
        sim.run_until(20.0)
        firing = journal.events(type=EventType.HEALTH_FIRING)
        resolved = journal.events(type=EventType.HEALTH_RESOLVED)
        assert [(e.task_id, e.time) for e in firing] == [("fails", 10.0)]
        assert [(e.task_id, e.time) for e in resolved] == [("fails", 20.0)]
        assert firing[0].attributes["severity"] == "warning"
        assert firing[0].attributes["rule_kind"] == "threshold"

    def test_monalisa_published_each_window(self):
        published = []

        class StubMonalisa:
            def publish(self, farm, series, t, value):
                published.append((farm, series, t, value))

        sim, journal, pipe, engine = make_stack(rules=[fail_rule()])
        engine.attach_monalisa(StubMonalisa())
        sim.at(5.0, lambda: journal.record(EventType.FAILED, "t1"))
        sim.run_until(20.0)
        assert published == [
            ("health", "rule.fails", 10.0, 1.0),
            ("health", "rule.fails", 20.0, 0.0),
        ]

    def test_snapshot_shape(self):
        sim, _, _, engine = make_stack()
        sim.run_until(10.0)
        snap = engine.snapshot()
        assert snap["enabled"] is True
        assert snap["windows_closed"] == 1
        assert len(snap["rules"]) == len(default_health_rules())
        for rule in snap["rules"]:
            for key in ("name", "kind", "severity", "state", "value",
                        "evaluations", "transitions"):
                assert key in rule


class TestPersistence:
    def test_export_import_round_trip(self):
        sim, journal, pipe, engine = make_stack(
            rules=[fail_rule(clear_windows=3)]
        )
        sim.at(5.0, lambda: journal.record(EventType.FAILED, "t1"))
        sim.run_until(20.0)  # firing, one clean window into the clear streak
        state = engine.export_state()

        sim2, journal2, pipe2, engine2 = make_stack(rules=[fail_rule()])
        engine2.import_state(state)
        assert engine2.rules == (fail_rule(clear_windows=3),)
        assert engine2.firing() == ["fails"]
        assert engine2.transitions() == engine.transitions()
        snap = engine2.snapshot()
        assert snap["rules"][0]["evaluations"] == 2
