"""End-to-end instrumentation tests over an assembled GAE.

The headline property (the tentpole's acceptance): one trace id follows a
job from submission through steering RPCs, Condor flocking, migration and
MonALISA publication.
"""

import pytest

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job
from repro.observability.journal import EventType
from repro.workloads.generators import make_prime_count_task


def two_site_gae(seed=11, flock=False, site_a_nodes=2):
    builder = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=site_a_nodes, background_load=0.0)
        .site("siteB", nodes=2, background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=622.0, latency_s=0.05)
        .probe_noise(0.0)
    )
    if flock:
        builder = builder.flock("siteA", "siteB")
    gae = build_gae(builder.build(), policy=SteeringPolicy(auto_move=False))
    gae.add_user("u", "pw")
    return gae


def submit_to(gae, task, site):
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): site
    try:
        gae.scheduler.submit_job(Job(tasks=[task], owner=task.spec.owner))
    finally:
        gae.scheduler.select_site = original


class TestSteeredMoveKeepsTrace:
    def test_move_keeps_same_trace_id_across_sites(self):
        gae = two_site_gae()
        gae.start()
        task = make_prime_count_task(owner="u", checkpointable=True)
        submit_to(gae, task, "siteA")
        obs = gae.observability
        trace_id = obs.trace_id_of(task.task_id)
        assert trace_id is not None

        gae.grid.run_until(50.0)
        client = gae.client("u", "pw")
        result = client.service("steering").move(task.task_id, "siteB")
        assert result["ok"], result
        gae.grid.run_until(4000.0)
        gae.stop()

        assert obs.trace_id_of(task.task_id) == trace_id
        names = [s.name for s in obs.tracer.spans(trace_id)]
        assert "run@siteA" in names and "run@siteB" in names
        timeline = obs.journal.timeline(task.task_id)
        assert {e.trace_id for e in timeline} == {trace_id}
        types = [e.type for e in timeline]
        assert EventType.MOVED in types
        assert types[-1] is EventType.COMPLETED
        # Both incarnations hang off the single task root span.
        roots = [s for s in obs.tracer.spans(trace_id)
                 if s.name == f"task:{task.task_id}"]
        assert len(roots) == 1
        assert roots[0].status == "ok"

    def test_steering_rpc_is_adopted_into_the_job_trace(self):
        gae = two_site_gae()
        gae.start()
        task = make_prime_count_task(owner="u")
        submit_to(gae, task, "siteA")
        gae.grid.run_until(30.0)
        gae.client("u", "pw").service("steering").pause(task.task_id)
        gae.stop()

        obs = gae.observability
        trace_id = obs.trace_id_of(task.task_id)
        spans = obs.tracer.spans(trace_id)
        rpc = next(s for s in spans if s.name == "rpc:steering.pause")
        steer = next(s for s in spans if s.name == "steer:pause")
        assert "adopted_from" in rpc.attributes  # born on the call trace
        root = next(s for s in spans if s.name == f"task:{task.task_id}")
        assert rpc.parent_id == root.span_id
        assert steer.parent_id == rpc.span_id


class TestFlockTracing:
    def test_flock_forward_spans_and_events(self):
        gae = two_site_gae(flock=True, site_a_nodes=1)
        gae.start()
        filler = make_prime_count_task(owner="u", work_seconds=500.0)
        gae.grid.execution_services["siteA"].submit_task(filler)
        task = make_prime_count_task(owner="u")
        submit_to(gae, task, "siteA")
        gae.grid.run_until(4000.0)
        gae.stop()

        obs = gae.observability
        trace_id = obs.trace_id_of(task.task_id)
        spans = obs.tracer.spans(trace_id)
        flock = next(s for s in spans if s.name == "flock")
        assert flock.attributes["from"] == "siteA"
        assert flock.attributes["to"] == "siteB"
        types = [e.type for e in obs.journal.timeline(task.task_id)]
        assert EventType.FLOCK_FORWARDED in types
        assert types[-1] is EventType.COMPLETED
        assert obs.metrics.get(
            "gae_condor_flock_forwards_total"
        ).value(**{"from": "siteA"}) == 1.0

    def test_steering_verb_reaches_a_flocked_task(self):
        # The plan follows the flock (scheduler rebinding), so pause lands
        # on siteB where the job actually runs.
        gae = two_site_gae(flock=True, site_a_nodes=1)
        gae.start()
        filler = make_prime_count_task(owner="u", work_seconds=500.0)
        gae.grid.execution_services["siteA"].submit_task(filler)
        task = make_prime_count_task(owner="u")
        submit_to(gae, task, "siteA")
        gae.grid.run_until(10.0)
        assert gae.scheduler.site_of_task(task.task_id) == "siteB"
        result = gae.client("u", "pw").service("steering").pause(task.task_id)
        assert result["ok"], result
        assert gae.grid.execution_services["siteB"].pool.status(
            task.task_id
        ).state.value == "paused"
        gae.stop()


class TestJournalAndMetricsWiring:
    @pytest.fixture
    def completed(self):
        gae = two_site_gae()
        gae.start()
        task = make_prime_count_task(owner="u")
        submit_to(gae, task, "siteA")
        gae.grid.run_until(4000.0)
        gae.stop()
        return gae, task

    def test_lifecycle_timeline(self, completed):
        gae, task = completed
        types = [e.type for e in gae.observability.journal.timeline(task.task_id)]
        assert types[0] is EventType.SUBMITTED
        assert EventType.SCHEDULED in types
        assert EventType.DISPATCHED in types
        assert EventType.STARTED in types
        assert types[-1] is EventType.COMPLETED

    def test_task_metrics_observed(self, completed):
        gae, _ = completed
        m = gae.observability.metrics
        assert m.get("gae_scheduler_jobs_planned_total").total() == 1.0
        assert m.get("gae_task_events_total").value(type="completed") == 1.0
        assert m.get("gae_task_run_seconds").summary(site="siteA")["count"] == 1.0
        assert m.get("gae_monalisa_job_state_publish_total").total() > 0
        assert m.get("gae_execution_service_up").value(site="siteA") == 1.0

    def test_monalisa_publish_spans_deduped_per_state(self, completed):
        gae, task = completed
        trace_id = gae.observability.trace_id_of(task.task_id)
        publishes = [
            s for s in gae.observability.tracer.spans(trace_id)
            if s.name == "monalisa:publish"
        ]
        states = [s.attributes["state"] for s in publishes]
        assert len(states) == len(set(states))

    def test_system_observability_method(self, completed):
        gae, _ = completed
        snap = gae.client("u", "pw").call("system.observability")
        assert snap["enabled"] is True
        assert snap["tasks_traced"] == 1
        assert snap["spans"] > 0
        assert "gae_task_events_total" in snap["metrics"]

    def test_disabled_gae_reports_disabled(self):
        grid = GridBuilder(seed=5).site("s").probe_noise(0.0).build()
        gae = build_gae(grid, observability=False)
        assert gae.observability is None
        snap = gae.client().call("system.observability")
        assert snap == {"enabled": False}

    def test_service_failure_drives_the_up_gauge(self):
        gae = two_site_gae()
        gae.start()
        m = gae.observability.metrics.get("gae_execution_service_up")
        gae.grid.execution_services["siteA"].fail(crash_pool=False)
        assert m.value(site="siteA") == 0.0
        gae.grid.execution_services["siteA"].recover()
        assert m.value(site="siteA") == 1.0
        gae.stop()
