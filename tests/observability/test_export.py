"""Round-trip and schema-validation tests for the JSONL trace export."""

import json

import pytest

from repro.observability.export import (
    EXPORT_SCHEMA_VERSION,
    ExportValidationError,
    export_observability,
    load_export,
    validate_export_file,
)
from repro.observability.journal import (
    JOURNAL_SCHEMA_VERSION,
    EventJournal,
    EventType,
)
from repro.observability.tracing import Tracer

SCHEMA = "docs/schemas/trace_export.schema.json"


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def stores():
    clock = FakeClock()
    tracer = Tracer(clock)
    journal = EventJournal(clock)
    root = tracer.start_span("task:t1", trace_id="tr-1", activate=False)
    journal.record(EventType.SUBMITTED, "t1", trace_id="tr-1", span_id=root.span_id)
    clock.now = 10.0
    tracer.end_span(root)
    journal.record(EventType.COMPLETED, "t1", site="siteA", trace_id="tr-1")
    tracer.instant("other", trace_id="tr-2")
    journal.record(EventType.SUBMITTED, "t2", trace_id="tr-2")
    return tracer, journal


class TestExportRoundTrip:
    def test_meta_then_rows(self, tmp_path, stores):
        tracer, journal = stores
        path = tmp_path / "out.jsonl"
        count = export_observability(path, tracer, journal, sim_now=10.0)
        assert count == 1 + 2 + 3  # meta + spans + events
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {
            "kind": "meta", "schema": EXPORT_SCHEMA_VERSION,
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "sim_now": 10.0, "span_count": 2, "event_count": 3,
        }
        data = load_export(path)
        assert len(data["span"]) == 2
        assert len(data["event"]) == 3

    def test_trace_filter(self, tmp_path, stores):
        tracer, journal = stores
        path = tmp_path / "one.jsonl"
        export_observability(path, tracer, journal, trace_id="tr-1")
        data = load_export(path)
        assert {s["trace_id"] for s in data["span"]} == {"tr-1"}
        assert {e["trace_id"] for e in data["event"]} == {"tr-1"}

    def test_export_validates_against_checked_in_schema(self, tmp_path, stores):
        tracer, journal = stores
        path = tmp_path / "out.jsonl"
        export_observability(path, tracer, journal, sim_now=10.0)
        assert validate_export_file(path, SCHEMA) == 6


class TestValidator:
    def write(self, tmp_path, rows):
        path = tmp_path / "x.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        return path

    def meta(self, **over):
        row = {"kind": "meta", "schema": EXPORT_SCHEMA_VERSION,
               "journal_schema": JOURNAL_SCHEMA_VERSION,
               "sim_now": 0.0, "span_count": 0, "event_count": 0}
        row.update(over)
        return row

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("")
        with pytest.raises(ExportValidationError, match="empty"):
            validate_export_file(path, SCHEMA)

    def test_missing_meta_rejected(self, tmp_path):
        span = {"kind": "span", "name": "a", "trace_id": "t", "span_id": "s",
                "parent_id": None, "start": 0.0, "end": 1.0,
                "status": "ok", "attributes": {}}
        with pytest.raises(ExportValidationError, match="meta"):
            validate_export_file(self.write(tmp_path, [span]), SCHEMA)

    def test_meta_not_first_rejected(self, tmp_path):
        span = {"kind": "span", "name": "a", "trace_id": "t", "span_id": "s",
                "parent_id": None, "start": 0.0, "end": 1.0,
                "status": "ok", "attributes": {}}
        with pytest.raises(ExportValidationError, match="first"):
            validate_export_file(self.write(tmp_path, [span, self.meta()]), SCHEMA)

    def test_bad_span_status_rejected(self, tmp_path):
        span = {"kind": "span", "name": "a", "trace_id": "t", "span_id": "s",
                "parent_id": None, "start": 0.0, "end": 1.0,
                "status": "exploded", "attributes": {}}
        with pytest.raises(ExportValidationError, match="no oneOf branch"):
            validate_export_file(self.write(tmp_path, [self.meta(), span]), SCHEMA)

    def test_unknown_event_type_rejected(self, tmp_path):
        event = {"kind": "event", "seq": 0, "time": 0.0, "type": "teleported",
                 "task_id": "t", "job_id": None, "site": None,
                 "trace_id": None, "span_id": None, "attributes": {}}
        with pytest.raises(ExportValidationError):
            validate_export_file(self.write(tmp_path, [self.meta(), event]), SCHEMA)

    def test_missing_required_key_rejected(self, tmp_path):
        event = {"kind": "event", "seq": 0, "time": 0.0, "type": "started"}
        with pytest.raises(ExportValidationError):
            validate_export_file(self.write(tmp_path, [self.meta(), event]), SCHEMA)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ExportValidationError, match="invalid JSON"):
            validate_export_file(path, SCHEMA)

    def test_unknown_kind_rejected_on_load(self, tmp_path):
        path = self.write(tmp_path, [self.meta(), {"kind": "mystery"}])
        with pytest.raises(ExportValidationError, match="unknown row kind"):
            load_export(path)

    def test_schema_lists_every_event_type(self, tmp_path):
        schema = json.loads(open(SCHEMA, encoding="utf-8").read())
        event_branch = next(
            b for b in schema["oneOf"]
            if b["properties"]["kind"].get("const") == "event"
        )
        assert set(event_branch["properties"]["type"]["enum"]) == {
            e.value for e in EventType
        }
