"""Unit tests for spans, the tracer, and the ASCII tree renderer."""

import pytest

from repro.observability.tracing import Span, Tracer, render_span_tree


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestSpan:
    def test_finish_is_idempotent(self):
        span = Span("s", trace_id="t-1", span_id="s-1", parent_id=None, start=1.0)
        span.finish(5.0, "ok")
        span.finish(9.0, "error")  # second finish must not overwrite
        assert span.end == 5.0
        assert span.status == "ok"
        assert span.duration_s == 4.0

    def test_to_wire_shape(self):
        span = Span("rpc:x", trace_id="t-1", span_id="s-1", parent_id="s-0",
                    start=0.0, attributes={"method": "x"})
        wire = span.to_wire()
        assert wire["name"] == "rpc:x"
        assert wire["parent_id"] == "s-0"
        assert wire["status"] == "open"
        assert wire["end"] is None
        assert wire["attributes"] == {"method": "x"}


class TestTracer:
    def test_sim_clock_timestamps(self, tracer, clock):
        span = tracer.start_span("a")
        clock.now = 42.0
        tracer.end_span(span)
        assert span.start == 0.0
        assert span.end == 42.0
        assert span.status == "ok"

    def test_ambient_parenting_same_trace(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_explicit_trace_id_breaks_ambient_parenting(self, tracer):
        with tracer.span("outer"):
            other = tracer.start_span("other", trace_id="different-1", activate=False)
        assert other.parent_id is None
        assert other.trace_id == "different-1"

    def test_context_manager_marks_errors(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (span,) = tracer.spans()
        assert span.status == "error"

    def test_bounded_store_evicts_oldest(self, clock):
        tracer = Tracer(clock, capacity=3)
        for i in range(5):
            tracer.instant(f"s{i}", trace_id="t-1")
        assert len(tracer) == 3
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_capacity_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            Tracer(clock, capacity=0)

    def test_instant_is_finished_and_not_activated(self, tracer, clock):
        clock.now = 7.0
        span = tracer.instant("flash", trace_id="t-1")
        assert span.end == span.start == 7.0
        assert tracer.current_span() is None

    def test_adopt_current_trace_rehomes_open_spans(self, tracer):
        span = tracer.start_span("rpc:steering.move", trace_id="call-1")
        replaced = tracer.adopt_current_trace("job-trace-9")
        assert replaced == ["call-1"]
        assert span.trace_id == "job-trace-9"
        assert span.attributes["adopted_from"] == "call-1"
        # Adopting again is a no-op.
        assert tracer.adopt_current_trace("job-trace-9") == []
        tracer.end_span(span)

    def test_spans_filtered_by_trace(self, tracer):
        tracer.instant("a", trace_id="t-1")
        tracer.instant("b", trace_id="t-2")
        assert [s.name for s in tracer.spans("t-2")] == ["b"]


class TestRenderSpanTree:
    def test_empty(self):
        assert render_span_tree([]) == "(no spans)"

    def test_tree_structure_and_timing(self, tracer, clock):
        root = tracer.start_span("task:t1", trace_id="t-1", activate=False)
        clock.now = 1.0
        child = tracer.start_span(
            "run@siteA", trace_id="t-1", parent=root.context,
            attributes={"site": "siteA"}, activate=False,
        )
        clock.now = 5.0
        tracer.end_span(child)
        tracer.end_span(root)
        text = tracer.render("t-1")
        assert "task:t1  [t=0.0s +5.0s] ok" in text
        assert "`- run@siteA  [t=1.0s +4.0s] ok site=siteA" in text

    def test_orphans_promoted_to_roots(self):
        spans = [{
            "name": "child", "trace_id": "t", "span_id": "s9",
            "parent_id": "evicted", "start": 3.0, "end": None,
            "status": "open", "attributes": {},
        }]
        text = render_span_tree(spans)
        assert text == "child  [t=3.0s .. open] open"

    def test_children_sorted_by_start(self, tracer, clock):
        root = tracer.start_span("root", trace_id="t-1", activate=False)
        tracer.instant("late", trace_id="t-1", parent=root.context, start=9.0)
        tracer.instant("early", trace_id="t-1", parent=root.context, start=1.0)
        lines = tracer.render("t-1").splitlines()
        assert lines[1].lstrip("|`- ").startswith("early")
        assert lines[2].lstrip("|`- ").startswith("late")
