"""Unit tests for the event-sourced core (journal-first write path)."""

import os
import tempfile

import pytest

from repro.cli import checkpoint_demo_workload
from repro.gridsim.job import reset_id_counters
from repro.observability.eventbus import CONSUMER_NAMES
from repro.observability.journal import EventJournal, EventType, OutOfOrderError
from repro.store.memory import MemoryStore
from repro.store.checkpoint import CheckpointError, Checkpointer, restore_gae


def demo_at(t=300.0):
    gae, job = checkpoint_demo_workload()
    gae.sim.run_until(t)
    return gae, job


class TestJournalFirstWritePath:
    def test_all_consumers_registered_in_order(self):
        gae, _ = demo_at(0.0)
        core = gae.observability.eventcore
        names = list(core.consumers)
        assert tuple(names) == CONSUMER_NAMES
        # Monitoring must fold before monalisa: the derived job-state
        # publish reads the row the SQL upsert just wrote.
        assert names.index("monitoring") < names.index("monalisa")

    def test_every_consumer_rebuilds_bit_identically(self):
        gae, _ = demo_at()
        for report in gae.observability.eventcore.verify_all():
            assert report["covered"], report
            assert report["identical"], report

    def test_cursors_track_journal_head(self):
        gae, _ = demo_at()
        core = gae.observability.eventcore
        head = gae.observability.journal.head_seq
        assert head > 0
        assert core.cursors() == {name: head for name in CONSUMER_NAMES}

    def test_system_consumers_rpc_reports_cursors_and_lag(self):
        gae, _ = demo_at()
        with gae.client("demo", "demo") as client:
            snap = client.call("system.consumers")
        assert snap["enabled"]
        rows = {row["name"]: row for row in snap["consumers"]}
        assert set(rows) == set(CONSUMER_NAMES)
        for row in rows.values():
            assert row["cursor"] == snap["journal_head_seq"]
            assert row["lag"] == 0

    def test_snapshot_is_restore_invariant(self):
        """Process-local diagnostics stay out of the RPC snapshot."""
        gae, _ = demo_at()
        snap = gae.observability.eventcore.snapshot()
        for row in snap["consumers"]:
            assert "events_applied" not in row
            assert "baseline_seq" not in row

    def test_cursor_and_lag_gauges_bound(self):
        gae, _ = demo_at()
        metrics = gae.observability.metrics.snapshot()
        head = float(gae.observability.journal.head_seq)
        for name in CONSUMER_NAMES:
            cursor = metrics[f"gae_consumer_{name}_cursor"]
            lag = metrics[f"gae_consumer_{name}_lag"]
            assert cursor["kind"] == "gauge"
            assert cursor["values"][""] == head
            assert lag["kind"] == "gauge"
            assert lag["values"][""] == 0.0


class TestOutOfOrderRejection:
    def test_load_from_rejects_non_monotonic_seq(self):
        source = EventJournal(clock=lambda: 0.0)
        source.record(EventType.SUBMITTED, "task-a")
        source.record(EventType.STARTED, "task-a")
        store = MemoryStore()
        source.save_to(store)
        # Splice the rows so seq order reverses.
        from repro.store.registry import OBSERVABILITY_JOURNAL

        rows = [store.get(OBSERVABILITY_JOURNAL, k) for k in ("000000000000", "000000000001")]
        rows[0]["seq"], rows[1]["seq"] = rows[1]["seq"], rows[0]["seq"]
        store.put(OBSERVABILITY_JOURNAL, "000000000000", rows[0])
        store.put(OBSERVABILITY_JOURNAL, "000000000001", rows[1])
        target = EventJournal(clock=lambda: 0.0)
        with pytest.raises(OutOfOrderError):
            target.load_from(store)


class TestIncrementalCheckpointGuards:
    def test_incremental_without_prior_full_is_rejected(self):
        gae, _ = demo_at(100.0)
        with tempfile.TemporaryDirectory() as tmp:
            with pytest.raises(CheckpointError):
                Checkpointer(gae).checkpoint_incremental(
                    os.path.join(tmp, "delta.sqlite")
                )

    def test_restore_gae_rejects_incremental_file(self):
        gae, _ = demo_at(100.0)
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "base.sqlite")
            delta = os.path.join(tmp, "delta.sqlite")
            ckpt = Checkpointer(gae)
            ckpt.checkpoint(base)
            gae.sim.run_until(150.0)
            ckpt.checkpoint_incremental(delta)
            reset_id_counters()
            with pytest.raises(CheckpointError):
                restore_gae(delta)
