"""Unit tests for the unified metrics registry."""

import pytest

from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_labelled_series(self):
        c = Counter("gae_x_total")
        c.inc()
        c.inc(2.0, site="a")
        c.inc(site="a")
        assert c.value() == 1.0
        assert c.value(site="a") == 3.0
        assert c.total() == 4.0

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("gae_x_total").inc(-1.0)

    def test_prometheus_lines(self):
        c = Counter("gae_x_total", "things")
        c.inc(site="a", state="run")
        lines = c.prometheus_lines()
        assert "# TYPE gae_x_total counter" in lines
        assert 'gae_x_total{site="a",state="run"} 1' in lines


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("gae_up")
        g.set(1.0, site="a")
        g.inc(site="a")
        g.dec(0.5, site="a")
        assert g.value(site="a") == 1.5

    def test_callable_backed(self):
        backing = {"n": 7}
        g = Gauge("gae_n", fn=lambda: backing["n"])
        assert g.value() == 7.0
        backing["n"] = 9
        assert g.snapshot()["values"][""] == 9.0

    def test_prometheus_lines(self):
        g = Gauge("gae_up")
        g.set(0.0, site="b")
        assert 'gae_up{site="b"} 0' in g.prometheus_lines()


class TestHistogram:
    def test_summary_counts_and_percentiles(self):
        h = Histogram("gae_wait_seconds")
        for v in range(1, 101):
            h.observe(float(v), site="a")
        s = h.summary(site="a")
        assert s["count"] == 100.0
        assert s["sum"] == pytest.approx(5050.0)
        assert s["max"] == 100.0
        assert s["p50"] == pytest.approx(50.0, abs=2.0)
        assert s["p99"] == pytest.approx(99.0, abs=2.0)

    def test_reservoir_is_sliding(self):
        h = Histogram("gae_wait_seconds", reservoir_cap=4)
        for v in (1.0, 1.0, 1.0, 100.0, 100.0, 100.0, 100.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 7.0        # counts are exact
        assert s["p50"] == 100.0        # percentiles see the recent window

    def test_unknown_labelset_is_empty(self):
        assert Histogram("gae_x").summary(site="ghost") == {}

    def test_prometheus_summary_lines(self):
        h = Histogram("gae_wait_seconds")
        h.observe(3.0, site="a")
        text = "\n".join(h.prometheus_lines())
        assert "# TYPE gae_wait_seconds summary" in text
        assert 'gae_wait_seconds{quantile="0.5",site="a"} 3' in text
        assert 'gae_wait_seconds_count{site="a"} 1' in text


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("gae_a_total") is m.counter("gae_a_total")

    def test_kind_mismatch_raises(self):
        m = MetricsRegistry()
        m.counter("gae_a_total")
        with pytest.raises(ValueError):
            m.gauge("gae_a_total")

    def test_snapshot_and_names(self):
        m = MetricsRegistry()
        m.counter("gae_b_total").inc()
        m.gauge("gae_a").set(2.0)
        assert m.names() == ["gae_a", "gae_b_total"]
        snap = m.snapshot()
        assert snap["gae_b_total"]["kind"] == "counter"
        assert snap["gae_a"]["values"][""] == 2.0

    def test_prometheus_lines_cover_all_instruments(self):
        m = MetricsRegistry()
        m.counter("gae_b_total", "b").inc()
        m.histogram("gae_h", "h").observe(1.0)
        text = "\n".join(m.prometheus_lines())
        assert "gae_b_total 1" in text
        assert "gae_h_sum 1" in text

    def test_get_unknown_is_none(self):
        assert MetricsRegistry().get("nope") is None
