"""Unit tests for the append-only lifecycle event journal."""

import pytest

from repro.observability.journal import EventJournal, EventType


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def journal(clock):
    return EventJournal(clock)


class TestRecord:
    def test_stamps_clock_and_sequence(self, journal, clock):
        clock.now = 5.0
        a = journal.record(EventType.SUBMITTED, "t1")
        b = journal.record(EventType.SCHEDULED, "t1", site="siteA")
        assert a.time == b.time == 5.0
        assert b.seq == a.seq + 1
        assert b.site == "siteA"

    def test_accepts_string_event_type(self, journal):
        event = journal.record("paused", "t1")
        assert event.type is EventType.PAUSED

    def test_rejects_unknown_event_type(self, journal):
        with pytest.raises(ValueError):
            journal.record("teleported", "t1")

    def test_extra_kwargs_become_attributes(self, journal):
        event = journal.record(EventType.MOVED, "t1", old="a", new="b")
        assert event.attributes == {"old": "a", "new": "b"}

    def test_listeners_notified(self, journal):
        seen = []
        journal.listeners.append(seen.append)
        journal.record(EventType.KILLED, "t1")
        assert [e.type for e in seen] == [EventType.KILLED]

    def test_to_wire_uses_enum_value(self, journal):
        wire = journal.record(EventType.FLOCK_FORWARDED, "t1", site="a").to_wire()
        assert wire["type"] == "flock-forwarded"
        assert wire["task_id"] == "t1"


class TestQueries:
    def test_filter_by_type_and_task(self, journal):
        journal.record(EventType.SUBMITTED, "t1")
        journal.record(EventType.SUBMITTED, "t2")
        journal.record(EventType.COMPLETED, "t1")
        assert len(journal.events(type=EventType.SUBMITTED)) == 2
        assert len(journal.events(task_id="t1")) == 2
        assert len(journal.events(type=EventType.COMPLETED, task_id="t2")) == 0

    def test_limit_returns_most_recent(self, journal):
        for i in range(5):
            journal.record(EventType.STARTED, f"t{i}")
        assert [e.task_id for e in journal.events(limit=2)] == ["t3", "t4"]

    def test_timeline_sorted_by_time_then_seq(self, journal, clock):
        clock.now = 10.0
        journal.record(EventType.COMPLETED, "t1")
        clock.now = 0.0
        journal.record(EventType.SUBMITTED, "t1", time=0.0)
        journal.record(EventType.STARTED, "t1", time=10.0)
        timeline = journal.timeline("t1")
        assert [e.type for e in timeline] == [
            EventType.SUBMITTED, EventType.COMPLETED, EventType.STARTED,
        ]  # same-time events keep recording (seq) order

    def test_task_ids_in_first_seen_order(self, journal):
        for task in ("b", "a", "b", "c"):
            journal.record(EventType.STARTED, task)
        assert journal.task_ids() == ["b", "a", "c"]

    def test_bounded_capacity(self, clock):
        journal = EventJournal(clock, capacity=3)
        for i in range(5):
            journal.record(EventType.STARTED, f"t{i}")
        assert len(journal) == 3
        assert [e.task_id for e in journal.events()] == ["t2", "t3", "t4"]

    def test_capacity_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            EventJournal(clock, capacity=0)
