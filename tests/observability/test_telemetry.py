"""Unit tests for the windowed telemetry pipeline."""

import json

import pytest

from repro.gridsim.clock import Simulator
from repro.observability.export import validate_export_file
from repro.observability.journal import EventJournal, EventType
from repro.observability.metrics import MetricsRegistry
from repro.observability.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryPipeline,
    WindowSeries,
    derive_window_series,
    reduce_values,
    windows_from_events,
)

SCHEMA = "docs/schemas/telemetry_export.schema.json"


def make_pipeline(window_s=10.0, retain=64, start=0.0):
    sim = Simulator(start=start)
    metrics = MetricsRegistry()
    journal = EventJournal(lambda: sim.now)
    pipe = TelemetryPipeline(
        sim, metrics, journal, window_s=window_s, retain=retain
    ).attach()
    return sim, metrics, journal, pipe


class TestReducers:
    def test_each_reducer(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        assert reduce_values(values, "last") == 5.0
        assert reduce_values(values, "sum") == 14.0
        assert reduce_values(values, "mean") == pytest.approx(2.8)
        assert reduce_values(values, "min") == 1.0
        assert reduce_values(values, "max") == 5.0
        assert reduce_values(values, "delta") == 2.0
        assert reduce_values(values, "p50") == 3.0

    def test_empty_is_none(self):
        assert reduce_values([], "sum") is None

    def test_unknown_reducer_raises(self):
        with pytest.raises(ValueError, match="unknown reducer"):
            reduce_values([1.0], "median")


class TestWindowSeries:
    def test_rejects_out_of_order(self):
        s = WindowSeries("x", "journal", 10.0, 4)
        s.append(10.0, 1.0)
        with pytest.raises(ValueError, match="out-of-order"):
            s.append(5.0, 2.0)

    def test_ring_bounded(self):
        s = WindowSeries("x", "journal", 10.0, 3)
        for i in range(10):
            s.append(10.0 * i, float(i))
        assert len(s) == 3
        assert s.samples() == [(70.0, 7.0), (80.0, 8.0), (90.0, 9.0)]

    def test_window_slice_inclusive(self):
        s = WindowSeries("x", "journal", 10.0, 8)
        for i in range(5):
            s.append(10.0 * i, float(i))
        assert s.window(10.0, 30.0) == [(10.0, 1.0), (20.0, 2.0), (30.0, 3.0)]


class TestJournalWindows:
    def test_count_rate_total_per_window(self):
        sim, _, journal, pipe = make_pipeline(window_s=10.0)
        pipe.start()
        journal.record(EventType.SUBMITTED, "t1", time=1.0)
        journal.record(EventType.SUBMITTED, "t2", time=2.0)
        sim.at(14.0, lambda: journal.record(EventType.COMPLETED, "t1"))
        sim.run_until(30.0)
        assert pipe.windows_closed == 3
        assert pipe.series("journal.submitted.count").samples() == [
            (10.0, 2.0), (20.0, 0.0), (30.0, 0.0),
        ]
        assert pipe.series("journal.submitted.rate").samples()[0] == (10.0, 0.2)
        assert pipe.series("journal.submitted.total").samples() == [
            (10.0, 2.0), (20.0, 2.0), (30.0, 2.0),
        ]
        # completed first appears in window 2: its series starts there.
        assert pipe.series("journal.completed.count").samples() == [
            (20.0, 1.0), (30.0, 0.0),
        ]

    def test_boundary_event_lands_in_next_window(self):
        sim, _, journal, pipe = make_pipeline(window_s=10.0)
        pipe.start()
        journal.record(EventType.SUBMITTED, "t1", time=10.0)  # exactly at t=10
        sim.run_until(20.0)
        assert pipe.series("journal.submitted.count").samples() == [(20.0, 1.0)]

    def test_offline_recompute_matches(self):
        sim, _, journal, pipe = make_pipeline(window_s=5.0)
        pipe.start()
        for t in (0.5, 1.0, 6.0, 6.5, 12.0):
            sim.at(t, lambda: journal.record(EventType.SUBMITTED, "t"))
        sim.run_until(15.0)
        recomputed = windows_from_events(
            journal.events(), pipe.boundaries(), pipe.origin
        )
        assert recomputed["submitted"] == [(5.0, 2), (10.0, 2), (15.0, 1)]
        assert pipe.series("journal.submitted.count").samples() == [
            (t, float(v)) for t, v in recomputed["submitted"]
        ]


class TestMetricWindows:
    def test_counter_total_and_rate(self):
        sim, metrics, _, pipe = make_pipeline(window_s=10.0)
        c = metrics.counter("calls")
        pipe.start()
        sim.at(3.0, lambda: c.inc(4))
        sim.at(13.0, lambda: c.inc(6))
        sim.run_until(20.0)
        assert pipe.series("metric.calls.total").samples() == [
            (0.0, 0.0), (10.0, 4.0), (20.0, 10.0),
        ]
        assert pipe.series("metric.calls.rate").samples() == [
            (10.0, 0.4), (20.0, 0.6),
        ]

    def test_gauge_value_and_delta(self):
        sim, metrics, _, pipe = make_pipeline(window_s=10.0)
        g = metrics.gauge("depth")
        g.set(5.0)
        pipe.start()
        sim.at(4.0, lambda: g.set(8.0))
        sim.run_until(20.0)
        assert pipe.series("metric.depth.value").samples() == [
            (0.0, 5.0), (10.0, 8.0), (20.0, 8.0),
        ]
        assert pipe.series("metric.depth.delta").samples() == [
            (10.0, 3.0), (20.0, 0.0),
        ]

    def test_histogram_percentiles(self):
        sim, metrics, _, pipe = make_pipeline(window_s=10.0)
        h = metrics.histogram("lat")
        pipe.start()
        sim.at(2.0, lambda: [h.observe(v) for v in (1.0, 2.0, 3.0)])
        sim.run_until(10.0)
        assert pipe.series("metric.lat.count").samples()[-1] == (10.0, 3.0)
        assert pipe.series("metric.lat.p50").samples()[-1][1] == 2.0

    def test_streamed_matches_derive_window_series(self):
        sim, metrics, _, pipe = make_pipeline(window_s=10.0)
        c = metrics.counter("calls")
        pipe.start()
        for t, n in ((1.0, 2), (11.0, 5), (21.0, 1)):
            sim.at(t, lambda n=n: c.inc(n))
        sim.run_until(40.0)
        raw = pipe.series("metric.calls.total").samples()
        assert pipe.series("metric.calls.rate").samples() == (
            derive_window_series(raw, "counter", 10.0)
        )


class TestLifecycle:
    def test_start_idempotent(self):
        sim, _, _, pipe = make_pipeline(window_s=10.0)
        pipe.start()
        pipe.start()
        sim.run_until(10.0)
        assert pipe.windows_closed == 1

    def test_restart_keeps_boundary_alignment(self):
        sim, _, _, pipe = make_pipeline(window_s=10.0)
        pipe.start()
        sim.run_until(10.0)
        pipe.stop()
        sim.run_until(14.0)
        pipe.start()  # re-arms for the t=20 boundary, not t=24
        sim.run_until(30.0)
        assert pipe.boundaries() == [10.0, 20.0, 30.0]

    def test_value_reducer_window(self):
        sim, _, journal, pipe = make_pipeline(window_s=10.0)
        pipe.start()
        for t in (1.0, 11.0, 12.0, 21.0):
            sim.at(t, lambda: journal.record(EventType.SUBMITTED, "t"))
        sim.run_until(30.0)
        assert pipe.value("journal.submitted.count", "sum", 2) == 3.0
        assert pipe.value("journal.submitted.count", "max", None) == 2.0
        assert pipe.value("journal.nope.count", "sum", 1) is None


class TestExport:
    def test_jsonl_schema_valid(self, tmp_path):
        sim, metrics, journal, pipe = make_pipeline(window_s=10.0)
        metrics.counter("calls").inc(3)
        pipe.start()
        journal.record(EventType.SUBMITTED, "t1", time=1.0)
        sim.run_until(20.0)
        out = tmp_path / "telemetry.jsonl"
        rows = pipe.export_jsonl(out)
        lines = out.read_text().splitlines()
        assert rows == len(lines)
        meta = json.loads(lines[0])
        assert meta["schema"] == TELEMETRY_SCHEMA_VERSION
        validate_export_file(out, SCHEMA)


class TestStateRoundTrip:
    def drive(self, pipe, sim, journal, until):
        t = 1.0
        while t < until:
            if t > sim.now:
                sim.run_until(t)
            journal.record(EventType.SUBMITTED, "t", time=t)
            t += 7.0
        sim.run_until(until)

    def test_resume_is_gap_free(self):
        # Uninterrupted run ...
        sim_a, _, journal_a, pipe_a = make_pipeline(window_s=10.0)
        pipe_a.start()
        self.drive(pipe_a, sim_a, journal_a, 100.0)

        # ... versus export at t=35 and resume on a fresh pipeline.
        sim_b, _, journal_b, pipe_b = make_pipeline(window_s=10.0)
        pipe_b.start()
        self.drive(pipe_b, sim_b, journal_b, 35.0)
        state = pipe_b.export_state()

        sim_c, metrics_c, journal_c, pipe_c = make_pipeline(
            window_s=10.0, start=35.0
        )
        pipe_c.import_state(state)
        pipe_c.start()
        t = 36.0  # continue the same cadence (1, 8, 15, ... 29, 36, ...)
        while t < 100.0:
            if t > sim_c.now:
                sim_c.run_until(t)
            journal_c.record(EventType.SUBMITTED, "t", time=t)
            t += 7.0
        sim_c.run_until(100.0)

        assert pipe_c.windows_closed == pipe_a.windows_closed
        assert pipe_c.boundaries() == pipe_a.boundaries()
        for name in pipe_a.names():
            if not name.startswith("journal."):
                continue
            assert pipe_c.series(name).samples() == (
                pipe_a.series(name).samples()
            ), name


class TestCheckpointResume:
    def test_restored_gae_resumes_windows_without_gaps(self, tmp_path):
        from repro.cli import checkpoint_demo_workload
        from repro.store import restore_gae
        from repro.store.checkpoint import Checkpointer

        path = tmp_path / "ckpt.sqlite"
        gae, _ = checkpoint_demo_workload(seed=11, tasks=6)
        Checkpointer(gae).checkpoint_at(205.0, path)
        gae.sim.run_until(205.0)
        restored = restore_gae(path)

        gae.sim.run_until(500.0)
        restored.sim.run_until(500.0)
        a, b = gae.observability.telemetry, restored.observability.telemetry
        assert b.windows_closed == a.windows_closed
        assert b.boundaries() == a.boundaries()
        assert b.names() == a.names()

        def fn_backed(series_name):
            # fn-backed gauges observe live objects (probe cache,
            # monitoring DB); their state is not checkpointed, so their
            # post-restore windows legitimately diverge.
            if not series_name.startswith("metric."):
                return False
            inst = gae.observability.metrics.get(
                series_name.split(".", 1)[1].rsplit(".", 1)[0]
            )
            return getattr(inst, "_fn", None) is not None

        mismatches = [
            name for name in a.names()
            if not fn_backed(name)
            and b.series(name).samples() != a.series(name).samples()
        ]
        assert mismatches == []
        gae.stop()
        restored.stop()
