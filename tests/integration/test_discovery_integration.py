"""Integration tests: P2P discovery across multiple GAE hosts.

§3: "Clarens enables users and services to dynamically discover other
services and resources within the GAE through a peer-to-peer based lookup
service."  Here three Clarens hosts (one per institute) each host a subset
of the GAE services; a client at one host locates and calls a service
hosted elsewhere.
"""

import pytest

from repro.clarens.client import ClarensClient
from repro.clarens.discovery import DiscoveryNetwork
from repro.clarens.server import ClarensHost
from repro.clarens.transport import LoopbackTransport


class Estimator:
    def estimate(self, hours):
        """Trivial estimate for the discovery test."""
        return hours * 3600.0


class Monitor:
    def status(self, task_id):
        return "running"


@pytest.fixture
def federation():
    hosts = {
        "caltech": ClarensHost("caltech"),
        "cern": ClarensHost("cern"),
        "nust": ClarensHost("nust"),
    }
    for host in hosts.values():
        host.users.add_user("alice", "pw", groups=("gae-users",))
        host.acl.allow("*", groups=("gae-users",))
    hosts["caltech"].register("estimator", Estimator())
    hosts["cern"].register("jobmon", Monitor())

    net = DiscoveryNetwork()
    for host in hosts.values():
        net.add_host(host)
    net.connect("caltech", "cern")
    net.connect("cern", "nust")
    return hosts, net


class TestFederatedLookup:
    def test_find_service_across_peers(self, federation):
        hosts, net = federation
        hit = net.find_one("estimator", start="nust", ttl=3)
        assert hit.host_name == "caltech"
        assert hit.hops == 2

    def test_discovered_service_callable(self, federation):
        hosts, net = federation
        hit = net.find_one("jobmon", start="caltech")
        client = ClarensClient(LoopbackTransport(hosts[hit.host_name]))
        client.login("alice", "pw")
        assert client.service("jobmon").status("t1") == "running"

    def test_ttl_1_cannot_see_two_hops(self, federation):
        hosts, net = federation
        assert net.find("estimator", start="nust", ttl=1) == []

    def test_tokens_do_not_leak_across_hosts(self, federation):
        """A session issued by one host is worthless at another — each host
        signs with its own secret."""
        hosts, net = federation
        caltech = ClarensClient(LoopbackTransport(hosts["caltech"]))
        token = caltech.login("alice", "pw")
        from repro.clarens.errors import AuthenticationError

        cern = ClarensClient(LoopbackTransport(hosts["cern"]))
        cern.token = token
        with pytest.raises(AuthenticationError):
            cern.service("jobmon").status("t1")
