"""Integration tests: gang tasks, session expiry, live web UI, stage-in."""

import json
import urllib.request

import pytest

from repro.clarens.errors import AuthenticationError
from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState, Task, TaskSpec
from repro.webui import GAEWebUI


class TestGangTasksThroughGAE:
    def test_multi_node_job_completes_and_is_monitored(self):
        grid = (
            GridBuilder(seed=61)
            .site("big", nodes=4, cpus_per_node=2, background_load=0.0)
            .site("small", nodes=1, background_load=0.0)
            .probe_noise(0.0)
            .build()
        )
        gae = build_gae(grid)
        gae.add_user("u", "pw")
        gang = Task(
            spec=TaskSpec(owner="u", nodes=6, requested_cpu_hours=0.1),
            work_seconds=360.0,
        )
        plan = gae.scheduler.submit_job(Job(tasks=[gang], owner="u"))
        # Only "big" can host 6 slots; the scheduler must bind it there.
        assert plan.site_for(gang.task_id) == "big"
        gae.grid.run_until(1000.0)
        assert gang.state is JobState.COMPLETED
        info = gae.client("u", "pw").service("jobmon").job_info(gang.task_id)
        assert info["status"] == "completed"

    def test_scheduler_skips_sites_too_small_for_gang(self):
        grid = (
            GridBuilder(seed=62)
            .site("tiny", nodes=1, background_load=0.0)
            .site("big", nodes=8, background_load=2.0)  # loaded but large
            .probe_noise(0.0)
            .build()
        )
        gae = build_gae(grid)
        gang = Task(spec=TaskSpec(owner="u", nodes=4), work_seconds=100.0)
        # "tiny" is unloaded but can never host a 4-slot gang; the scheduler
        # must rank it out and bind the loaded-but-large site.
        plan = gae.scheduler.submit_job(Job(tasks=[gang], owner="u"))
        assert plan.site_for(gang.task_id) == "big"
        gae.grid.run_until(5000.0)
        assert gang.state is JobState.COMPLETED


class TestSessionExpiryUnderSimClock:
    def test_token_expires_as_simulation_advances(self):
        grid = GridBuilder(seed=63).site("s").build()
        gae = build_gae(grid)
        gae.host.auth.session_lifetime_s = 100.0
        gae.add_user("u", "pw")
        client = gae.client("u", "pw")
        assert client.service("estimator").history_size() == 0
        gae.grid.run_until(200.0)  # simulated time passes the lifetime
        with pytest.raises(AuthenticationError):
            client.service("estimator").history_size()
        # Re-login issues a fresh token valid from the new sim time.
        client.login("u", "pw")
        assert client.service("estimator").history_size() == 0


class TestWebUIDuringSteering:
    def test_pages_reflect_a_live_move(self):
        from repro.core.estimators.history import HistoryRepository
        from repro.workloads.generators import (
            make_prime_count_task,
            prime_job_history_records,
        )

        grid = (
            GridBuilder(seed=64)
            .site("siteA", background_load=1.5)
            .site("siteB", background_load=0.0)
            .probe_noise(0.0)
            .build()
        )
        policy = SteeringPolicy(poll_interval_s=20.0, min_elapsed_wall_s=40.0,
                                slow_rate_threshold=0.8, min_improvement_factor=1.2)
        history = HistoryRepository(prime_job_history_records(n=8, sigma=0.01))
        gae = build_gae(grid, policy=policy, history=history)
        gae.add_user("u", "pw")
        task = make_prime_count_task(owner="u")
        original = gae.scheduler.select_site
        gae.scheduler.select_site = lambda t, exclude=(): "siteA"
        gae.scheduler.submit_job(Job(tasks=[task], owner="u"))
        gae.scheduler.select_site = original
        gae.start()
        gae.grid.run_until(600.0)
        gae.stop()

        with GAEWebUI(gae) as ui:
            with urllib.request.urlopen(ui.url + "jobs", timeout=10) as resp:
                jobs_page = resp.read().decode()
            assert task.task_id in jobs_page
            assert "completed" in jobs_page
            with urllib.request.urlopen(
                ui.url + f"state/{task.task_id}", timeout=10
            ) as resp:
                state = json.loads(resp.read().decode())
            assert state["site"] == "siteB"  # it was moved, then completed


class TestStageInThroughGAE:
    def test_data_heavy_dag_respects_transfer_times(self):
        grid = (
            GridBuilder(seed=65)
            .site("data", background_load=0.0)
            .site("compute", background_load=0.0)
            .link("data", "compute", capacity_mbps=80.0, latency_s=0.0)
            .file("dataset.db", size_mb=100.0, at="data")  # 10 s transfer
            .probe_noise(0.0)
            .build()
        )
        gae = build_gae(grid)
        gae.add_user("u", "pw")
        t = Task(
            spec=TaskSpec(owner="u", input_files=("dataset.db",),
                          requested_cpu_hours=0.01),
            work_seconds=36.0,
        )
        # Force the compute site so the transfer must actually happen.
        original = gae.scheduler.select_site
        gae.scheduler.select_site = lambda task, exclude=(): "compute"
        gae.scheduler.submit_job(Job(tasks=[t], owner="u"))
        gae.scheduler.select_site = original
        gae.grid.run_until(500.0)
        ad = gae.grid.sites["compute"].pool.ad(t.task_id)
        assert ad.start_time == pytest.approx(10.0)
        assert ad.end_time == pytest.approx(46.0)
        # The monitoring record reflects the post-staging submission.
        info = gae.client("u", "pw").service("jobmon").job_info(t.task_id)
        assert info["submission_time"] == pytest.approx(10.0)


class TestGangSteering:
    def test_slow_gang_task_is_moved_whole(self):
        """A multi-slot task crawls on a loaded site; the steering loop
        moves the whole gang to a site with enough free slots."""
        from repro.core.estimators.history import HistoryRepository, TaskRecord
        from repro.core.steering.optimizer import SteeringPolicy

        grid = (
            GridBuilder(seed=66)
            .site("loaded", nodes=4, background_load=1.5)
            .site("free", nodes=4, background_load=0.0)
            .probe_noise(0.0)
            .build()
        )
        spec = TaskSpec(owner="u", nodes=3, requested_cpu_hours=600.0 / 3600.0)
        history = HistoryRepository(
            TaskRecord.from_spec(spec, runtime_s=600.0) for _ in range(6)
        )
        policy = SteeringPolicy(poll_interval_s=20.0, min_elapsed_wall_s=40.0,
                                slow_rate_threshold=0.8, min_improvement_factor=1.2)
        gae = build_gae(grid, policy=policy, history=history)
        gang = Task(spec=spec, work_seconds=600.0)
        original = gae.scheduler.select_site
        gae.scheduler.select_site = lambda t, exclude=(): "loaded"
        gae.scheduler.submit_job(Job(tasks=[gang], owner="u"))
        gae.scheduler.select_site = original
        gae.start()
        gae.grid.run_until(3000.0)
        gae.stop()
        assert gang.state is JobState.COMPLETED
        free_pool = gae.grid.sites["free"].pool
        assert free_pool.has_task(gang.task_id)
        # The whole gang ran at the new site: the archived ad shows 3 nodes'
        # worth of slots were allocated (verified via completion and slots).
        moves = [a for a in gae.steering.actions if a.result and a.result.ok]
        assert len(moves) == 1
