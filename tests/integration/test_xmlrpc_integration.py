"""Integration tests: the GAE services served over real XML-RPC sockets.

The simulator's clock only advances when the test drives it, so the remote
clients observe a frozen-but-consistent world — exactly what the Figure 6
benchmark relies on.
"""

import threading

import pytest

from repro.clarens.client import ClarensClient
from repro.clarens.server import XmlRpcServerHandle
from repro.clarens.transport import SocketTransport
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, Task, TaskSpec
from repro.workloads.downey import DowneyWorkloadGenerator


@pytest.fixture
def served_gae():
    grid = (
        GridBuilder(seed=23)
        .site("siteA", background_load=0.5)
        .site("siteB", background_load=0.0)
        .probe_noise(0.0)
        .build()
    )
    history, _ = DowneyWorkloadGenerator(seed=1995).history_and_tests(100, 5)
    gae = build_gae(grid, history=history)
    gae.add_user("alice", "pw")
    tasks = [Task(spec=TaskSpec(owner="alice"), work_seconds=500.0) for _ in range(3)]
    for t in tasks:
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
    gae.grid.run_until(60.0)
    with XmlRpcServerHandle(gae.host) as handle:
        yield gae, handle, tasks


class TestRemoteAccess:
    def test_monitoring_over_the_wire(self, served_gae):
        gae, handle, tasks = served_gae
        client = ClarensClient(SocketTransport(handle.url))
        client.login("alice", "pw")
        info = client.service("jobmon").job_info(tasks[0].task_id)
        assert info["status"] in ("running", "queued")
        assert info["owner"] == "alice"

    def test_steering_over_the_wire(self, served_gae):
        gae, handle, tasks = served_gae
        client = ClarensClient(SocketTransport(handle.url))
        client.login("alice", "pw")
        running = [t for t in tasks if t.state.value == "running"]
        result = client.service("steering").pause(running[0].task_id)
        assert result["ok"]
        client.service("steering").resume(running[0].task_id)

    def test_estimator_over_the_wire(self, served_gae):
        gae, handle, tasks = served_gae
        client = ClarensClient(SocketTransport(handle.url))
        client.login("alice", "pw")
        assert client.service("estimator").history_size() == 100

    def test_accounting_over_the_wire(self, served_gae):
        gae, handle, _ = served_gae
        client = ClarensClient(SocketTransport(handle.url))
        client.login("alice", "pw")
        out = client.service("accounting").cheapest_site({"siteA": 100.0, "siteB": 100.0})
        assert out["site"] in ("siteA", "siteB")

    def test_parallel_clients_all_get_consistent_answers(self, served_gae):
        gae, handle, tasks = served_gae
        task_id = tasks[0].task_id
        answers, errors = [], []

        def worker():
            try:
                client = ClarensClient(SocketTransport(handle.url))
                client.login("alice", "pw")
                for _ in range(3):
                    answers.append(client.service("jobmon").job_status(task_id))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(10)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert len(answers) == 30
        assert len(set(answers)) == 1  # frozen sim clock -> one status


class TestMulticallOverTheWire:
    """Batch fault isolation and trace sharing over the real transport.

    Until this PR multicall was only exercised in-process; these tests pin
    the wire behaviour: one failing sub-call must not poison the batch,
    and every sub-call must be traceable under the batch's trace id.
    """

    def test_fault_isolation_in_a_real_batch(self, served_gae):
        gae, handle, tasks = served_gae
        with ClarensClient(SocketTransport(handle.url)) as client:
            client.login("alice", "pw")
            detailed = client.batch_detailed([
                ("jobmon.job_status", tasks[0].task_id),
                ("ghost.method",),
                ("system.host_name",),
            ])
        assert [r.ok for r in detailed] == [True, False, True]
        assert detailed[0].result in ("running", "queued")
        assert detailed[1].code == 404
        assert detailed[2].result == "jclarens"

    def test_batch_raises_first_typed_fault(self, served_gae):
        from repro.clarens.errors import ServiceNotFound

        gae, handle, _ = served_gae
        with ClarensClient(SocketTransport(handle.url)) as client:
            client.login("alice", "pw")
            with pytest.raises(ServiceNotFound):
                client.batch([("system.ping",), ("ghost.method",)])

    def test_client_trace_id_spans_every_subcall(self, served_gae):
        gae, handle, tasks = served_gae
        with ClarensClient(SocketTransport(handle.url)) as client:
            client.login("alice", "pw")
            trace = client.new_trace()
            detailed = client.batch_detailed([
                ("jobmon.job_status", tasks[0].task_id),
                ("ghost.method",),
                ("system.ping",),
            ])
            records = client.call("system.recent_calls", 200, trace)
        # Every sub-call result carries the client-issued trace id ...
        assert {r.trace_id for r in detailed} == {trace}
        # ... and every sub-call (even the failed one) is in the ring,
        # alongside the enclosing system.multicall itself.
        methods = [r["method"] for r in records]
        assert "system.multicall" in methods
        assert "jobmon.job_status" in methods
        assert "ghost.method" in methods
        assert "system.ping" in methods
        outcomes = {r["method"]: r["outcome"] for r in records}
        assert outcomes["ghost.method"] == "fault"
        assert outcomes["system.ping"] == "ok"
        assert all(r["transport"] == "xmlrpc" for r in records)
