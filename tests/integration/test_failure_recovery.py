"""Integration tests: failure injection end-to-end through the GAE."""

import pytest

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState, Task, TaskSpec
from repro.workloads.generators import physics_analysis_job


def make_gae(ping_interval=30.0):
    grid = (
        GridBuilder(seed=31)
        .site("siteA", nodes=2, background_load=0.0)
        .site("siteB", nodes=2, background_load=0.0)
        .probe_noise(0.0)
        .build()
    )
    policy = SteeringPolicy(poll_interval_s=ping_interval, min_elapsed_wall_s=1e9)
    gae = build_gae(grid, policy=policy)
    gae.add_user("alice", "pw")
    return gae


def pin_site(gae, site):
    gae.scheduler.select_site = lambda t, exclude=(): site


class TestServiceCrashRecovery:
    def test_whole_site_crash_recovers_via_sweep(self):
        gae = make_gae(ping_interval=30.0)
        original = gae.scheduler.select_site
        pin_site(gae, "siteA")
        tasks = [Task(spec=TaskSpec(owner="alice"), work_seconds=300.0) for _ in range(2)]
        for t in tasks:
            gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        gae.scheduler.select_site = original
        gae.start()
        gae.grid.run_until(50.0)
        gae.grid.execution_services["siteA"].fail()
        gae.grid.run_until(1000.0)
        gae.stop()
        for t in tasks:
            assert t.state is JobState.COMPLETED
            assert gae.grid.execution_services["siteB"].pool.has_task(t.task_id)

    def test_notifications_tell_the_whole_story(self):
        gae = make_gae(ping_interval=30.0)
        original = gae.scheduler.select_site
        pin_site(gae, "siteA")
        t = Task(spec=TaskSpec(owner="alice"), work_seconds=300.0)
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        gae.scheduler.select_site = original
        gae.start()
        gae.grid.run_until(50.0)
        gae.grid.execution_services["siteA"].fail()
        gae.grid.run_until(1000.0)
        gae.stop()
        kinds = [n.kind for n in gae.steering.backup_recovery.notifications]
        assert "failure" in kinds           # the crash failed the task
        assert "service-failure" in kinds   # sweep saw the service down
        assert "resubmission" in kinds      # and resubmitted
        assert "completion" in kinds        # finally completed at siteB

    def test_monitoring_db_preserves_failed_attempt(self):
        gae = make_gae()
        original = gae.scheduler.select_site
        pin_site(gae, "siteA")
        t = Task(spec=TaskSpec(owner="alice"), work_seconds=300.0)
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        gae.scheduler.select_site = original
        gae.grid.run_until(50.0)
        gae.grid.execution_services["siteA"].fail()
        # Terminal failure snapshot was pushed to the DB at crash time.
        stored = gae.monitoring.db_manager.get(t.task_id)
        assert stored.status == "failed"
        assert stored.site == "siteA"


class TestDagFailureMidFlight:
    def test_failed_analysis_stage_reruns_and_dag_finishes(self):
        gae = make_gae()
        job = physics_analysis_job(
            "alice", n_analysis_tasks=2,
            stage_seconds=20.0, analysis_seconds=200.0, merge_seconds=20.0,
        )
        gae.scheduler.submit_job(job)
        gae.start()
        gae.grid.run_until(60.0)  # stage done, analyses running
        analysis = job.tasks[1]
        assert analysis.state is JobState.RUNNING
        site = gae.scheduler.site_of_task(analysis.task_id)
        gae.grid.execution_services[site].pool.fail_task(analysis.task_id)
        gae.grid.run_until(3000.0)
        gae.stop()
        assert job.state is JobState.COMPLETED
        resubs = [n for n in gae.steering.backup_recovery.notifications
                  if n.kind == "resubmission" and n.task_id == analysis.task_id]
        assert len(resubs) == 1


class TestQuotaIntegration:
    def test_completed_work_charged(self):
        gae = make_gae()
        gae.accounting.quotas.set_quota("alice", 100.0)
        t = Task(spec=TaskSpec(owner="alice"), work_seconds=3600.0)
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        gae.grid.run_until(4000.0)
        charged = gae.accounting.charge_completed_task(
            "alice", gae.scheduler.site_of_task(t.task_id), cpu_seconds=3600.0
        )
        assert charged == pytest.approx(1.0)  # 1 CPU-hour at rate 1.0
        assert gae.accounting.quota_available("alice") == pytest.approx(99.0)
