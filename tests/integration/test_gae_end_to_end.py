"""Integration tests: the fully wired GAE, driven through the Clarens API."""

import pytest

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState, Task, TaskSpec
from repro.core.estimators.history import HistoryRepository
from repro.workloads.downey import DowneyWorkloadGenerator
from repro.workloads.generators import physics_analysis_job


def make_gae(**kwargs):
    grid = (
        GridBuilder(seed=17)
        .site("caltech", nodes=2, background_load=0.2)
        .site("cern", nodes=4, background_load=0.5)
        .site("nust", nodes=1, background_load=0.0)
        .link("caltech", "cern", capacity_mbps=622.0, latency_s=0.08)
        .link("cern", "nust", capacity_mbps=45.0, latency_s=0.12)
        .file("dataset.db", size_mb=200.0, at="cern")
        .probe_noise(0.0)
        .build()
    )
    history, _ = DowneyWorkloadGenerator(seed=1995).history_and_tests(100, 20)
    gae = build_gae(grid, history=history, **kwargs)
    gae.add_user("alice", "pw")
    return gae


class TestWiring:
    def test_all_services_hosted(self):
        gae = make_gae()
        assert gae.host.registry.names() == [
            "accounting", "estimator", "jobmon", "monalisa", "steering", "system",
        ]

    def test_scheduler_load_oracle_is_monalisa(self):
        gae = make_gae()
        gae.load_publisher.publish_now()
        assert gae.scheduler.load_oracle("nust") == pytest.approx(0.0)
        assert gae.scheduler.load_oracle("cern") == pytest.approx(0.5)

    def test_every_site_has_estimator_installed(self):
        gae = make_gae()
        for es in gae.grid.execution_services.values():
            assert es.has_estimator


class TestFullJobLifecycle:
    def test_dag_job_completes_and_is_fully_monitored(self):
        gae = make_gae()
        job = physics_analysis_job(
            "alice", n_analysis_tasks=3, dataset_files=("dataset.db",),
            stage_seconds=60.0, analysis_seconds=300.0, merge_seconds=60.0,
        )
        gae.scheduler.submit_job(job)
        gae.grid.run_until(5000.0)
        assert job.state is JobState.COMPLETED

        client = gae.client("alice", "pw")
        records = client.service("jobmon").job_tasks(job.job_id)
        assert len(records) == 5
        assert all(r["status"] == "completed" for r in records)
        # Dependency order held: stage finished before any analysis started.
        by_exe = {}
        for r in records:
            by_exe.setdefault(r["task_id"], r)
        stage = next(r for r in records if r["task_id"] == job.tasks[0].task_id)
        for analysis in job.tasks[1:-1]:
            rec = next(r for r in records if r["task_id"] == analysis.task_id)
            assert rec["execution_time"] >= stage["completion_time"]

    def test_history_grows_from_completions(self):
        gae = make_gae()
        before = len(gae.history)
        t = Task(spec=TaskSpec(owner="alice"), work_seconds=30.0)
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        gae.grid.run_until(100.0)
        assert len(gae.history) == before + 1

    def test_at_submission_estimates_recorded(self):
        gae = make_gae()
        t = Task(spec=TaskSpec(owner="alice"), work_seconds=30.0)
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        assert gae.estimators.estimate_db.has(t.task_id)


class TestClientJourney:
    def test_login_query_steer_logout(self):
        policy = SteeringPolicy(poll_interval_s=15.0, min_elapsed_wall_s=30.0)
        gae = make_gae(policy=policy)
        t = Task(spec=TaskSpec(owner="alice", requested_cpu_hours=0.2),
                 work_seconds=600.0)
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        gae.grid.run_until(60.0)

        client = gae.client("alice", "pw")
        jobmon = client.service("jobmon")
        status = jobmon.job_status(t.task_id)
        assert status == "running"

        steering = client.service("steering")
        progress = steering.task_progress(t.task_id)
        assert 0.0 < progress["progress"] < 1.0

        est = client.service("estimator")
        assert est.history_size() > 0

        client.logout()
        from repro.clarens.errors import AuthenticationError

        with pytest.raises(AuthenticationError):
            jobmon.job_status(t.task_id)

    def test_anonymous_blocked_from_everything_but_system(self):
        gae = make_gae()
        anon = gae.client()
        assert anon.ping()
        from repro.clarens.errors import AuthenticationError

        with pytest.raises(AuthenticationError):
            anon.service("jobmon").running_tasks()


class TestMultiJobContention:
    def test_queue_and_priorities_respected_across_jobs(self):
        gae = make_gae()
        # Saturate the single-slot site "nust" by routing all jobs there.
        original = gae.scheduler.select_site
        gae.scheduler.select_site = lambda t, exclude=(): "nust"
        low = Task(spec=TaskSpec(owner="alice", priority=0), work_seconds=100.0)
        mid = Task(spec=TaskSpec(owner="alice", priority=5), work_seconds=100.0)
        high = Task(spec=TaskSpec(owner="alice", priority=9), work_seconds=100.0)
        for t in (low, mid, high):
            gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        gae.scheduler.select_site = original
        gae.grid.run_until(1000.0)
        pool = gae.grid.sites["nust"].pool
        starts = {t.task_id: pool.archive + [pool.ad(t.task_id)] for t in (low, mid, high)}
        # low started first (it arrived to an empty pool), then high, then mid.
        assert pool.ad(high.task_id).start_time < pool.ad(mid.task_id).start_time
