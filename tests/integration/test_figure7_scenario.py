"""Integration test: the full Figure 7 steering scenario.

The paper's experiment: a 283 s (free-CPU) prime-counting job runs on
site A under significant CPU load; the steering service monitors it via the
job monitoring service, detects the slow execution rate, and reschedules it
to a free site B, where it completes far sooner than it would have at A —
369 s total in the paper, versus the 283 s free-CPU bound.
"""

import pytest

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState
from repro.core.estimators.history import HistoryRepository
from repro.workloads.generators import (
    PRIME_JOB_FREE_CPU_SECONDS,
    make_prime_count_task,
    prime_job_history_records,
)

SITE_A_LOAD = 1.5  # "significant CPU load" -> progress rate 0.4


def build_figure7_gae(poll_interval=20.0, checkpointable=False, flocking=False):
    builder = (
        GridBuilder(seed=2005)
        .site("siteA", background_load=SITE_A_LOAD)
        .site("siteB", background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .probe_noise(0.0)
    )
    if flocking:
        builder = builder.flock("siteA", "siteB")
    grid = builder.build()
    history = HistoryRepository(prime_job_history_records(n=10, sigma=0.01))
    policy = SteeringPolicy(
        poll_interval_s=poll_interval,
        min_elapsed_wall_s=40.0,
        slow_rate_threshold=0.8,
        min_improvement_factor=1.2,
    )
    gae = build_gae(grid, policy=policy, history=history)
    gae.add_user("physicist", "pw")
    return gae


def run_scenario(gae, checkpointable=False):
    task = make_prime_count_task(owner="physicist", checkpointable=checkpointable)
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    gae.scheduler.submit_job(Job(tasks=[task], owner="physicist"))
    gae.scheduler.select_site = original
    gae.start()
    gae.grid.run_until(3000.0)
    gae.stop()
    return task


class TestFigure7:
    def test_job_is_moved_and_completes(self):
        gae = build_figure7_gae()
        task = run_scenario(gae)
        assert task.state is JobState.COMPLETED
        moves = [a for a in gae.steering.actions if a.result and a.result.ok]
        assert len(moves) == 1
        assert moves[0].decision.current_site == "siteA"
        assert moves[0].decision.target_site == "siteB"

    def test_steered_completion_beats_staying(self):
        gae = build_figure7_gae()
        task = run_scenario(gae)
        end = gae.grid.execution_services["siteB"].pool.ad(task.task_id).end_time
        stay_put_time = PRIME_JOB_FREE_CPU_SECONDS * (1 + SITE_A_LOAD)  # 707.5 s
        assert end < stay_put_time
        # ... but cannot beat the free-CPU bound (paper's dashed line).
        assert end > PRIME_JOB_FREE_CPU_SECONDS

    def test_completion_near_paper_shape(self):
        """Paper: moved job finished at ~369 s with a ~283 s bound.  Our
        detection fires at the first poll past the grace period, so the
        completed time is 283 + (decision time) + (restart losses)."""
        gae = build_figure7_gae()
        task = run_scenario(gae)
        end = gae.grid.execution_services["siteB"].pool.ad(task.task_id).end_time
        assert PRIME_JOB_FREE_CPU_SECONDS < end < 450.0

    def test_quicker_decision_quicker_completion(self):
        """Paper: 'The quicker the decision is taken, the better the chance
        that it will complete quicker.'"""
        ends = {}
        for poll in (10.0, 120.0):
            gae = build_figure7_gae(poll_interval=poll)
            task = run_scenario(gae)
            ends[poll] = gae.grid.execution_services["siteB"].pool.ad(task.task_id).end_time
        assert ends[10.0] < ends[120.0]

    def test_checkpointing_completes_even_quicker(self):
        """Paper: 'The job can be completed even quicker than 369 seconds if
        it is checkpoint-able and flocking is enabled.'"""
        plain_gae = build_figure7_gae()
        plain = run_scenario(plain_gae, checkpointable=False)
        plain_end = plain_gae.grid.execution_services["siteB"].pool.ad(
            plain.task_id
        ).end_time

        ckpt_gae = build_figure7_gae(checkpointable=True)
        ckpt = run_scenario(ckpt_gae, checkpointable=True)
        ckpt_end = ckpt_gae.grid.execution_services["siteB"].pool.ad(
            ckpt.task_id
        ).end_time
        assert ckpt_end < plain_end

    def test_progress_curves_have_paper_shape(self):
        """Site A's curve rises slowly; after the move the steered job's
        progress rises at the free-CPU rate and reaches 100 % first."""
        gae = build_figure7_gae()
        task = make_prime_count_task(owner="physicist")
        original = gae.scheduler.select_site
        gae.scheduler.select_site = lambda t, exclude=(): "siteA"
        gae.scheduler.submit_job(Job(tasks=[task], owner="physicist"))
        gae.scheduler.select_site = original
        gae.start()

        samples = []
        es_a, es_b = gae.grid.execution_services["siteA"], gae.grid.execution_services["siteB"]
        for t in range(0, 800, 20):
            gae.grid.run_until(float(t))
            site = "siteB" if es_b.pool.has_task(task.task_id) else "siteA"
            es = es_b if site == "siteB" else es_a
            try:
                progress = es.pool.status(task.task_id).progress
            except Exception:
                progress = 0.0
            samples.append((float(t), site, progress))
        gae.stop()

        a_samples = [(t, p) for t, s, p in samples if s == "siteA"]
        b_samples = [(t, p) for t, s, p in samples if s == "siteB"]
        assert a_samples and b_samples
        # Slow rise at A: strictly below free-CPU reference line t/283.
        for t, p in a_samples[1:]:
            assert p < t / PRIME_JOB_FREE_CPU_SECONDS + 1e-9
        # Completed at B.
        assert b_samples[-1][1] == pytest.approx(1.0)
