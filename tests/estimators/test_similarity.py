"""Unit tests for similarity templates and the greedy search."""

import pytest

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.core.estimators.similarity import (
    ALL_TEMPLATE_ATTRIBUTES,
    DEFAULT_LADDER,
    GreedyTemplateSearch,
    most_specific_match,
)


def rec(owner="u", executable="exe", queue="q", nodes=1, runtime=100.0, **kw):
    return TaskRecord(
        owner=owner, account=kw.get("account", "a"), partition=kw.get("partition", "p"),
        queue=queue, nodes=nodes, task_type=kw.get("task_type", "batch"),
        executable=executable, requested_cpu_hours=kw.get("requested_cpu_hours", 1.0),
        runtime_s=runtime, status=kw.get("status", "successful"),
    )


def target(owner="u", executable="exe", queue="q", nodes=1):
    return {
        "owner": owner, "account": "a", "partition": "p", "queue": queue,
        "nodes": nodes, "task_type": "batch", "executable": executable,
    }


class TestLadder:
    def test_ladder_most_specific_first(self):
        assert DEFAULT_LADDER[0] == ALL_TEMPLATE_ATTRIBUTES
        assert DEFAULT_LADDER[-1] == ()

    def test_ladder_prefixes(self):
        for i, template in enumerate(DEFAULT_LADDER[:-1]):
            assert template == ALL_TEMPLATE_ATTRIBUTES[: len(ALL_TEMPLATE_ATTRIBUTES) - i]


class TestMostSpecificMatch:
    def test_full_match_when_enough_samples(self):
        h = HistoryRepository([rec() for _ in range(5)])
        template, matches = most_specific_match(h, target())
        assert template == ALL_TEMPLATE_ATTRIBUTES
        assert len(matches) == 5

    def test_falls_back_when_specific_rung_thin(self):
        # Only 2 exact matches but 5 matching the executable alone.
        h = HistoryRepository(
            [rec(queue="q") for _ in range(2)] + [rec(queue="other") for _ in range(3)]
        )
        template, matches = most_specific_match(h, target(), min_samples=3)
        assert "queue" not in template
        assert len(matches) == 5

    def test_second_pass_prefers_few_specific_over_many_generic(self):
        # 2 records of the right executable, 50 unrelated ones.
        h = HistoryRepository(
            [rec(executable="mine", runtime=100.0) for _ in range(2)]
            + [rec(executable="other", owner="someone", runtime=10000.0) for _ in range(50)]
        )
        template, matches = most_specific_match(
            h, target(executable="mine"), min_samples=3
        )
        assert template != ()
        assert len(matches) == 2
        assert all(m.executable == "mine" for m in matches)

    def test_empty_template_is_last_resort(self):
        h = HistoryRepository([rec(executable="other", owner="x") for _ in range(5)])
        template, matches = most_specific_match(h, target(executable="missing"))
        assert template == ()
        assert len(matches) == 5

    def test_invalid_min_samples(self):
        with pytest.raises(ValueError):
            most_specific_match(HistoryRepository(), target(), min_samples=0)

    def test_empty_history_returns_empty_matches(self):
        template, matches = most_specific_match(HistoryRepository(), target())
        assert template == ()
        assert matches == []


class TestGreedySearch:
    def make_history(self):
        """Two owners with very different runtimes; queue is pure noise."""
        records = []
        for i in range(20):
            records.append(rec(owner="fastguy", queue=f"q{i % 3}", runtime=100.0 + i))
            records.append(rec(owner="slowguy", queue=f"q{i % 3}", runtime=10000.0 + i))
        return HistoryRepository(records)

    def test_search_finds_discriminating_attribute(self):
        result = GreedyTemplateSearch(candidates=("owner", "queue")).search(self.make_history())
        assert "owner" in result.template

    def test_search_improves_error(self):
        search = GreedyTemplateSearch(candidates=("owner", "queue"))
        result = search.search(self.make_history())
        first_error = result.trace[0][1]
        assert result.error < first_error

    def test_trace_records_progression(self):
        result = GreedyTemplateSearch(candidates=("owner",)).search(self.make_history())
        assert result.trace[0][0] == ()
        assert len(result.trace) >= 2

    def test_ladder_from_result(self):
        search = GreedyTemplateSearch(candidates=("owner", "queue"))
        result = search.search(self.make_history())
        ladder = search.ladder_from(result)
        assert ladder[0] == result.template
        assert ladder[-1] == ()

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            GreedyTemplateSearch(min_samples=1)

    def test_empty_history_scores_inf(self):
        search = GreedyTemplateSearch()
        result = search.search(HistoryRepository())
        assert result.error == float("inf")
        assert result.template == ()
