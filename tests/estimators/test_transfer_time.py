"""Unit tests for the File Transfer Time Estimator (§6.3)."""

import numpy as np
import pytest

from repro.core.estimators.transfer_time import TransferTimeEstimator
from repro.gridsim.network import IperfProbe, Link, Network
from repro.gridsim.storage import GridFile, ReplicaCatalog, StorageElement


@pytest.fixture
def net():
    n = Network()
    n.add_link(Link("src", "dst", capacity_mbps=80.0, latency_s=0.0))
    return n


def perfect_probe(net):
    return IperfProbe(net, noise_sigma=0.0)


class TestEstimate:
    def test_bandwidth_times_size_formula(self, net):
        est = TransferTimeEstimator(perfect_probe(net)).estimate("src", "dst", 100.0)
        # 100 MB = 800 Mbit / 80 Mbps = 10 s
        assert est.transfer_time_s == pytest.approx(10.0)
        assert est.bandwidth_mbps == pytest.approx(80.0)

    def test_local_transfer_free(self, net):
        est = TransferTimeEstimator(perfect_probe(net)).estimate("src", "src", 100.0)
        assert est.transfer_time_s == 0.0

    def test_zero_size_free(self, net):
        est = TransferTimeEstimator(perfect_probe(net)).estimate("src", "dst", 0.0)
        assert est.transfer_time_s == 0.0

    def test_negative_size_rejected(self, net):
        with pytest.raises(ValueError):
            TransferTimeEstimator(perfect_probe(net)).estimate("src", "dst", -1.0)

    def test_noisy_probe_estimate_near_truth(self, net):
        probe = IperfProbe(net, rng=np.random.default_rng(1), noise_sigma=0.05)
        est = TransferTimeEstimator(probe, smoothing_window=10)
        result = est.estimate("src", "dst", 100.0)
        assert result.transfer_time_s == pytest.approx(10.0, rel=0.15)

    def test_smoothing_reduces_variance(self, net):
        def spread(window):
            probe = IperfProbe(net, rng=np.random.default_rng(2), noise_sigma=0.2)
            est = TransferTimeEstimator(probe, smoothing_window=window)
            times = [est.estimate("src", "dst", 100.0).transfer_time_s for _ in range(30)]
            return float(np.std(times))

        assert spread(10) < spread(1)

    def test_invalid_window_rejected(self, net):
        with pytest.raises(ValueError):
            TransferTimeEstimator(perfect_probe(net), smoothing_window=0)


class TestStageIn:
    def test_stage_in_sums_remote_files(self, net):
        catalog = ReplicaCatalog(network=net)
        catalog.register(StorageElement("src"))
        catalog.register(StorageElement("dst"))
        catalog.publish("src", GridFile("a", 100.0))
        catalog.publish("src", GridFile("b", 50.0))
        catalog.publish("dst", GridFile("local", 1000.0))
        est = TransferTimeEstimator(perfect_probe(net))
        total = est.estimate_stage_in(catalog, ["a", "b", "local"], "dst")
        assert total == pytest.approx(10.0 + 5.0)

    def test_stage_in_empty_list_free(self, net):
        catalog = ReplicaCatalog(network=net)
        catalog.register(StorageElement("dst"))
        est = TransferTimeEstimator(perfect_probe(net))
        assert est.estimate_stage_in(catalog, [], "dst") == 0.0


class TestCacheBound:
    def _estimator(self, n_sites, cache_max_pairs):
        net = Network()
        for i in range(1, n_sites):
            net.add_link(Link("hub", f"s{i}", capacity_mbps=800.0))
        ticks = iter(range(1_000_000))
        return TransferTimeEstimator(
            IperfProbe(net, noise_sigma=0.0),
            cache_ttl_s=1e9,
            clock=lambda: float(next(ticks)),
            cache_max_pairs=cache_max_pairs,
        )

    def test_memo_never_exceeds_cap_and_counts_evictions(self):
        est = self._estimator(n_sites=20, cache_max_pairs=4)
        for i in range(1, 20):
            est.measure_bandwidth("hub", f"s{i}")
        assert len(est._bandwidth_cache) == 4
        assert est.cache_stats.evictions == 19 - 4
        assert est.cache_stats.as_dict()["evictions"] == 15

    def test_eviction_is_least_recently_used(self):
        est = self._estimator(n_sites=5, cache_max_pairs=2)
        est.measure_bandwidth("hub", "s1")
        est.measure_bandwidth("hub", "s2")
        est.measure_bandwidth("hub", "s1")  # refresh s1
        est.measure_bandwidth("hub", "s3")  # evicts s2
        hits_before = est.cache_stats.hits
        est.measure_bandwidth("hub", "s1")
        assert est.cache_stats.hits == hits_before + 1  # s1 survived
        misses_before = est.cache_stats.misses
        est.measure_bandwidth("hub", "s2")  # gone: must re-probe
        assert est.cache_stats.misses == misses_before + 1

    def test_invalid_cap_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            TransferTimeEstimator(IperfProbe(net), cache_max_pairs=0)
