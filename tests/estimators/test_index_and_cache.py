"""Unit tests for the PR-2 estimator hot paths.

Covers the multi-attribute history index, the incremental queue
accounting (including the event sources the property tests cannot reach
cheaply, like flocking), the TTL bandwidth cache, and the benchmark
harness's schema validator.
"""

import pytest

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.core.estimators.queue_time import (
    QueueEstimationError,
    QueueTimeEstimator,
    RuntimeEstimateDB,
)
from repro.core.estimators.transfer_time import TransferTimeEstimator
from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import Task, TaskSpec
from repro.gridsim.network import IperfProbe, Link, Network
from repro.gridsim.site import Site


def record(owner="alice", executable="reco", runtime_s=100.0, status="successful"):
    return TaskRecord(
        owner=owner, account="cms", partition="compute", queue="q", nodes=1,
        task_type="batch", executable=executable, requested_cpu_hours=1.0,
        runtime_s=runtime_s, status=status,
    )


def target(owner="alice", executable="reco"):
    return {
        "owner": owner, "account": "cms", "partition": "compute", "queue": "q",
        "nodes": 1, "task_type": "batch", "executable": executable,
    }


class TestHistoryIndex:
    def test_indexed_and_naive_agree_including_order(self):
        history = HistoryRepository(
            [record(runtime_s=r) for r in (10.0, 20.0, 30.0)]
            + [record(owner="bob", runtime_s=99.0)]
        )
        template = ("owner", "executable")
        assert history.matching(template, target()) == history.matching(
            template, target(), naive=True
        )
        assert [r.runtime_s for r in history.matching(template, target())] == [
            10.0, 20.0, 30.0,
        ]

    def test_add_after_query_updates_live_buckets(self):
        history = HistoryRepository([record()])
        template = ("owner",)
        assert len(history.matching(template, target())) == 1  # builds the index
        history.add(record(runtime_s=55.0))
        assert len(history.matching(template, target())) == 2

    def test_failed_records_never_match(self):
        history = HistoryRepository([record(), record(status="failed")])
        assert len(history.matching(("owner",), target())) == 1

    def test_unhashable_target_value_falls_back_to_scan(self):
        history = HistoryRepository([record()])
        weird = dict(target(), owner=["not", "hashable"])
        assert history.matching(("owner",), weird) == []

    def test_unindexed_repository_still_answers(self):
        history = HistoryRepository([record()], indexed=False)
        assert len(history.matching(("owner",), target())) == 1
        assert history.index_stats()["templates"] == {}

    def test_index_stats_reports_buckets(self):
        history = HistoryRepository([record(), record(owner="bob")])
        history.matching(("owner",), target())
        stats = history.index_stats()
        assert stats["records"] == 2
        assert stats["successful"] == 2
        assert stats["templates"]["owner"] == 2  # one bucket per owner


def _service_with_estimator(fallback=None, cpus=1):
    sim = Simulator()
    service = ExecutionService(Site.simple(sim, "site", cpus_per_node=cpus))
    db = RuntimeEstimateDB()
    estimator = QueueTimeEstimator(db, fallback_runtime_s=fallback)
    estimator.attach(service)
    return sim, service, db, estimator


class TestQueueAccounting:
    def test_strict_mode_raises_exactly_like_naive(self):
        _, service, db, estimator = _service_with_estimator(fallback=None)
        running = Task(spec=TaskSpec(), work_seconds=500.0)
        queued = Task(spec=TaskSpec(), work_seconds=500.0)
        service.submit_task(running)
        db.record(running.task_id, 500.0)
        service.submit_task(queued)  # no estimate recorded: strict error
        with pytest.raises(QueueEstimationError):
            estimator.estimate_for_new(service, priority=0)
        with pytest.raises(QueueEstimationError):
            estimator.estimate_for_new(service, priority=0, naive=True)
        # the moment the estimate lands, both paths answer again — equally
        db.record(queued.task_id, 800.0)
        assert estimator.estimate_for_new(service) == estimator.estimate_for_new(
            service, naive=True
        )

    def test_attach_is_idempotent(self):
        _, service, _, estimator = _service_with_estimator(fallback=60.0)
        assert estimator.attach(service) is estimator.attach(service)

    def test_flocked_job_leaves_the_accounting(self):
        sim = Simulator()
        full = ExecutionService(Site.simple(sim, "full", cpus_per_node=1))
        idle = ExecutionService(Site.simple(sim, "idle", cpus_per_node=1))
        full.pool.enable_flocking(idle.pool)
        db = RuntimeEstimateDB()
        estimator = QueueTimeEstimator(db, fallback_runtime_s=300.0)
        estimator.attach(full)
        first = Task(spec=TaskSpec(), work_seconds=1000.0)
        second = Task(spec=TaskSpec(), work_seconds=1000.0)
        service_estimates = {}
        for task in (first, second):
            db.record(task.task_id, 1000.0)
            full.submit_task(task)  # second flocks straight to the idle pool
        service_estimates["incremental"] = estimator.estimate_for_new(full)
        service_estimates["naive"] = estimator.estimate_for_new(full, naive=True)
        assert idle.has_task(second.task_id)
        assert not full.has_task(second.task_id)
        assert service_estimates["incremental"] == service_estimates["naive"]
        assert full.queue_accounting.queued_depth() == 0

    def test_estimate_shrinks_as_running_task_progresses(self):
        sim, service, db, estimator = _service_with_estimator(fallback=None)
        task = Task(spec=TaskSpec(), work_seconds=1000.0)
        db.record(task.task_id, 1000.0)
        service.submit_task(task)
        before = estimator.estimate_for_new(service)
        sim.run_until(200.0)
        after = estimator.estimate_for_new(service)
        assert after == pytest.approx(before - 200.0)
        assert after == estimator.estimate_for_new(service, naive=True)


def _star_network():
    network = Network()
    network.add_link(Link("a", "b", capacity_mbps=800.0))
    return IperfProbe(network, noise_sigma=0.0)


class TestTransferCache:
    def test_ttl_expiry_forces_reprobe(self):
        ticks = iter(range(1000))
        est = TransferTimeEstimator(
            _star_network(), cache_ttl_s=2.0, clock=lambda: float(next(ticks))
        )
        est.estimate("a", "b", 10.0)   # t=0: miss
        est.estimate("a", "b", 10.0)   # t=1: hit
        est.estimate("a", "b", 10.0)   # t=2: expired -> reprobe
        assert est.cache_stats.hits == 1
        assert est.cache_stats.misses == 2
        assert est.cache_stats.expirations == 1

    def test_fresh_bypasses_and_refreshes(self):
        ticks = iter(range(1000))
        est = TransferTimeEstimator(
            _star_network(), cache_ttl_s=100.0, clock=lambda: float(next(ticks))
        )
        est.estimate("a", "b", 10.0)
        est.estimate("a", "b", 10.0, fresh=True)  # counted as a miss
        est.estimate("a", "b", 10.0)              # served by the refresh
        assert est.cache_stats.misses == 2
        assert est.cache_stats.hits == 1

    def test_invalidate_by_site_and_wholesale(self):
        ticks = iter(range(1000))
        probe = _star_network()
        probe.network.add_link(Link("a", "c", capacity_mbps=100.0))
        est = TransferTimeEstimator(
            probe, cache_ttl_s=1e9, clock=lambda: float(next(ticks))
        )
        est.estimate("a", "b", 10.0)
        est.estimate("a", "c", 10.0)
        assert est.invalidate(src="b") == 1
        assert est.invalidate() == 1

    def test_no_ttl_probes_every_time(self):
        est = TransferTimeEstimator(_star_network())
        est.estimate("a", "b", 10.0)
        est.estimate("a", "b", 10.0)
        assert est.cache_stats.hits == 0
        assert est.cache_stats.misses == 0  # cache disabled entirely

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError):
            TransferTimeEstimator(_star_network(), cache_ttl_s=0.0)


class TestBenchHarness:
    def test_sections_report_identity_at_tiny_scale(self):
        from repro.analysis.bench import (
            bench_queue_time,
            bench_runtime_estimator,
            bench_transfer_time,
        )

        runtime = bench_runtime_estimator(200, queries=5, repeats=1, seed=3)
        assert runtime["identical"]
        queue = bench_queue_time(30, queries=5, repeats=1, seed=3)
        assert queue["identical"]
        transfer = bench_transfer_time(calls=10, repeats=1, seed=3)
        assert transfer["identical"]

    def test_validator_accepts_real_reports_and_rejects_mutants(self):
        from repro.analysis.bench import (
            BenchSchemaError,
            bench_queue_time,
            bench_runtime_estimator,
            bench_transfer_time,
            validate_report,
        )

        report = {
            "schema_version": 4, "generated_by": "test", "quick": True,
            "seed": 3, "python": "3",
            "sections": {
                "runtime_estimator": {
                    "scales": [bench_runtime_estimator(100, queries=3, repeats=1, seed=3)]
                },
                "queue_time": {
                    "scales": [bench_queue_time(10, queries=3, repeats=1, seed=3)]
                },
                "transfer_time": bench_transfer_time(calls=5, repeats=1, seed=3),
                "steering": {
                    "sites": 3, "queued_per_site": 1, "decisions": 1,
                    "mean_ms": 1.0, "p50_ms": 1.0, "p95_ms": 1.0,
                },
                "monitoring": {
                    "queries": 1, "queued_per_site": 1,
                    "mean_ms": 1.0, "p50_ms": 1.0, "p95_ms": 1.0,
                },
                "observability": {
                    "n_tasks": 10, "commands": 2, "rounds": 1,
                    "baseline_s": 1.0, "traced_s": 1.0, "instrumented_s": 1.0,
                    "baseline_per_command_ms": 500.0,
                    "traced_per_command_ms": 500.0,
                    "instrumented_per_command_ms": 500.0,
                    "overhead_pct": 0.0, "telemetry_overhead_pct": 0.0,
                    "identical": True,
                    "spans": 1, "events": 1, "windows": 1,
                },
                "event_core": {
                    "n_tasks": 10, "commands": 2, "rounds": 1,
                    "direct_s": 1.0, "evented_s": 1.0,
                    "direct_per_command_ms": 500.0,
                    "evented_per_command_ms": 500.0,
                    "overhead_pct": 0.0, "identical": True,
                    "rebuild_identical": True, "consumers": 4,
                    "journal_events": 10,
                    "full_checkpoint_bytes": 100,
                    "incremental_checkpoint_bytes": 50,
                    "incremental_vs_full_pct": 50.0,
                    "full_checkpoint_write_s": 0.1,
                    "incremental_checkpoint_write_s": 0.05,
                },
                "persistence": {
                    "records": 10, "loop_s": 1.0, "batched_s": 0.5,
                    "loop_per_record_ms": 100.0, "batched_per_record_ms": 50.0,
                    "loop_throughput_per_s": 10.0,
                    "batched_throughput_per_s": 20.0,
                    "speedup": 2.0, "identical": True,
                    "backends_identical": True,
                },
                "rpc_read_path": {
                    "n_tasks": 10, "workers": 2, "calls_per_worker": 5,
                    "total_calls": 10, "mutations": 1, "rounds": 1,
                    "identical": True, "uncached_wall_s": 1.0,
                    "cached_wall_s": 0.25, "uncached_calls_per_s": 10.0,
                    "cached_calls_per_s": 40.0, "speedup": 4.0,
                    "cache": {
                        "hits": 4, "misses": 5, "invalidations": 1,
                        "coalesced": 2, "entries": 5, "evictions": 0,
                        "hit_rate": 0.4,
                    },
                    "mix": {"jobmon.job_status": 10},
                },
                "transport": {
                    "n_tasks": 10, "workers": 2, "calls_per_worker": 5,
                    "total_calls": 10, "pipeline_window": 8,
                    "identical": True,
                    "identity": {"xmlrpc_http": True, "async+json": True,
                                 "async+xmlrpc": True},
                    "threaded_xmlrpc_calls_per_s": 100.0,
                    "codecs": {
                        "json": {"serial_calls_per_s": 500.0,
                                 "pipelined_calls_per_s": 900.0},
                        "xmlrpc": {"serial_calls_per_s": 120.0,
                                   "pipelined_calls_per_s": 150.0},
                    },
                    "async_calls_per_s": 900.0,
                    "recorded_baseline_calls_per_s": 10.0,
                    "speedup_vs_recorded": 90.0,
                    "speedup_vs_live_threaded": 9.0,
                },
            },
        }
        validate_report(report)  # must not raise
        with pytest.raises(BenchSchemaError):
            validate_report({**report, "schema_version": 99})
        broken = {**report, "sections": {**report["sections"]}}
        del broken["sections"]["monitoring"]
        with pytest.raises(BenchSchemaError):
            validate_report(broken)
        broken = {**report, "sections": {**report["sections"], "steering": {
            **report["sections"]["steering"], "mean_ms": "fast"}}}
        with pytest.raises(BenchSchemaError):
            validate_report(broken)
        broken = {**report, "sections": {**report["sections"], "observability": {
            **report["sections"]["observability"], "overhead_pct": "low"}}}
        with pytest.raises(BenchSchemaError):
            validate_report(broken)
        broken = {**report, "sections": {**report["sections"], "rpc_read_path": {
            **report["sections"]["rpc_read_path"], "cache": {
                **report["sections"]["rpc_read_path"]["cache"], "hits": 1.5}}}}
        with pytest.raises(BenchSchemaError):
            validate_report(broken)
        broken = {**report, "sections": {**report["sections"], "persistence": {
            **report["sections"]["persistence"], "identical": "yes"}}}
        with pytest.raises(BenchSchemaError):
            validate_report(broken)
        broken = {**report, "sections": {**report["sections"]}}
        del broken["sections"]["transport"]
        with pytest.raises(BenchSchemaError):
            validate_report(broken)
        broken = {**report, "sections": {**report["sections"], "transport": {
            **report["sections"]["transport"], "codecs": {
                "json": report["sections"]["transport"]["codecs"]["json"]}}}}
        with pytest.raises(BenchSchemaError):
            validate_report(broken)
        broken = {**report, "sections": {**report["sections"], "transport": {
            **report["sections"]["transport"],
            "speedup_vs_recorded": "fast"}}}
        with pytest.raises(BenchSchemaError):
            validate_report(broken)
