"""Unit tests for the Estimator Service facade."""

import pytest

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.core.estimators.service import EstimatorService, spec_from_wire, _spec_to_dict
from repro.gridsim import GridBuilder, Job, Task, TaskSpec
from repro.gridsim.job import TaskSpec as Spec


def seeded_history(runtime=100.0, n=5):
    spec = Spec(executable="exe", requested_cpu_hours=1.0)
    return HistoryRepository(
        TaskRecord.from_spec(spec, runtime_s=runtime) for _ in range(n)
    )


@pytest.fixture
def grid():
    return (
        GridBuilder(seed=1)
        .site("a", background_load=0.0)
        .site("b", background_load=1.0)
        .link("a", "b", capacity_mbps=100.0, latency_s=0.0)
        .file("data.db", size_mb=100.0, at="b")
        .probe_noise(0.0)
        .build()
    )


@pytest.fixture
def service(grid):
    svc = EstimatorService(seeded_history(), probe=grid.probe, catalog=grid.catalog)
    for es in grid.execution_services.values():
        svc.install_site_estimator(es)
    svc.attach_to_scheduler(grid.scheduler)
    return svc


class TestSpecWire:
    def test_round_trip(self):
        spec = TaskSpec(owner="u", input_files=("a", "b"), arguments=("-x",))
        back = spec_from_wire({"_type": "TaskSpec", **_spec_to_dict(spec)})
        assert back == spec


class TestEstimateRuntime:
    def test_wire_struct_in_out(self, service):
        out = service.estimate_runtime(_spec_to_dict(Spec(executable="exe")))
        assert out["value"] == pytest.approx(100.0)
        assert out["n_similar"] == 5
        assert out["method"] in ("mean", "regression")

    def test_site_estimators_installed(self, grid, service):
        es = grid.execution_services["a"]
        assert es.has_estimator
        assert es.estimate_runtime(Spec(executable="exe")) == pytest.approx(100.0)


class TestSubmissionRecording:
    def test_estimates_recorded_at_submission(self, grid, service):
        t = Task(spec=Spec(executable="exe"), work_seconds=120.0)
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        assert service.estimate_db.lookup(t.task_id) == pytest.approx(100.0)

    def test_unknown_spec_falls_back_to_request(self, grid, service):
        t = Task(
            spec=Spec(executable="never-seen", owner="stranger", requested_cpu_hours=2.0),
            work_seconds=1.0,
        )
        grid.scheduler.submit_job(Job(tasks=[t], owner="u"))
        # History has no record of this app+owner, but the executable-less
        # fallback still finds the global history; ensure *something* stored.
        assert service.estimate_db.has(t.task_id)


class TestQueueAndTransferMethods:
    def test_estimate_queue_time_via_site_name(self, grid, service):
        a = grid.execution_services["a"]
        t1 = Task(spec=Spec(executable="exe"), work_seconds=100.0)
        t2 = Task(spec=Spec(executable="exe"), work_seconds=100.0)
        a.submit_task(t1)
        a.submit_task(t2)
        service.estimate_db.record(t1.task_id, 100.0)
        service.estimate_db.record(t2.task_id, 100.0)
        assert service.estimate_queue_time("a", t2.task_id) == pytest.approx(100.0)

    def test_estimate_transfer_time(self, service):
        # 100 MB over 100 Mbps = 8 s
        assert service.estimate_transfer_time("b", "a", 100.0) == pytest.approx(8.0)

    def test_unknown_site_raises(self, service):
        with pytest.raises(KeyError):
            service.estimate_queue_time("ghost", "t")


class TestCompletionEstimate:
    def test_breakdown_parts(self, grid, service):
        spec = Spec(executable="exe", input_files=("data.db",))
        out = service.estimate_completion("a", _spec_to_dict(spec))
        assert out["runtime_s"] == pytest.approx(100.0)
        assert out["queue_time_s"] == 0.0
        assert out["transfer_time_s"] == pytest.approx(8.0)  # data.db is at b
        assert out["total_s"] == pytest.approx(108.0)

    def test_local_input_no_transfer(self, grid, service):
        spec = Spec(executable="exe", input_files=("data.db",))
        out = service.estimate_completion("b", _spec_to_dict(spec))
        assert out["transfer_time_s"] == 0.0

    def test_completion_by_site_excludes_and_skips_down(self, grid, service):
        grid.execution_services["b"].fail()
        by_site = service.completion_by_site(Spec(executable="exe"))
        assert set(by_site) == {"a"}

    def test_history_size_exposed(self, service):
        assert service.history_size() == 5


class TestCondorIdEntryPoint:
    def test_queue_time_by_condor_id(self, grid, service):
        a = grid.execution_services["a"]
        t1 = Task(spec=Spec(executable="exe"), work_seconds=100.0)
        t2 = Task(spec=Spec(executable="exe"), work_seconds=100.0)
        cid1 = a.submit_task(t1)
        cid2 = a.submit_task(t2)
        service.estimate_db.record(t1.task_id, 100.0)
        service.estimate_db.record(t2.task_id, 100.0)
        by_id = service.estimate_queue_time_by_condor_id("a", cid2)
        by_task = service.estimate_queue_time("a", t2.task_id)
        assert by_id == by_task == pytest.approx(100.0)

    def test_unknown_condor_id_raises(self, grid, service):
        from repro.gridsim.condor import CondorError

        with pytest.raises(CondorError):
            service.estimate_queue_time_by_condor_id("a", 999)
