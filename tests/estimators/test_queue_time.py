"""Unit tests for the Queue Time Estimator (§6.2)."""

import pytest

from repro.core.estimators.queue_time import (
    QueueEstimationError,
    QueueTimeEstimator,
    RuntimeEstimateDB,
)
from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import Task, TaskSpec
from repro.gridsim.site import Site


@pytest.fixture
def env(sim):
    site = Site.simple(sim, "s")
    return sim, ExecutionService(site), RuntimeEstimateDB()


def make_task(work=100.0, priority=0):
    return Task(spec=TaskSpec(priority=priority), work_seconds=work)


class TestRuntimeEstimateDB:
    def test_record_and_lookup(self):
        db = RuntimeEstimateDB()
        db.record("t1", 120.0)
        assert db.lookup("t1") == 120.0
        assert db.has("t1")
        assert len(db) == 1

    def test_missing_lookup_raises(self):
        with pytest.raises(QueueEstimationError):
            RuntimeEstimateDB().lookup("ghost")

    def test_negative_estimate_rejected(self):
        with pytest.raises(ValueError):
            RuntimeEstimateDB().record("t", -1.0)


class TestQueueTimeEstimator:
    def test_empty_pool_zero_wait(self, env):
        sim, es, db = env
        t = make_task()
        es.submit_task(t)
        db.record(t.task_id, 100.0)
        qte = QueueTimeEstimator(db)
        # Running task: nothing ahead of it.
        assert qte.estimate(es, t.task_id) == 0.0

    def test_paper_algorithm_sums_remaining(self, env):
        """§6.2: remaining = estimated - elapsed for each task ahead."""
        sim, es, db = env
        running = make_task(work=100.0)
        queued = make_task(work=50.0)
        es.submit_task(running)
        es.submit_task(queued)
        db.record(running.task_id, 100.0)
        db.record(queued.task_id, 50.0)
        sim.run_until(30.0)  # running has 30 s elapsed
        qte = QueueTimeEstimator(db)
        assert qte.estimate(es, queued.task_id) == pytest.approx(70.0)

    def test_higher_priority_queued_tasks_count(self, env):
        sim, es, db = env
        blocker = make_task(work=1000.0)
        high = make_task(work=200.0, priority=9)
        me = make_task(work=10.0, priority=0)
        for t, est in ((blocker, 1000.0), (high, 200.0), (me, 10.0)):
            es.submit_task(t)
            db.record(t.task_id, est)
        qte = QueueTimeEstimator(db)
        assert qte.estimate(es, me.task_id) == pytest.approx(1200.0)

    def test_lower_priority_tasks_ignored(self, env):
        sim, es, db = env
        blocker = make_task(work=1000.0)
        me = make_task(work=10.0, priority=5)
        low = make_task(work=500.0, priority=0)
        for t, est in ((blocker, 1000.0), (me, 10.0), (low, 500.0)):
            es.submit_task(t)
            db.record(t.task_id, est)
        qte = QueueTimeEstimator(db)
        assert qte.estimate(es, me.task_id) == pytest.approx(1000.0)

    def test_breakdown_details(self, env):
        sim, es, db = env
        running = make_task(work=100.0)
        queued = make_task(work=50.0)
        es.submit_task(running)
        es.submit_task(queued)
        db.record(running.task_id, 100.0)
        db.record(queued.task_id, 50.0)
        bd = QueueTimeEstimator(db).breakdown(es, queued.task_id)
        assert bd.ahead == ((running.task_id, 100.0),)
        assert bd.queue_time_s == 100.0

    def test_missing_estimate_strict_raises(self, env):
        sim, es, db = env
        running = make_task()
        queued = make_task()
        es.submit_task(running)
        es.submit_task(queued)
        with pytest.raises(QueueEstimationError):
            QueueTimeEstimator(db, fallback_runtime_s=None).estimate(es, queued.task_id)

    def test_missing_estimate_fallback_used(self, env):
        sim, es, db = env
        running = make_task()
        queued = make_task()
        es.submit_task(running)
        es.submit_task(queued)
        qte = QueueTimeEstimator(db, fallback_runtime_s=42.0)
        assert qte.estimate(es, queued.task_id) == pytest.approx(42.0)

    def test_remaining_floors_at_zero(self, env):
        """A task running longer than its estimate contributes 0, not negative."""
        sim, es, db = env
        running = make_task(work=100.0)
        queued = make_task()
        es.submit_task(running)
        es.submit_task(queued)
        db.record(running.task_id, 10.0)  # underestimate
        db.record(queued.task_id, 10.0)
        sim.run_until(50.0)
        assert QueueTimeEstimator(db).estimate(es, queued.task_id) == 0.0

    def test_per_slot_division(self, sim):
        site = Site.simple(sim, "s", n_nodes=2)
        es = ExecutionService(site)
        db = RuntimeEstimateDB()
        tasks = [make_task(work=100.0) for _ in range(3)]
        for t in tasks:
            es.submit_task(t)
            db.record(t.task_id, 100.0)
        qte = QueueTimeEstimator(db)
        plain = qte.estimate(es, tasks[2].task_id)
        halved = qte.estimate(es, tasks[2].task_id, per_slot=True)
        assert halved == pytest.approx(plain / 2)

    def test_estimate_for_new_counts_running_and_equal_priority(self, env):
        sim, es, db = env
        running = make_task(work=100.0)
        queued = make_task(work=50.0, priority=0)
        es.submit_task(running)
        es.submit_task(queued)
        db.record(running.task_id, 100.0)
        db.record(queued.task_id, 50.0)
        qte = QueueTimeEstimator(db)
        assert qte.estimate_for_new(es, priority=0) == pytest.approx(150.0)
        # A higher-priority newcomer jumps the equal-priority queue.
        assert qte.estimate_for_new(es, priority=5) == pytest.approx(100.0)
