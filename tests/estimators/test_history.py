"""Unit tests for the task-history repository and live recorder."""

import pytest

from repro.core.estimators.history import HistoryRecorder, HistoryRepository, TaskRecord
from repro.gridsim.clock import Simulator
from repro.gridsim.job import Task, TaskSpec
from repro.gridsim.site import Site


def make_record(runtime=100.0, **kw):
    defaults = dict(
        owner="u", account="a", partition="p", queue="q", nodes=1,
        task_type="batch", executable="exe", requested_cpu_hours=1.0,
    )
    defaults.update(kw)
    return TaskRecord(runtime_s=runtime, **defaults)


class TestTaskRecord:
    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            make_record(runtime=-1.0)

    def test_attribute_lookup(self):
        r = make_record(owner="alice")
        assert r.attribute("owner") == "alice"

    def test_from_spec_copies_fields(self):
        spec = TaskSpec(owner="bob", executable="sim", nodes=4, requested_cpu_hours=2.0)
        r = TaskRecord.from_spec(spec, runtime_s=50.0, site="s1")
        assert (r.owner, r.executable, r.nodes, r.runtime_s, r.site) == (
            "bob", "sim", 4, 50.0, "s1",
        )


class TestHistoryRepository:
    def test_add_and_len(self):
        h = HistoryRepository()
        h.add(make_record())
        assert len(h) == 1

    def test_extend_and_iter(self):
        h = HistoryRepository()
        h.extend([make_record(), make_record()])
        assert len(list(h)) == 2

    def test_successful_filters_failures(self):
        h = HistoryRepository([make_record(), make_record(status="failed")])
        assert len(h.successful()) == 1

    def test_matching_on_attributes(self):
        h = HistoryRepository([
            make_record(owner="a", executable="x"),
            make_record(owner="a", executable="y"),
            make_record(owner="b", executable="x"),
        ])
        assert len(h.matching(("owner",), {"owner": "a"})) == 2
        assert len(h.matching(("owner", "executable"), {"owner": "a", "executable": "x"})) == 1
        assert len(h.matching((), {})) == 3

    def test_matching_excludes_failed(self):
        h = HistoryRepository([make_record(owner="a", status="failed")])
        assert h.matching(("owner",), {"owner": "a"}) == []

    def test_csv_round_trip(self):
        h = HistoryRepository([make_record(runtime=123.5, nodes=8), make_record(owner="z")])
        text = h.to_csv()
        back = HistoryRepository.from_csv(text)
        assert len(back) == 2
        assert back.records()[0].runtime_s == 123.5
        assert back.records()[0].nodes == 8
        assert back.records()[1].owner == "z"


class TestHistoryRecorder:
    def test_records_completions(self, sim):
        h = HistoryRepository()
        site = Site.simple(sim, "s")
        HistoryRecorder(h).attach(site)
        t = Task(spec=TaskSpec(owner="alice", executable="sim"), work_seconds=50.0)
        site.pool.submit(t)
        sim.run()
        [record] = h.records()
        assert record.owner == "alice"
        assert record.runtime_s == pytest.approx(50.0)
        assert record.status == "successful"
        assert record.site == "s"

    def test_failures_skipped_by_default(self, sim):
        h = HistoryRepository()
        site = Site.simple(sim, "s")
        HistoryRecorder(h).attach(site)
        t = Task(spec=TaskSpec(), work_seconds=50.0)
        site.pool.submit(t)
        site.pool.fail_task(t.task_id)
        assert len(h) == 0

    def test_failures_recorded_when_enabled(self, sim):
        h = HistoryRepository()
        site = Site.simple(sim, "s")
        HistoryRecorder(h, record_failures=True).attach(site)
        t = Task(spec=TaskSpec(), work_seconds=50.0)
        site.pool.submit(t)
        sim.run_until(10.0)
        site.pool.fail_task(t.task_id)
        [record] = h.records()
        assert record.status == "failed"
        assert record.runtime_s == pytest.approx(10.0)

    def test_recorded_runtime_is_cpu_work_not_wall_time(self, sim):
        """On a loaded node the record must hold true CPU work."""
        h = HistoryRepository()
        site = Site.simple(sim, "s", background_load=1.0)
        HistoryRecorder(h).attach(site)
        t = Task(spec=TaskSpec(), work_seconds=50.0)
        site.pool.submit(t)
        sim.run()
        assert h.records()[0].runtime_s == pytest.approx(50.0)
        assert h.records()[0].end_time == pytest.approx(100.0)
