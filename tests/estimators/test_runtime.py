"""Unit tests for the history-based runtime estimator (§6.1)."""

import numpy as np
import pytest

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.core.estimators.runtime import EstimationError, RuntimeEstimator
from repro.gridsim.job import TaskSpec


def rec(runtime, hours=1.0, executable="exe", owner="u", **kw):
    return TaskRecord(
        owner=owner, account="a", partition="p", queue="q", nodes=1,
        task_type="batch", executable=executable,
        requested_cpu_hours=hours, runtime_s=runtime,
        status=kw.get("status", "successful"),
    )


def spec(hours=1.0, executable="exe", owner="u"):
    return TaskSpec(
        owner=owner, account="a", partition="p", queue="q", nodes=1,
        task_type="batch", executable=executable, requested_cpu_hours=hours,
    )


class TestMeanEstimation:
    def test_mean_of_similar(self):
        h = HistoryRepository([rec(100.0), rec(110.0), rec(120.0)])
        est = RuntimeEstimator(h, method="mean").estimate(spec())
        assert est.value == pytest.approx(110.0)
        assert est.method == "mean"
        assert est.n_similar == 3

    def test_empty_history_raises(self):
        with pytest.raises(EstimationError):
            RuntimeEstimator(HistoryRepository()).estimate(spec())

    def test_failed_records_ignored(self):
        h = HistoryRepository([rec(100.0), rec(100.0), rec(100.0), rec(5.0, status="failed")])
        est = RuntimeEstimator(h, method="mean").estimate(spec())
        assert est.value == pytest.approx(100.0)

    def test_callable_shorthand(self):
        h = HistoryRepository([rec(100.0)] * 3)
        estimator = RuntimeEstimator(h, method="mean")
        assert estimator(spec()) == pytest.approx(100.0)


class TestRegressionEstimation:
    def test_regression_extrapolates_linearly(self):
        # runtime = 100 * hours exactly
        h = HistoryRepository([rec(100.0 * x, hours=x) for x in (1.0, 2.0, 3.0, 4.0)])
        est = RuntimeEstimator(h, method="regression").estimate(spec(hours=2.5))
        assert est.value == pytest.approx(250.0, rel=1e-6)
        assert est.method == "regression"

    def test_regression_needs_feature_spread(self):
        h = HistoryRepository([rec(100.0, hours=1.0) for _ in range(5)])
        est = RuntimeEstimator(h, method="regression").estimate(spec())
        assert est.regression is None
        assert est.method == "mean"  # falls back

    def test_regression_needs_three_points(self):
        h = HistoryRepository([rec(100.0, hours=1.0), rec(200.0, hours=2.0)])
        est = RuntimeEstimator(h, method="regression", min_samples=2).estimate(spec())
        assert est.regression is None

    def test_prediction_clipped_against_extrapolation(self):
        h = HistoryRepository(
            [rec(100.0, hours=1.0), rec(110.0, hours=1.1), rec(120.0, hours=1.2)]
        )
        est = RuntimeEstimator(h, method="regression").estimate(spec(hours=100.0))
        # Unclipped line would predict ~10000; clip caps at 2*max.
        assert est.value <= 240.0

    def test_prediction_never_negative(self):
        h = HistoryRepository(
            [rec(300.0, hours=1.0), rec(200.0, hours=2.0), rec(100.0, hours=3.0)]
        )
        est = RuntimeEstimator(h, method="regression").estimate(spec(hours=50.0))
        assert est.value >= 0.0


class TestAutoMethod:
    def test_auto_prefers_regression_on_linear_data(self):
        h = HistoryRepository([rec(100.0 * x, hours=x) for x in (1.0, 2.0, 3.0, 4.0, 5.0)])
        est = RuntimeEstimator(h, method="auto").estimate(spec(hours=3.0))
        assert est.method == "regression"

    def test_auto_prefers_mean_on_flat_data(self):
        rng = np.random.default_rng(0)
        h = HistoryRepository(
            [rec(100.0 + rng.normal(0, 1), hours=float(x)) for x in rng.uniform(1, 5, 20)]
        )
        est = RuntimeEstimator(h, method="auto").estimate(spec(hours=3.0))
        assert est.method == "mean"

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            RuntimeEstimator(HistoryRepository(), method="magic")


class TestTemplateIntegration:
    def test_estimate_uses_most_specific_template(self):
        h = HistoryRepository(
            [rec(100.0, executable="mine")] * 3 + [rec(9999.0, executable="other")] * 10
        )
        est = RuntimeEstimator(h, method="mean").estimate(spec(executable="mine"))
        assert est.value == pytest.approx(100.0)
        assert "executable" in est.template

    def test_estimate_reports_provenance(self):
        h = HistoryRepository([rec(100.0)] * 4)
        est = RuntimeEstimator(h, method="mean").estimate(spec())
        assert est.n_similar == 4
        assert est.mean == pytest.approx(100.0)
        assert est.template != ()


class TestConfidence:
    def test_stddev_and_standard_error(self):
        h = HistoryRepository([rec(90.0), rec(100.0), rec(110.0)])
        est = RuntimeEstimator(h, method="mean").estimate(spec())
        assert est.stddev == pytest.approx(10.0)
        assert est.standard_error == pytest.approx(10.0 / 3 ** 0.5)

    def test_interval_brackets_value(self):
        h = HistoryRepository([rec(90.0), rec(100.0), rec(110.0)])
        est = RuntimeEstimator(h, method="mean").estimate(spec())
        lo, hi = est.interval()
        assert lo < est.value < hi
        assert lo >= 0.0

    def test_single_sample_zero_stddev(self):
        h = HistoryRepository([rec(100.0)])
        est = RuntimeEstimator(h, method="mean").estimate(spec())
        assert est.stddev == 0.0
        assert est.interval() == (100.0, 100.0)
