"""GAE-wide checkpoint/restore: round-trips, identity, kill-and-recover.

The workload used throughout is a mixed-length bag of tasks over a
two-site grid; around t=205 s it is part-completed, part-running,
part-queued, so a checkpoint there captures every interesting state.
Identity is always compared *at the barrier instant*: events scheduled
at the same simulated time but after the checkpoint event still run in
the original, so the original's answers are captured by a callback
scheduled immediately after the checkpoint.
"""

import json

import pytest

from repro.gae import build_gae
from repro.gridsim import GridBuilder
from repro.gridsim.job import TaskSpec, bag_of_tasks, reset_id_counters
from repro.store import MemoryStore, SqliteStore
from repro.store.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    Checkpointer,
    restore_gae,
)
from repro.store.registry import CHECKPOINT_META, register_all

T_CHECKPOINT = 205.0  # not a multiple of any periodic (20/30/60 s)
WORKS = [120.0, 240.0, 360.0, 480.0, 150.0, 90.0]


def build_workload(seed=11):
    reset_id_counters()
    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=2, background_load=0.3)
        .site("siteB", nodes=2, background_load=1.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .file("in.dat", size_mb=50.0, at="siteA")
        .build()
    )
    gae = build_gae(grid, monitor_snapshot_period_s=20.0).start()
    gae.add_user("alice", "pw")
    specs = [TaskSpec(owner="alice", input_files=("in.dat",)) for _ in WORKS]
    job = bag_of_tasks(specs, WORKS, owner="alice")
    gae.scheduler.submit_job(job)
    return gae, job


def run_to_completion(gae, horizon=20000.0):
    gae.sim.run_until(gae.sim.now + horizon)
    gae.stop()
    gae.sim.run()
    return {t.task_id: t.state.value for j in gae.scheduler.jobs() for t in j.tasks}


class TestFiveStoreRoundTrip:
    def test_all_namespaces_bit_identical_across_backends(self, tmp_path):
        """One checkpoint written through both backends reads back equal."""
        gae, _ = build_workload()
        gae.sim.run_until(T_CHECKPOINT)
        ckpt = Checkpointer(gae)

        memory = MemoryStore()
        ckpt.write_state(memory)
        with SqliteStore(str(tmp_path / "ckpt.sqlite")) as sqlite_store:
            ckpt.write_state(sqlite_store)
            for ns in memory.namespaces():
                assert json.dumps(memory.items(ns.name)) == json.dumps(
                    sqlite_store.items(ns.name)
                ), f"namespace {ns.name} differs across backends"
                assert memory.count(ns.name) == sqlite_store.count(ns.name)

    def test_migrated_stores_reload_identically(self, tmp_path):
        """The five migrated stores reload the same from either backend."""
        from repro.core.estimators.history import HistoryRepository
        from repro.core.estimators.queue_time import RuntimeEstimateDB
        from repro.core.monitoring.db_manager import DBManager
        from repro.monalisa.repository import MonALISARepository
        from repro.observability.journal import EventJournal
        from repro.store.registry import MONITORING_JOBS

        def dump(obj):
            scratch = MemoryStore()
            obj.save_to(scratch)
            return {ns.name: scratch.items(ns.name) for ns in scratch.namespaces()}

        gae, _ = build_workload()
        gae.sim.run_until(T_CHECKPOINT)
        ckpt = Checkpointer(gae)
        memory = MemoryStore()
        ckpt.write_state(memory)
        sqlite_store = SqliteStore(str(tmp_path / "ckpt.sqlite"))
        ckpt.write_state(sqlite_store)

        for source in (memory, sqlite_store):
            history = HistoryRepository.load_from(source)
            assert history.records() == gae.history.records()

            estimates = RuntimeEstimateDB()
            estimates.load_from(source)
            assert dump(estimates) == dump(gae.estimators.estimate_db)

            with DBManager() as db:
                db.import_state(source.get(MONITORING_JOBS, "state"))
                assert db.export_state() == gae.monitoring.db_manager.export_state()

            monalisa = MonALISARepository()
            monalisa.load_from(source)
            assert dump(monalisa) == dump(gae.monalisa)

            journal = EventJournal(clock=lambda: 0.0)
            journal.load_from(source)
            assert dump(journal) == dump(gae.observability.journal)
        sqlite_store.close()


class TestBarrierIdentity:
    def test_restored_answers_match_barrier_instant(self, tmp_path):
        """job_status / observability / estimates identical after restore."""
        path = str(tmp_path / "ckpt.sqlite")
        gae, job = build_workload()
        Checkpointer(gae).checkpoint_at(T_CHECKPOINT, path)

        captured = {}

        def capture():
            client = gae.client("alice", "pw")
            captured["status"] = {
                t.task_id: client.call("jobmon.job_status", t.task_id)
                for t in job.tasks
            }
            captured["obs"] = client.call("system.observability")
            captured["est"] = client.call(
                "estimator.estimate_runtime", {"owner": "alice", "nodes": 1}
            )

        gae.sim.at(T_CHECKPOINT, capture)  # runs right after the checkpoint
        gae.sim.run_until(T_CHECKPOINT)

        reset_id_counters()
        restored = restore_gae(path)
        client = restored.client("alice", "pw")
        restored_job = restored.scheduler.jobs()[0]
        assert {
            t.task_id: client.call("jobmon.job_status", t.task_id)
            for t in restored_job.tasks
        } == captured["status"]
        assert client.call("system.observability") == captured["obs"]
        assert client.call(
            "estimator.estimate_runtime", {"owner": "alice", "nodes": 1}
        ) == captured["est"]

    def test_restore_does_not_mutate_checkpoint_file(self, tmp_path):
        path = str(tmp_path / "ckpt.sqlite")
        gae, _ = build_workload()
        Checkpointer(gae).checkpoint_at(T_CHECKPOINT, path)
        gae.sim.run_until(T_CHECKPOINT)

        reset_id_counters()
        first = run_to_completion(restore_gae(path))
        reset_id_counters()
        second = run_to_completion(restore_gae(path))
        assert first == second


class TestKillAndRestore:
    def test_recovery_resumes_and_completes_every_job(self, tmp_path):
        """Kill mid-workload; the restored GAE finishes with the same
        per-job final statuses as the uninterrupted run."""
        gae, _ = build_workload()
        reference = run_to_completion(gae)
        assert set(reference.values()) == {"completed"}

        path = str(tmp_path / "ckpt.sqlite")
        victim, _ = build_workload()
        Checkpointer(victim).checkpoint_at(T_CHECKPOINT, path)
        victim.sim.run_until(T_CHECKPOINT)
        mid_states = {
            t.task_id: t.state.value
            for j in victim.scheduler.jobs()
            for t in j.tasks
        }
        assert "completed" in mid_states.values()  # genuinely mid-workload
        assert set(mid_states.values()) != {"completed"}
        del victim  # the "kill": the process state is gone, only the file survives

        reset_id_counters()
        restored = restore_gae(path)
        assert run_to_completion(restored) == reference

    def test_recovery_with_failed_site_preserves_backup_recovery(self, tmp_path):
        """A site crash before the barrier: the failed-set, resubmissions
        and final statuses survive the kill."""
        t_fail = 150.0

        def run_with_failure():
            gae, job = build_workload()
            gae.sim.run_until(t_fail)
            gae.grid.execution_services["siteB"].fail()
            return gae, job

        gae, _ = run_with_failure()
        reference = run_to_completion(gae)
        assert set(reference.values()) == {"completed"}

        path = str(tmp_path / "ckpt.sqlite")
        victim, _ = run_with_failure()
        Checkpointer(victim).checkpoint_at(T_CHECKPOINT, path)
        barrier = {}
        victim.sim.at(
            T_CHECKPOINT,
            lambda: barrier.update(victim.steering.backup_recovery.export_state()),
        )
        victim.sim.run_until(T_CHECKPOINT)
        del victim

        reset_id_counters()
        restored = restore_gae(path)
        assert restored.grid.execution_services["siteB"].failed is True
        assert restored.steering.backup_recovery.export_state() == barrier
        assert run_to_completion(restored) == reference


class TestCheckpointErrors:
    def test_restore_of_non_checkpoint_raises(self, tmp_path):
        path = str(tmp_path / "empty.sqlite")
        SqliteStore(path).close()
        with pytest.raises(CheckpointError):
            restore_gae(path)

    def test_restore_of_future_format_raises(self, tmp_path):
        path = str(tmp_path / "future.sqlite")
        with SqliteStore(path) as store:
            register_all(store)
            store.put(CHECKPOINT_META, "meta", {"format": CHECKPOINT_FORMAT + 1})
        with pytest.raises(CheckpointError, match="format"):
            restore_gae(path)

    def test_checkpoint_info_counts(self, tmp_path):
        path = str(tmp_path / "info.sqlite")
        gae, job = build_workload()
        gae.sim.run_until(T_CHECKPOINT)
        info = Checkpointer(gae).checkpoint(path)
        assert info.path == path
        assert info.time == T_CHECKPOINT
        assert info.jobs == 1
        assert info.tasks == len(job.tasks)
