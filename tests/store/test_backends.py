"""Unit tests for the StateStore backends (MemoryStore, SqliteStore).

Every behavioural test runs against both backends through one fixture;
cross-backend bit-identity has its own tests at the bottom.
"""

import json
import threading

import pytest

from repro.store import (
    MemoryStore,
    NAMESPACES,
    Namespace,
    NamespaceVersionError,
    SqliteStore,
    UnknownNamespaceError,
    namespace_names,
    register_all,
)
from repro.store.base import decode_value, encode_value
from repro.store.registry import namespace_record

NS = "test.ns"


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        s = MemoryStore()
    else:
        s = SqliteStore(str(tmp_path / "store.sqlite"))
    s.register_namespace(Namespace(NS, 1, "test bucket"))
    yield s
    s.close()


class TestNamespaces:
    def test_unregistered_namespace_raises(self, store):
        with pytest.raises(UnknownNamespaceError):
            store.put("ghost.ns", "k", 1)
        with pytest.raises(UnknownNamespaceError):
            store.get("ghost.ns", "k")
        with pytest.raises(UnknownNamespaceError):
            store.keys("ghost.ns")

    def test_unknown_namespace_error_is_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get("ghost.ns", "k")

    def test_reregistration_is_idempotent(self, store):
        store.register_namespace(Namespace(NS, 1))
        assert store.namespace(NS).version == 1

    def test_version_mismatch_raises(self, store):
        with pytest.raises(NamespaceVersionError) as exc:
            store.register_namespace(Namespace(NS, 2))
        assert exc.value.registered == 1
        assert exc.value.requested == 2

    def test_namespaces_in_registration_order(self, store):
        store.register_namespace(Namespace("b.ns", 1))
        store.register_namespace(Namespace("a.ns", 1))
        names = [ns.name for ns in store.namespaces()]
        assert names == [NS, "b.ns", "a.ns"]

    def test_register_all_is_idempotent(self, store):
        register_all(store)
        register_all(store)
        registered = {ns.name for ns in store.namespaces()}
        assert set(namespace_names()) <= registered

    def test_namespace_record_round_trip(self):
        for ns in NAMESPACES:
            assert namespace_record(ns.name) == ns
        with pytest.raises(KeyError):
            namespace_record("ghost.ns")


class TestKeyValue:
    def test_get_missing_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.get(NS, "ghost")

    def test_get_missing_with_default(self, store):
        assert store.get(NS, "ghost", default=None) is None
        assert store.get(NS, "ghost", default=7) == 7

    def test_put_get_round_trip(self, store):
        value = {"a": 1, "b": [1.5, "x", None, True]}
        store.put(NS, "k", value)
        assert store.get(NS, "k") == value

    def test_overwrite_keeps_first_insertion_order(self, store):
        store.put(NS, "first", 1)
        store.put(NS, "second", 2)
        store.put(NS, "first", 10)
        assert store.keys(NS) == ["first", "second"]
        assert store.get(NS, "first") == 10

    def test_put_many_counts_and_orders(self, store):
        n = store.put_many(NS, [(f"k{i}", i) for i in range(5)])
        assert n == 5
        assert store.keys(NS) == [f"k{i}" for i in range(5)]
        assert store.values(NS) == list(range(5))

    def test_items_pairs(self, store):
        store.put(NS, "a", 1)
        store.put(NS, "b", [2])
        assert store.items(NS) == [("a", 1), ("b", [2])]

    def test_delete(self, store):
        store.put(NS, "k", 1)
        assert store.delete(NS, "k") is True
        assert store.delete(NS, "k") is False
        assert store.count(NS) == 0

    def test_clear(self, store):
        store.put_many(NS, [(f"k{i}", i) for i in range(3)])
        assert store.clear(NS) == 3
        assert store.count(NS) == 0
        assert store.keys(NS) == []

    def test_dict_key_order_preserved(self, store):
        # Insertion order of dict keys is part of several services'
        # semantics; the codec must not sort them.
        value = {"zeta": 1, "alpha": 2, "mid": 3}
        store.put(NS, "k", value)
        assert list(store.get(NS, "k")) == ["zeta", "alpha", "mid"]

    def test_tuples_become_lists(self, store):
        store.put(NS, "k", (1, (2, 3)))
        assert store.get(NS, "k") == [1, [2, 3]]

    def test_float_round_trip_exact(self, store):
        values = [0.1, 1e-308, 1.7976931348623157e308, 3.141592653589793]
        store.put(NS, "floats", values)
        assert store.get(NS, "floats") == values


class TestLifecycle:
    def test_close_idempotent(self, store):
        store.close()
        store.close()

    def test_context_manager_closes(self, tmp_path):
        with SqliteStore(str(tmp_path / "cm.sqlite")) as s:
            s.register_namespace(Namespace(NS, 1))
            s.put(NS, "k", 1)
        with pytest.raises(RuntimeError):
            s.sql_connection()

    def test_sqlite_reopen_preserves_everything(self, tmp_path):
        path = str(tmp_path / "reopen.sqlite")
        with SqliteStore(path) as s:
            s.register_namespace(Namespace(NS, 1, "bucket"))
            s.put(NS, "b", 2)
            s.put(NS, "a", 1)
            s.put(NS, "b", 20)  # overwrite must keep first-insertion order
        with SqliteStore(path) as s:
            assert s.namespace(NS) == Namespace(NS, 1, "bucket")
            assert s.keys(NS) == ["b", "a"]
            assert s.get(NS, "b") == 20

    def test_sqlite_reopen_enforces_versions(self, tmp_path):
        path = str(tmp_path / "versions.sqlite")
        with SqliteStore(path) as s:
            s.register_namespace(Namespace(NS, 1))
        with SqliteStore(path) as s:
            with pytest.raises(NamespaceVersionError):
                s.register_namespace(Namespace(NS, 2))

    def test_sql_connection_shares_storage(self, store):
        conn = store.sql_connection()
        conn.execute("CREATE TABLE extra (x INTEGER)")
        conn.execute("INSERT INTO extra VALUES (42)")
        conn.commit()
        assert conn.execute("SELECT x FROM extra").fetchone() == (42,)
        # KV data and relational tables coexist on the one connection.
        store.put(NS, "k", 1)
        assert store.get(NS, "k") == 1

    def test_concurrent_puts_all_land(self, store):
        def writer(offset):
            for i in range(50):
                store.put(NS, f"k{offset}-{i}", i)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.count(NS) == 200


class TestCrossBackendIdentity:
    def _fill(self, s):
        s.register_namespace(Namespace(NS, 1))
        s.put(NS, "zeta", {"b": 1, "a": [1.5, None, True]})
        s.put(NS, "alpha", (1, 2))
        s.put_many(NS, [("m1", 0.1), ("m2", {"k": "v"})])
        s.put(NS, "zeta", {"b": 2, "a": []})  # overwrite

    def test_reads_bit_identical(self, tmp_path):
        memory = MemoryStore()
        sqlite_store = SqliteStore(str(tmp_path / "x.sqlite"))
        self._fill(memory)
        self._fill(sqlite_store)
        assert memory.keys(NS) == sqlite_store.keys(NS)
        assert json.dumps(memory.items(NS)) == json.dumps(sqlite_store.items(NS))
        sqlite_store.close()

    def test_codec_is_shared(self):
        value = {"z": [1, 2.5, "s", None], "a": {"nested": True}}
        assert decode_value(encode_value(value)) == value
        # compact separators, no key sorting
        assert encode_value({"b": 1, "a": 2}) == '{"b":1,"a":2}'
