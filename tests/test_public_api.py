"""Public-API contract tests: everything advertised must be importable."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ advertises missing {name!r}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.clarens",
            "repro.gridsim",
            "repro.monalisa",
            "repro.accounting",
            "repro.core",
            "repro.core.estimators",
            "repro.core.monitoring",
            "repro.core.steering",
            "repro.workloads",
            "repro.analysis",
            "repro.gae",
            "repro.cli",
            "repro.config",
            "repro.webui",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ advertises missing {name!r}"

    def test_every_public_module_has_docstring(self):
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            mod = importlib.import_module(info.name)
            assert mod.__doc__, f"{info.name} lacks a module docstring"
