"""Unit tests for declarative scenario configuration."""

import json

import pytest

from repro.config import (
    ConfigError,
    FileConfig,
    GridConfig,
    LinkConfig,
    ScenarioConfig,
    SiteConfig,
    WorkloadConfig,
    gae_from_scenario,
    grid_from_config,
    submit_scenario_workload,
)
from repro.gridsim.job import JobState

SCENARIO = {
    "seed": 2005,
    "grid": {
        "sites": [
            {"name": "siteA", "nodes": 1, "background_load": 1.5},
            {"name": "siteB", "nodes": 1},
        ],
        "links": [{"a": "siteA", "b": "siteB", "capacity_mbps": 100.0}],
        "files": [{"name": "d.db", "size_mb": 10.0, "at": "siteB"}],
        "flocking": [["siteA", "siteB"]],
    },
    "policy": {"poll_interval_s": 20.0, "min_elapsed_wall_s": 40.0,
               "slow_rate_threshold": 0.8, "min_improvement_factor": 1.2},
    "workload": {"kind": "prime", "count": 1, "pin_site": "siteA"},
    "horizon_s": 2000.0,
}


class TestParsing:
    def test_round_trip_through_dict(self):
        scenario = ScenarioConfig.from_dict(SCENARIO)
        assert scenario.seed == 2005
        assert [s.name for s in scenario.grid.sites] == ["siteA", "siteB"]
        assert scenario.grid.links[0].capacity_mbps == 100.0
        assert scenario.workload.pin_site == "siteA"
        assert scenario.horizon_s == 2000.0

    def test_from_json_text(self):
        scenario = ScenarioConfig.from_json(json.dumps(SCENARIO))
        assert scenario.grid.files[0].at == "siteB"

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SCENARIO))
        scenario = ScenarioConfig.from_json(path)
        assert scenario.seed == 2005

    def test_unknown_keys_rejected(self):
        bad = dict(SCENARIO, typo_key=1)
        with pytest.raises(ConfigError):
            ScenarioConfig.from_dict(bad)

    def test_unknown_site_keys_rejected(self):
        bad = json.loads(json.dumps(SCENARIO))
        bad["grid"]["sites"][0]["cpus"] = 4
        with pytest.raises(ConfigError):
            ScenarioConfig.from_dict(bad)

    def test_missing_grid_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig.from_dict({"seed": 1})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioConfig.from_json("{nope")

    def test_bad_workload_kind_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(kind="crypto-mining")

    def test_bad_policy_key_rejected(self):
        scenario = ScenarioConfig.from_dict(dict(SCENARIO, policy={"warp": 9}))
        with pytest.raises(ConfigError):
            scenario.steering_policy()

    def test_to_dict_serialisable(self):
        scenario = ScenarioConfig.from_dict(SCENARIO)
        json.dumps(scenario.to_dict())  # must not raise


class TestBuilding:
    def test_grid_from_config(self):
        scenario = ScenarioConfig.from_dict(SCENARIO)
        grid = grid_from_config(scenario.grid, seed=scenario.seed)
        assert sorted(grid.sites) == ["siteA", "siteB"]
        assert grid.site("siteA").nodes[0].load_at(0.0) == 1.5
        assert grid.catalog.replicas("d.db") == {"siteB"}
        assert grid.sites["siteB"].pool in grid.sites["siteA"].pool.flock_targets

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            grid_from_config(GridConfig())

    def test_bad_flocking_pair_rejected(self):
        cfg = GridConfig(sites=[SiteConfig(name="a")], flocking=[["a"]])
        with pytest.raises(ConfigError):
            grid_from_config(cfg)

    def test_full_scenario_runs_figure7_shape(self):
        scenario = ScenarioConfig.from_dict(SCENARIO)
        gae = gae_from_scenario(scenario)
        gae.add_user(scenario.workload.owner, "pw")
        # Seed history so the optimizer has estimates.
        from repro.workloads.generators import prime_job_history_records

        gae.history.extend(prime_job_history_records(n=8, sigma=0.01))
        [task_id] = submit_scenario_workload(gae, scenario)
        gae.start()
        gae.grid.run_until(scenario.horizon_s)
        gae.stop()
        task = gae.steering.subscriber.task(task_id)
        assert task.state is JobState.COMPLETED
        # Pinned to the loaded site, then steered off it.
        assert gae.grid.execution_services["siteB"].pool.has_task(task_id)

    def test_downey_workload_submission(self):
        scenario = ScenarioConfig.from_dict(
            dict(SCENARIO, workload={"kind": "downey", "count": 3})
        )
        gae = gae_from_scenario(scenario)
        gae.add_user(scenario.workload.owner, "pw")
        task_ids = submit_scenario_workload(gae, scenario)
        assert len(task_ids) == 3


class TestCliScenario:
    def test_scenario_run_command(self, tmp_path, capsys):
        from repro.cli import main

        spec = {
            "name": "s",
            "description": "the legacy config grid, run through the scenario engine",
            "grid": SCENARIO["grid"],
            "policy": SCENARIO["policy"],
            "horizon_s": 2000.0,
            "workload": {"shape": "prime", "tasks": 1},
            "slos": [{"metric": "completion_ratio", "op": ">=", "threshold": 1.0}],
        }
        path = tmp_path / "s.json"
        path.write_text(json.dumps(spec))
        assert main(["scenario", "run", str(path), "--out", "-"]) == 0
        out = capsys.readouterr().out
        assert "completion_ratio" in out
        assert "campaign: PASS" in out
