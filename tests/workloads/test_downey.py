"""Unit tests for the synthetic Paragon trace generator."""

import numpy as np
import pytest

from repro.core.estimators.runtime import RuntimeEstimator
from repro.analysis.metrics import summarize_errors
from repro.workloads.downey import DowneyWorkloadGenerator, ParagonAccountingRecord


@pytest.fixture
def gen():
    return DowneyWorkloadGenerator(seed=1995)


class TestRecordShape:
    def test_all_paper_fields_present(self, gen):
        [r] = gen.generate(1)
        for field in (
            "account", "login", "partition", "nodes", "job_type", "status",
            "requested_cpu_hours", "queue", "cpu_charge_rate", "idle_charge_rate",
            "submit_time", "start_time", "end_time",
        ):
            assert hasattr(r, field)

    def test_times_ordered(self, gen):
        for r in gen.generate(50):
            assert r.submit_time <= r.start_time <= r.end_time

    def test_runtime_positive(self, gen):
        assert all(r.runtime_s >= 1.0 for r in gen.generate(50))

    def test_nodes_power_of_two(self, gen):
        for r in gen.generate(50):
            assert r.nodes & (r.nodes - 1) == 0

    def test_arrivals_increasing(self, gen):
        records = gen.generate(20)
        submits = [r.submit_time for r in records]
        assert submits == sorted(submits)

    def test_conversions(self, gen):
        [r] = gen.generate(1)
        record = r.to_task_record()
        assert record.runtime_s == pytest.approx(r.runtime_s)
        spec = r.to_task_spec()
        assert spec.owner == r.login
        task = r.to_task()
        assert task.work_seconds == pytest.approx(max(1.0, r.runtime_s))


class TestStatistics:
    def test_deterministic_per_seed(self):
        a = DowneyWorkloadGenerator(seed=3).generate(20)
        b = DowneyWorkloadGenerator(seed=3).generate(20)
        assert a == b

    def test_different_seeds_differ(self):
        a = DowneyWorkloadGenerator(seed=3).generate(20)
        b = DowneyWorkloadGenerator(seed=4).generate(20)
        assert a != b

    def test_failure_rate_roughly_respected(self):
        gen = DowneyWorkloadGenerator(seed=0, failure_rate=0.2)
        records = gen.generate(500)
        rate = sum(1 for r in records if r.status == "failed") / len(records)
        assert 0.1 < rate < 0.3

    def test_runtimes_span_orders_of_magnitude(self):
        gen = DowneyWorkloadGenerator(seed=1)
        runtimes = [r.runtime_s for r in gen.generate(300)]
        assert max(runtimes) / min(runtimes) > 50.0

    def test_family_runtimes_cluster(self):
        """Similar tasks must have similar runtimes (the §6.1 premise)."""
        gen = DowneyWorkloadGenerator(seed=2, noise_sigma=0.17)
        records = gen.generate(400)
        by_app = {}
        for r in records:
            if r.status == "successful":
                by_app.setdefault(r.application, []).append(r.runtime_s)
        cvs = [
            np.std(v) / np.mean(v) for v in by_app.values() if len(v) >= 5
        ]
        assert cvs, "expected populated families"
        assert float(np.median(cvs)) < 0.35

    def test_requests_overestimate_runtime(self, gen):
        records = [r for r in gen.generate(200) if r.status == "successful"]
        ratios = [r.requested_cpu_hours * 3600.0 / r.runtime_s for r in records]
        assert np.median(ratios) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DowneyWorkloadGenerator(noise_sigma=-1.0)
        with pytest.raises(ValueError):
            DowneyWorkloadGenerator(failure_rate=1.0)
        with pytest.raises(ValueError):
            DowneyWorkloadGenerator(runtime_range_s=(10.0, 5.0))
        with pytest.raises(ValueError):
            DowneyWorkloadGenerator().generate(-1)


class TestHistoryAndTests:
    def test_paper_setup_sizes(self, gen):
        history, tests = gen.history_and_tests(100, 20)
        assert len(history) == 100
        assert len(tests) == 20

    def test_test_jobs_successful_and_seen(self, gen):
        history, tests = gen.history_and_tests(100, 20)
        seen_apps = {r.executable for r in history.successful()}
        for t in tests:
            assert t.status == "successful"
            assert t.application in seen_apps

    def test_estimator_error_in_paper_band(self):
        """The headline Figure 5 property: mean |%err| lands near 13.53 %."""
        values = []
        for seed in (1995, 7, 21, 42):
            gen = DowneyWorkloadGenerator(seed=seed)
            history, tests = gen.history_and_tests(100, 20)
            estimator = RuntimeEstimator(history)
            actuals = [t.runtime_s for t in tests]
            estimates = [estimator.estimate(t.to_task_spec()).value for t in tests]
            values.append(summarize_errors(actuals, estimates).mean_abs_pct)
        assert 5.0 < float(np.mean(values)) < 25.0
