"""Unit tests for the SWF trace reader."""

import numpy as np
import pytest

from repro.core.estimators.runtime import RuntimeEstimator
from repro.workloads.swf import (
    SwfParseError,
    read_swf,
    swf_history_and_tests,
    swf_to_history,
)

HEADER = """\
; SWF test fixture
; Computer: Test Paragon
; MaxJobs: 5
"""


def swf_line(
    job=1, submit=0.0, wait=10.0, run=100.0, procs=4, req_time=200.0,
    status=1, user=3, group=1, app=7, queue=2, partition=1,
):
    # 18 fields, 1-indexed per the SWF spec.
    fields = [
        job, submit, wait, run, procs,
        -1,            # 6 avg cpu time used
        -1,            # 7 used memory
        req_time,      # 8 requested time
        -1,            # 9 requested memory
        -1,            # 10 requested processors? (order per spec: 8 req procs...)
        status,        # 11 status
        user,          # 12 user id
        group,         # 13 group id
        app,           # 14 executable number
        queue,         # 15 queue number
        partition,     # 16 partition number
        -1,            # 17 preceding job
        -1,            # 18 think time
    ]
    return " ".join(str(f) for f in fields)


def synthetic_swf(n=150, seed=0):
    """An SWF text with per-app clustered runtimes."""
    rng = np.random.default_rng(seed)
    lines = [HEADER]
    base = {app: float(rng.uniform(100, 5000)) for app in range(5)}
    t = 0.0
    for i in range(1, n + 1):
        app = int(rng.integers(0, 5))
        run = base[app] * float(rng.lognormal(0.0, 0.15))
        t += float(rng.exponential(300.0))
        # Requests pad the *family* runtime, independently of this run's
        # noise — otherwise regression would back the runtime out exactly.
        req = base[app] * 1.5 * float(rng.uniform(0.8, 1.3))
        lines.append(
            swf_line(job=i, submit=t, run=run, app=app, user=app % 3,
                     req_time=req, status=1 if rng.random() > 0.05 else 0)
        )
    return "\n".join(lines)


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        text = HEADER + "\n" + swf_line() + "\n\n" + swf_line(job=2)
        jobs = read_swf(text)
        assert [j.job_number for j in jobs] == [1, 2]

    def test_fields_mapped(self):
        [job] = read_swf(swf_line(run=123.0, procs=8, user=42, app=9, status=1))
        assert job.run_time == 123.0
        assert job.processors == 8
        assert job.user_id == 42
        assert job.executable_number == 9
        assert job.successful

    def test_failed_status(self):
        [job] = read_swf(swf_line(status=0))
        assert not job.successful

    def test_limit(self):
        text = "\n".join(swf_line(job=i) for i in range(1, 11))
        assert len(read_swf(text, limit=4)) == 4

    def test_short_line_rejected(self):
        with pytest.raises(SwfParseError):
            read_swf("1 2 3")

    def test_non_numeric_rejected(self):
        bad = swf_line().replace("100.0", "abc")
        with pytest.raises(SwfParseError):
            read_swf(bad)

    def test_file_path_source(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(HEADER + swf_line())
        assert len(read_swf(path)) == 1


class TestConversion:
    def test_task_record_mapping(self):
        [job] = read_swf(swf_line(run=100.0, wait=10.0, submit=5.0, req_time=200.0))
        record = job.to_task_record()
        assert record.runtime_s == 100.0
        assert record.requested_cpu_hours == pytest.approx(200.0 / 3600.0)
        assert record.start_time == 15.0
        assert record.end_time == 115.0
        assert record.executable == "app7"
        assert record.status == "successful"

    def test_unknown_request_falls_back_to_runtime(self):
        [job] = read_swf(swf_line(req_time=-1, run=100.0))
        assert job.to_task_record().requested_cpu_hours == pytest.approx(100.0 / 3600.0)

    def test_to_task(self):
        [job] = read_swf(swf_line(run=100.0, procs=2))
        task = job.to_task()
        assert task.work_seconds == 100.0
        assert task.spec.nodes == 2

    def test_history_conversion(self):
        jobs = read_swf(synthetic_swf(50))
        history = swf_to_history(jobs)
        assert len(history) == 50


class TestFigure5OnSwf:
    def test_history_and_tests_protocol(self):
        jobs = read_swf(synthetic_swf(160))
        history, tests = swf_history_and_tests(jobs, n_history=100, n_tests=20)
        assert len(history) == 100
        assert len(tests) == 20
        assert all(t.successful for t in tests)

    def test_trace_too_short_rejected(self):
        jobs = read_swf(synthetic_swf(50))
        with pytest.raises(SwfParseError):
            swf_history_and_tests(jobs, n_history=100, n_tests=20)

    def test_estimator_works_on_swf_trace(self):
        """The full Figure 5 pipeline over an SWF source."""
        from repro.analysis.metrics import summarize_errors

        jobs = read_swf(synthetic_swf(200, seed=4))
        history, tests = swf_history_and_tests(jobs, n_history=120, n_tests=20)
        estimator = RuntimeEstimator(history)
        actuals = [t.run_time for t in tests]
        estimates = [estimator.estimate(t.to_task().spec).value for t in tests]
        summary = summarize_errors(actuals, estimates)
        assert summary.mean_abs_pct < 40.0  # clustered runtimes are learnable
