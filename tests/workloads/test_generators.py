"""Unit tests for concrete job generators."""

import numpy as np
import pytest

from repro.gridsim.job import JobState
from repro.workloads.generators import (
    PRIME_JOB_FREE_CPU_SECONDS,
    bag_of_batch_tasks,
    count_primes,
    make_prime_count_task,
    physics_analysis_job,
    prime_job_history_records,
)


class TestCountPrimes:
    """Known prime-counting values pin the real workload's correctness."""

    @pytest.mark.parametrize(
        "limit,expected",
        [(0, 0), (2, 0), (3, 1), (10, 4), (100, 25), (1000, 168), (10000, 1229)],
    )
    def test_known_values(self, limit, expected):
        assert count_primes(limit) == expected


class TestPrimeCountTask:
    def test_defaults_match_paper(self):
        t = make_prime_count_task()
        assert t.work_seconds == PRIME_JOB_FREE_CPU_SECONDS == 283.0
        assert t.spec.executable == "prime_counter"
        assert t.spec.requested_cpu_hours == pytest.approx(283.0 / 3600.0)
        assert not t.checkpointable

    def test_checkpointable_variant(self):
        assert make_prime_count_task(checkpointable=True).checkpointable

    def test_history_records_near_283(self):
        records = prime_job_history_records(n=10, sigma=0.02)
        runtimes = [r.runtime_s for r in records]
        assert np.mean(runtimes) == pytest.approx(283.0, rel=0.05)
        assert all(r.executable == "prime_counter" for r in records)

    def test_history_records_deterministic(self):
        a = [r.runtime_s for r in prime_job_history_records(seed=3)]
        b = [r.runtime_s for r in prime_job_history_records(seed=3)]
        assert a == b


class TestPhysicsAnalysisJob:
    def test_dag_shape(self):
        job = physics_analysis_job("alice", n_analysis_tasks=3)
        assert len(job.tasks) == 5  # stage + 3 + merge
        stage = job.tasks[0]
        merge = job.tasks[-1]
        assert job.parents(stage.task_id) == ()
        for analysis in job.tasks[1:-1]:
            assert job.parents(analysis.task_id) == (stage.task_id,)
        assert set(job.parents(merge.task_id)) == {
            t.task_id for t in job.tasks[1:-1]
        }

    def test_file_flow(self):
        job = physics_analysis_job("alice", n_analysis_tasks=2, dataset_files=("raw.dat",))
        stage = job.tasks[0]
        assert stage.spec.input_files == ("raw.dat",)
        assert stage.spec.output_files == ("staged.dat",)
        merge = job.tasks[-1]
        assert merge.spec.input_files == ("histo_00.root", "histo_01.root")

    def test_jitter_with_rng(self):
        rng = np.random.default_rng(0)
        job = physics_analysis_job("alice", n_analysis_tasks=4, rng=rng)
        works = [t.work_seconds for t in job.tasks[1:-1]]
        assert len(set(works)) > 1  # jittered

    def test_validation(self):
        with pytest.raises(ValueError):
            physics_analysis_job("alice", n_analysis_tasks=0)


class TestBagOfBatchTasks:
    def test_shape_and_determinism(self):
        a = bag_of_batch_tasks("u", 10, np.random.default_rng(1))
        assert len(a.tasks) == 10
        assert a.dependencies == {}
        b = bag_of_batch_tasks("u", 10, np.random.default_rng(1))
        assert [t.work_seconds for t in a.tasks] == [t.work_seconds for t in b.tasks]

    def test_mixed_priorities(self):
        job = bag_of_batch_tasks("u", 30, np.random.default_rng(2))
        assert len({t.priority for t in job.tasks}) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            bag_of_batch_tasks("u", 0, np.random.default_rng(0))
