"""Unit tests for trace CSV persistence."""

import pytest

from repro.workloads.downey import DowneyWorkloadGenerator
from repro.workloads.traces import read_trace_csv, write_trace_csv


@pytest.fixture
def records():
    return DowneyWorkloadGenerator(seed=11).generate(25)


class TestTraceCsv:
    def test_round_trip_through_text(self, records):
        text = write_trace_csv(records)
        back = read_trace_csv(text)
        assert back == records

    def test_round_trip_through_file(self, records, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace_csv(records, path)
        back = read_trace_csv(path)
        assert back == records

    def test_header_present(self, records):
        text = write_trace_csv(records)
        header = text.splitlines()[0]
        assert "login" in header
        assert "requested_cpu_hours" in header

    def test_numeric_types_restored(self, records):
        back = read_trace_csv(write_trace_csv(records))
        assert isinstance(back[0].nodes, int)
        assert isinstance(back[0].submit_time, float)

    def test_empty_trace(self):
        assert read_trace_csv(write_trace_csv([])) == []
