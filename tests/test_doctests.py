"""Run the doctests embedded in module docstrings.

These are the examples users read first; they must stay true.
"""

import doctest

import pytest

import repro.core.estimators.service
import repro.core.estimators.similarity
import repro.core.estimators.transfer_time
import repro.gae
import repro.gridsim.grid
import repro.gridsim.rng
import repro.scenarios.slo
import repro.scenarios.spec

MODULES = [
    repro.gridsim.grid,
    repro.gridsim.rng,
    repro.gae,
    repro.core.estimators.service,
    repro.core.estimators.similarity,
    repro.core.estimators.transfer_time,
    repro.scenarios.spec,
    repro.scenarios.slo,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    from repro.gridsim.job import reset_id_counters

    reset_id_counters()
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
