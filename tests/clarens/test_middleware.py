"""Unit tests for the call pipeline: CallContext, composition, built-ins."""

import pytest

from repro.clarens.errors import AuthorizationError, RemoteFault
from repro.clarens.middleware import (
    CallContext,
    MetricsMiddleware,
    TracingMiddleware,
    build_pipeline,
)
from repro.clarens.server import ClarensHost
from repro.clarens.telemetry import CallStats, TraceLog


class TestCallContext:
    def test_defaults(self):
        ctx = CallContext("svc.m", [1, 2])
        assert ctx.method_path == "svc.m"
        assert ctx.params == [1, 2]
        assert ctx.principal is None
        assert ctx.outcome == ""
        assert ctx.transport == "inproc"

    def test_meta_created_lazily(self):
        ctx = CallContext("svc.m", [])
        assert ctx.metadata is None
        ctx.meta()["k"] = "v"
        assert ctx.metadata == {"k": "v"}
        assert ctx.meta() is ctx.metadata


class TestBuildPipeline:
    def test_outermost_first_ordering(self):
        order = []

        def mw(tag):
            def middleware(ctx, call_next):
                order.append(f"{tag}:in")
                result = call_next(ctx)
                order.append(f"{tag}:out")
                return result

            return middleware

        handler = build_pipeline([mw("a"), mw("b")], lambda ctx: "result")
        assert handler(CallContext("x.y", [])) == "result"
        assert order == ["a:in", "b:in", "b:out", "a:out"]

    def test_empty_chain_is_just_the_terminal(self):
        handler = build_pipeline([], lambda ctx: 42)
        assert handler(CallContext("x.y", [])) == 42

    def test_middleware_can_short_circuit(self):
        def gate(ctx, call_next):
            raise AuthorizationError("closed")

        invoked = []
        handler = build_pipeline([gate], lambda ctx: invoked.append(1))
        with pytest.raises(AuthorizationError):
            handler(CallContext("x.y", []))
        assert not invoked


class TestMetricsMiddleware:
    def test_records_latency_and_outcome(self):
        stats = CallStats()
        handler = build_pipeline([MetricsMiddleware(stats)], lambda ctx: "ok")
        handler(CallContext("a.b", []))
        summary = stats.latency_summary("a.b")
        assert summary["count"] == 1
        assert summary["faults"] == 0
        assert summary["mean_ms"] >= 0.0

    def test_counts_faults(self):
        stats = CallStats()

        def boom(ctx):
            raise RemoteFault("no")

        handler = build_pipeline([MetricsMiddleware(stats)], boom)
        with pytest.raises(RemoteFault):
            handler(CallContext("a.b", []))
        assert stats.faults == 1
        assert stats.latency_summary("a.b")["faults"] == 1


class TestTracingMiddleware:
    def test_stamps_duration_and_records(self):
        log = TraceLog()
        handler = build_pipeline([TracingMiddleware(log)], lambda ctx: "ok")
        ctx = CallContext("a.b", [], trace_id="t-1", started=12.5)
        handler(ctx)
        assert ctx.outcome == "ok"
        assert ctx.duration_ms >= 0.0
        (record,) = log.snapshot()
        assert record.trace_id == "t-1"
        assert record.started == 12.5
        assert record.outcome == "ok"

    def test_fault_recorded_with_code(self):
        log = TraceLog()

        def boom(ctx):
            raise AuthorizationError("denied")

        handler = build_pipeline([TracingMiddleware(log)], boom)
        with pytest.raises(AuthorizationError):
            handler(CallContext("a.b", [], trace_id="t-2"))
        (record,) = log.snapshot()
        assert record.outcome == "fault"
        assert record.code == 403
        assert "denied" in record.error


class TestHostIntegration:
    def test_default_chain_is_rebuilt_on_add_middleware(self):
        host = ClarensHost("h")
        calls = []

        @host.add_middleware
        def spy(ctx, call_next):
            calls.append(ctx.trace_id)
            return call_next(ctx)

        host.dispatch("system.ping", [], "", trace_id="t-3")
        assert calls == ["t-3"]

    def test_context_entry_cached_for_terminal_invoker(self):
        host = ClarensHost("h")
        entries = []

        def spy(ctx, call_next):
            entries.append(ctx.entry)
            return call_next(ctx)

        host.add_middleware(spy)
        host.dispatch("system.ping", [], "")
        # ACL middleware runs before user middlewares and caches the entry.
        assert entries[0] is not None
        assert entries[0].name == "ping"
