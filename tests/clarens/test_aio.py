"""Integration tests for the asyncio framed server + AsyncSocketTransport."""

import threading

import pytest

from repro.clarens.aio import AsyncSocketServerHandle
from repro.clarens.client import ClarensClient
from repro.clarens.errors import (
    AuthenticationError,
    ProtocolError,
    RemoteFault,
    TransportClosedError,
    TransportError,
)
from repro.clarens.server import ClarensHost
from repro.clarens.transport import AsyncSocketTransport


class Echo:
    def echo(self, value):
        """Return the argument unchanged."""
        return value

    def boom(self):
        raise RuntimeError("kaput")


@pytest.fixture
def host():
    h = ClarensHost("t")
    h.users.add_user("u", "p", groups=("g",))
    h.acl.allow("echo.*", groups=("g",))
    h.register("echo", Echo())
    return h


@pytest.fixture
def server(host):
    with AsyncSocketServerHandle(host, workers=2) as handle:
        yield handle


@pytest.mark.parametrize("codec", ["json", "xmlrpc"])
class TestRoundTrip:
    def test_call_round_trip(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            token = t.call("system.login", ["u", "p"])
            assert t.call("echo.echo", [{"a": [1, 2]}], token) == {"a": [1, 2]}

    def test_negotiated_codec_reported(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            assert t.codec.name == codec
            assert t.server_name == "t"

    def test_fault_rehydrated(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            with pytest.raises(AuthenticationError):
                t.call("echo.echo", ["x"], token="")
            token = t.call("system.login", ["u", "p"])
            with pytest.raises(RemoteFault, match="kaput"):
                t.call("echo.boom", [], token)

    def test_pipelined_batch_ordered(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            token = t.call("system.login", ["u", "p"])
            calls = [("echo.echo", [i]) for i in range(150)]
            outcomes = t.call_pipelined(calls, token=token, window=32)
            assert outcomes == [(True, i) for i in range(150)]

    def test_pipelined_fault_isolated(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            token = t.call("system.login", ["u", "p"])
            calls = [("echo.echo", [0]), ("echo.boom", []), ("echo.echo", [2])]
            outcomes = t.call_pipelined(calls, token=token)
            assert outcomes[0] == (True, 0)
            ok, fault = outcomes[1]
            assert not ok and isinstance(fault, RemoteFault)
            assert outcomes[2] == (True, 2)


class TestNegotiation:
    def test_default_prefers_json(self, server):
        with AsyncSocketTransport(server.address) as t:
            assert t.codec.name == "json"

    def test_unknown_codec_rejected_by_server(self, server):
        with pytest.raises(ProtocolError, match="no common codec"):
            AsyncSocketTransport(server.address, codec="msgpack")

    def test_server_codec_subset(self, host):
        with AsyncSocketServerHandle(host, codecs=["xmlrpc"]) as handle:
            with AsyncSocketTransport(handle.address) as t:
                assert t.codec.name == "xmlrpc"
            with pytest.raises(ProtocolError):
                AsyncSocketTransport(handle.address, codec="json")

    def test_server_rejects_unknown_codec_at_init(self, host):
        with pytest.raises(ProtocolError):
            AsyncSocketServerHandle(host, codecs=["msgpack"])


class TestLifecycle:
    def test_url_and_address(self, server):
        bind, port = server.address
        assert bind == "127.0.0.1"
        assert server.url == f"clarens://127.0.0.1:{port}"

    def test_address_before_start_raises(self, host):
        handle = AsyncSocketServerHandle(host)
        with pytest.raises(TransportError):
            handle.address

    def test_shutdown_idempotent(self, host):
        handle = AsyncSocketServerHandle(host).start()
        handle.shutdown()
        handle.shutdown()

    def test_transport_close_idempotent(self, server):
        t = AsyncSocketTransport(server.address)
        t.close()
        t.close()
        assert t.closed

    def test_call_after_close_raises(self, server):
        t = AsyncSocketTransport(server.address)
        t.close()
        with pytest.raises(TransportClosedError):
            t.call("system.ping", [])

    def test_concurrent_close_unblocks_inflight(self, server):
        t = AsyncSocketTransport(server.address)
        token = t.call("system.login", ["u", "p"])
        errors = []

        def hammer():
            try:
                for _ in range(100):
                    t.call_pipelined(
                        [("echo.echo", [i]) for i in range(64)], token=token
                    )
            except TransportClosedError:
                errors.append("closed")
            except TransportError:
                errors.append("transport")

        worker = threading.Thread(target=hammer)
        worker.start()
        t.close()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert errors and errors[0] in ("closed", "transport")

    def test_server_shutdown_surfaces_transport_error(self, host):
        handle = AsyncSocketServerHandle(host).start()
        t = AsyncSocketTransport(handle.address)
        t.call("system.ping", [])
        handle.shutdown()
        with pytest.raises((TransportError, ProtocolError)):
            for _ in range(5):
                t.call("system.ping", [])


class TestTelemetry:
    def test_per_transport_label(self, server, host):
        with AsyncSocketTransport(server.address, codec="json") as t:
            t.call("system.ping", [])
        snapshot = host.stats.snapshot()
        assert snapshot["per_transport"].get("async+json", 0) >= 1

    def test_client_over_async_transport(self, server):
        client = ClarensClient(server.url, codec="json")
        try:
            client.login("u", "p")
            assert client.call("echo.echo", "hi") == "hi"
            results = client.batch_reads(
                [("echo.echo", 1), ("echo.echo", 2), ("echo.echo", 1)]
            )
            assert [r.result for r in results] == [1, 2, 1]
            assert all(r.ok for r in results)
        finally:
            client.close()


class Gated:
    """A slow/fast method pair: ``slow`` blocks until ``fast`` has run.

    With two workers a pipelined [slow, fast] batch completes out of
    issue order, exercising the reply-reordering path.
    """

    def __init__(self):
        self.gate = threading.Event()

    def slow(self, value):
        assert self.gate.wait(timeout=10.0), "fast call never arrived"
        return value

    def fast(self, value):
        self.gate.set()
        return value


@pytest.mark.parametrize("codec", ["json", "xmlrpc"])
class TestTraceIdPropagation:
    """Wire trace ids must reach the host pipeline under every codec."""

    def test_call_carries_trace_id_to_host(self, server, host, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            token = t.call("system.login", ["u", "p"])
            t.call("echo.echo", ["x"], token, trace_id=f"trace-{codec}")
        records = host.traces.snapshot(trace_id=f"trace-{codec}")
        assert [r.method for r in records] == ["echo.echo"]
        assert records[0].transport == f"async+{codec}"

    def test_pipelined_batch_shares_one_trace(self, server, host, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            token = t.call("system.login", ["u", "p"])
            calls = [("echo.echo", [i]) for i in range(20)]
            outcomes = t.call_pipelined(
                calls, token=token, trace_id=f"batch-{codec}"
            )
        assert outcomes == [(True, i) for i in range(20)]
        records = host.traces.snapshot(trace_id=f"batch-{codec}")
        assert len(records) == 20
        assert {r.method for r in records} == {"echo.echo"}

    def test_out_of_order_completion_preserves_order_and_trace(
        self, host, codec
    ):
        gated = Gated()
        host.acl.allow("gated.*", groups=("g",))
        host.register("gated", gated)
        with AsyncSocketServerHandle(host, workers=2, dispatch_batch=1) as handle:
            with AsyncSocketTransport(handle.address, codec=codec) as t:
                token = t.call("system.login", ["u", "p"])
                outcomes = t.call_pipelined(
                    [("gated.slow", ["s"]), ("gated.fast", ["f"])],
                    token=token, trace_id=f"ooo-{codec}",
                )
        # Results come back in issue order even though 'fast' finished first.
        assert outcomes == [(True, "s"), (True, "f")]
        records = host.traces.snapshot(trace_id=f"ooo-{codec}")
        assert sorted(r.method for r in records) == ["gated.fast", "gated.slow"]


class TestClientSpans:
    """AsyncSocketTransport emits client:<method> spans when given a tracer."""

    def _tracer(self):
        import time as _time

        from repro.observability.tracing import Tracer

        return Tracer(_time.monotonic)

    def test_pipelined_spans_one_per_call(self, server, host):
        tracer = self._tracer()
        with AsyncSocketTransport(
            server.address, codec="json", tracer=tracer
        ) as t:
            token = t.call("system.login", ["u", "p"])
            t.call_pipelined(
                [("echo.echo", [i]) for i in range(5)], token=token
            )
        spans = [s for s in tracer.spans() if s.name == "client:echo.echo"]
        assert len(spans) == 5
        assert all(s.status == "ok" and s.end is not None for s in spans)
        assert sorted(s.attributes["slot"] for s in spans) == list(range(5))
        # A batch trace id was minted and shared; the host saw the same id.
        trace_ids = {s.trace_id for s in spans}
        assert len(trace_ids) == 1
        records = host.traces.snapshot(trace_id=trace_ids.pop())
        assert sum(r.method == "echo.echo" for r in records) == 5

    def test_out_of_order_spans_end_as_replies_arrive(self, host):
        gated = Gated()
        host.acl.allow("gated.*", groups=("g",))
        host.register("gated", gated)
        tracer = self._tracer()
        with AsyncSocketServerHandle(host, workers=2, dispatch_batch=1) as handle:
            with AsyncSocketTransport(
                handle.address, codec="json", tracer=tracer
            ) as t:
                token = t.call("system.login", ["u", "p"])
                t.call_pipelined(
                    [("gated.slow", ["s"]), ("gated.fast", ["f"])],
                    token=token,
                )
        by_name = {
            s.name: s for s in tracer.spans() if s.name.startswith("client:gated")
        }
        slow, fast = by_name["client:gated.slow"], by_name["client:gated.fast"]
        assert slow.status == fast.status == "ok"
        # 'fast' was issued second but its reply (and span end) came first.
        assert fast.end <= slow.end

    def test_explicit_trace_id_not_overridden(self, server):
        tracer = self._tracer()
        with AsyncSocketTransport(
            server.address, codec="json", tracer=tracer
        ) as t:
            token = t.call("system.login", ["u", "p"])
            t.call_pipelined(
                [("echo.echo", [1])], token=token, trace_id="mine"
            )
        spans = [s for s in tracer.spans() if s.name == "client:echo.echo"]
        assert spans and all(s.trace_id == "mine" for s in spans)
