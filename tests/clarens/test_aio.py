"""Integration tests for the asyncio framed server + AsyncSocketTransport."""

import threading

import pytest

from repro.clarens.aio import AsyncSocketServerHandle
from repro.clarens.client import ClarensClient
from repro.clarens.errors import (
    AuthenticationError,
    ProtocolError,
    RemoteFault,
    TransportClosedError,
    TransportError,
)
from repro.clarens.server import ClarensHost
from repro.clarens.transport import AsyncSocketTransport


class Echo:
    def echo(self, value):
        """Return the argument unchanged."""
        return value

    def boom(self):
        raise RuntimeError("kaput")


@pytest.fixture
def host():
    h = ClarensHost("t")
    h.users.add_user("u", "p", groups=("g",))
    h.acl.allow("echo.*", groups=("g",))
    h.register("echo", Echo())
    return h


@pytest.fixture
def server(host):
    with AsyncSocketServerHandle(host, workers=2) as handle:
        yield handle


@pytest.mark.parametrize("codec", ["json", "xmlrpc"])
class TestRoundTrip:
    def test_call_round_trip(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            token = t.call("system.login", ["u", "p"])
            assert t.call("echo.echo", [{"a": [1, 2]}], token) == {"a": [1, 2]}

    def test_negotiated_codec_reported(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            assert t.codec.name == codec
            assert t.server_name == "t"

    def test_fault_rehydrated(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            with pytest.raises(AuthenticationError):
                t.call("echo.echo", ["x"], token="")
            token = t.call("system.login", ["u", "p"])
            with pytest.raises(RemoteFault, match="kaput"):
                t.call("echo.boom", [], token)

    def test_pipelined_batch_ordered(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            token = t.call("system.login", ["u", "p"])
            calls = [("echo.echo", [i]) for i in range(150)]
            outcomes = t.call_pipelined(calls, token=token, window=32)
            assert outcomes == [(True, i) for i in range(150)]

    def test_pipelined_fault_isolated(self, server, codec):
        with AsyncSocketTransport(server.address, codec=codec) as t:
            token = t.call("system.login", ["u", "p"])
            calls = [("echo.echo", [0]), ("echo.boom", []), ("echo.echo", [2])]
            outcomes = t.call_pipelined(calls, token=token)
            assert outcomes[0] == (True, 0)
            ok, fault = outcomes[1]
            assert not ok and isinstance(fault, RemoteFault)
            assert outcomes[2] == (True, 2)


class TestNegotiation:
    def test_default_prefers_json(self, server):
        with AsyncSocketTransport(server.address) as t:
            assert t.codec.name == "json"

    def test_unknown_codec_rejected_by_server(self, server):
        with pytest.raises(ProtocolError, match="no common codec"):
            AsyncSocketTransport(server.address, codec="msgpack")

    def test_server_codec_subset(self, host):
        with AsyncSocketServerHandle(host, codecs=["xmlrpc"]) as handle:
            with AsyncSocketTransport(handle.address) as t:
                assert t.codec.name == "xmlrpc"
            with pytest.raises(ProtocolError):
                AsyncSocketTransport(handle.address, codec="json")

    def test_server_rejects_unknown_codec_at_init(self, host):
        with pytest.raises(ProtocolError):
            AsyncSocketServerHandle(host, codecs=["msgpack"])


class TestLifecycle:
    def test_url_and_address(self, server):
        bind, port = server.address
        assert bind == "127.0.0.1"
        assert server.url == f"clarens://127.0.0.1:{port}"

    def test_address_before_start_raises(self, host):
        handle = AsyncSocketServerHandle(host)
        with pytest.raises(TransportError):
            handle.address

    def test_shutdown_idempotent(self, host):
        handle = AsyncSocketServerHandle(host).start()
        handle.shutdown()
        handle.shutdown()

    def test_transport_close_idempotent(self, server):
        t = AsyncSocketTransport(server.address)
        t.close()
        t.close()
        assert t.closed

    def test_call_after_close_raises(self, server):
        t = AsyncSocketTransport(server.address)
        t.close()
        with pytest.raises(TransportClosedError):
            t.call("system.ping", [])

    def test_concurrent_close_unblocks_inflight(self, server):
        t = AsyncSocketTransport(server.address)
        token = t.call("system.login", ["u", "p"])
        errors = []

        def hammer():
            try:
                for _ in range(100):
                    t.call_pipelined(
                        [("echo.echo", [i]) for i in range(64)], token=token
                    )
            except TransportClosedError:
                errors.append("closed")
            except TransportError:
                errors.append("transport")

        worker = threading.Thread(target=hammer)
        worker.start()
        t.close()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert errors and errors[0] in ("closed", "transport")

    def test_server_shutdown_surfaces_transport_error(self, host):
        handle = AsyncSocketServerHandle(host).start()
        t = AsyncSocketTransport(handle.address)
        t.call("system.ping", [])
        handle.shutdown()
        with pytest.raises((TransportError, ProtocolError)):
            for _ in range(5):
                t.call("system.ping", [])


class TestTelemetry:
    def test_per_transport_label(self, server, host):
        with AsyncSocketTransport(server.address, codec="json") as t:
            t.call("system.ping", [])
        snapshot = host.stats.snapshot()
        assert snapshot["per_transport"].get("async+json", 0) >= 1

    def test_client_over_async_transport(self, server):
        client = ClarensClient(server.url, codec="json")
        try:
            client.login("u", "p")
            assert client.call("echo.echo", "hi") == "hi"
            results = client.batch_reads(
                [("echo.echo", 1), ("echo.echo", 2), ("echo.echo", 1)]
            )
            assert [r.result for r in results] == [1, 2, 1]
            assert all(r.ok for r in results)
        finally:
            client.close()
