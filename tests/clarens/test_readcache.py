"""Unit tests for the epoch-keyed read cache and request coalescing."""

import pytest

from repro.clarens.client import ClarensClient
from repro.clarens.readcache import (
    EpochRegistry,
    ReadCache,
    ReadPolicy,
    canonical_args,
)
from repro.clarens.registry import clarens_method
from repro.clarens.server import ClarensHost
from repro.clarens.transport import LoopbackTransport
from repro.observability.metrics import MetricsRegistry


class TestEpochRegistry:
    def test_bump_increments_and_get_defaults_to_zero(self):
        epochs = EpochRegistry()
        assert epochs.get("scheduler") == 0
        assert epochs.bump("scheduler") == 1
        assert epochs.bump("scheduler") == 2
        assert epochs.get("scheduler") == 2

    def test_bumper_registers_immediately_and_ignores_arguments(self):
        epochs = EpochRegistry()
        bump = epochs.bumper("monitoring")
        assert "monitoring" in epochs.names()
        bump("positional", keyword=1)
        assert epochs.get("monitoring") == 1

    def test_vector_reads_unregistered_names_as_zero(self):
        epochs = EpochRegistry()
        epochs.bump("a")
        assert epochs.vector(("a", "never-bumped")) == (1, 0)

    def test_wildcard_expands_sorted_and_grows_with_new_members(self):
        epochs = EpochRegistry()
        epochs.bump("pool:siteB")
        epochs.bump("pool:siteA")
        epochs.bump("pool:siteA")
        # sorted by name: siteA then siteB
        assert epochs.vector(("pool:*",)) == (2, 1)
        # A new member changes the vector *length*, so every dependent
        # cache key conservatively misses.
        epochs.register("pool:siteC")
        assert epochs.vector(("pool:*",)) == (2, 1, 0)

    def test_snapshot_is_a_plain_dict(self):
        epochs = EpochRegistry()
        epochs.bump("x")
        assert epochs.snapshot() == {"x": 1}


class TestReadPolicy:
    def test_rejects_empty_dependencies(self):
        with pytest.raises(ValueError):
            ReadPolicy(depends_on=())

    def test_rejects_bare_star(self):
        with pytest.raises(ValueError):
            ReadPolicy(depends_on=("*",))


class TestCanonicalArgs:
    def test_containers_freeze_to_hashable_forms(self):
        key = canonical_args([[1, 2], {"b": 2, "a": [3]}, "s", 1.5, None])
        assert key == ((1, 2), ("__dict__", (("a", (3,)), ("b", 2))), "s", 1.5, None)
        hash(key)  # must be usable as a dict key

    def test_unhashable_leaves_yield_none(self):
        assert canonical_args([object()]) is None
        assert canonical_args([{"k": object()}]) is None

    def test_argument_order_distinguishes_keys(self):
        assert canonical_args([1, 2]) != canonical_args([2, 1])


class TestReadCache:
    def test_hit_miss_invalidation_lifecycle(self):
        epochs = EpochRegistry()
        cache = ReadCache(epochs)
        vec = epochs.vector(("scheduler",))
        assert cache.lookup("m", (), vec) is ReadCache._MISS
        cache.store("m", (), vec, "answer")
        assert cache.lookup("m", (), vec) == "answer"
        epochs.bump("scheduler")
        stale = cache.lookup("m", (), epochs.vector(("scheduler",)))
        assert stale is ReadCache._MISS
        counters = cache.snapshot()["per_method"]["m"]
        assert counters == {
            "hits": 1, "misses": 1, "invalidations": 1, "coalesced": 0,
        }

    def test_lru_eviction_is_counted(self):
        epochs = EpochRegistry()
        cache = ReadCache(epochs, capacity=2)
        vec = ()
        cache.store("m", "a", vec, 1)
        cache.store("m", "b", vec, 2)
        assert cache.lookup("m", "a", vec) == 1  # refresh "a"
        cache.store("m", "c", vec, 3)  # evicts "b", the LRU entry
        assert cache.lookup("m", "b", vec) is ReadCache._MISS
        assert cache.lookup("m", "a", vec) == 1
        assert cache.lookup("m", "c", vec) == 3
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_cached_helper_recomputes_only_after_bump(self):
        epochs = EpochRegistry()
        cache = ReadCache(epochs)
        calls = []
        compute = lambda: calls.append(1) or len(calls)  # noqa: E731
        assert cache.cached("webui.jobs", (), ("scheduler",), compute) == 1
        assert cache.cached("webui.jobs", (), ("scheduler",), compute) == 1
        epochs.bump("scheduler")
        assert cache.cached("webui.jobs", (), ("scheduler",), compute) == 2

    def test_disabled_cache_always_computes(self):
        cache = ReadCache(EpochRegistry(), enabled=False)
        calls = []
        compute = lambda: calls.append(1) or len(calls)  # noqa: E731
        assert cache.cached("m", (), ("x",), compute) == 1
        assert cache.cached("m", (), ("x",), compute) == 2
        assert len(cache) == 0

    def test_clear_drops_entries(self):
        cache = ReadCache(EpochRegistry())
        cache.store("m", "a", (), 1)
        assert cache.clear() == 1
        assert cache.lookup("m", "a", ()) is ReadCache._MISS

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ReadCache(EpochRegistry(), capacity=0)

    def test_bind_metrics_backfills_existing_counts(self):
        epochs = EpochRegistry()
        cache = ReadCache(epochs)
        cache.lookup("m", (), ())          # miss before binding
        registry = MetricsRegistry()
        cache.bind_metrics(registry)
        cache.store("m", (), (), "v")
        cache.lookup("m", (), ())          # hit after binding
        counters = registry.counter("gae_rpc_cache_misses_total")
        assert counters.value(method="m") == 1.0
        hits = registry.counter("gae_rpc_cache_hits_total")
        assert hits.value(method="m") == 1.0


class _CountingReads:
    """A service whose read method counts real executions."""

    def __init__(self):
        self.executions = 0
        self.state = {"t1": "queued"}
        self.epochs = None  # set by the rig; mutations bump "scheduler"

    @clarens_method(cache=ReadPolicy(depends_on=("scheduler",)))
    def status(self, task_id):
        self.executions += 1
        return {"task": task_id, "status": self.state.get(task_id, "unknown")}

    @clarens_method
    def mutate(self, task_id, status):
        self.state[task_id] = status
        if self.epochs is not None:
            self.epochs.bump("scheduler")
        return True

    @clarens_method(cache=ReadPolicy(depends_on=("scheduler",)), pass_principal=True)
    def mine(self, principal):
        self.executions += 1
        return principal.user

    @clarens_method(cache=ReadPolicy(depends_on=("scheduler",)))
    def flaky(self):
        self.executions += 1
        raise ValueError("always fails")


@pytest.fixture
def rig():
    host = ClarensHost("cache-host")
    host.users.add_user("alice", "pw", groups=("users",))
    host.users.add_user("bob", "pw", groups=("users",))
    host.acl.allow("jobs.*", groups=("users",))
    service = _CountingReads()
    host.register("jobs", service)
    # The test stands in for the subsystem that would own this epoch.
    host.epochs.register("scheduler")
    service.epochs = host.epochs
    client = ClarensClient(LoopbackTransport(host))
    client.login("alice", "pw")
    return host, service, client


class TestReadCacheMiddleware:
    def test_repeat_read_served_from_cache(self, rig):
        host, service, client = rig
        first = client.call("jobs.status", "t1")
        second = client.call("jobs.status", "t1")
        assert first == second
        assert service.executions == 1
        snap = host.read_cache.snapshot()["per_method"]["jobs.status"]
        assert snap["hits"] == 1 and snap["misses"] == 1

    def test_epoch_bump_invalidates(self, rig):
        host, service, client = rig
        assert client.call("jobs.status", "t1")["status"] == "queued"
        client.call("jobs.mutate", "t1", "running")
        assert client.call("jobs.status", "t1")["status"] == "running"
        assert service.executions == 2
        snap = host.read_cache.snapshot()["per_method"]["jobs.status"]
        assert snap["invalidations"] == 1

    def test_distinct_args_are_distinct_entries(self, rig):
        host, service, client = rig
        client.call("jobs.status", "t1")
        client.call("jobs.status", "t2")
        assert service.executions == 2

    def test_pass_principal_methods_key_on_the_caller(self, rig):
        host, service, client = rig
        assert client.call("jobs.mine") == "alice"
        assert client.call("jobs.mine") == "alice"
        assert service.executions == 1
        bob = ClarensClient(LoopbackTransport(host))
        bob.login("bob", "pw")
        assert bob.call("jobs.mine") == "bob"
        assert service.executions == 2

    def test_disabled_host_always_executes(self):
        host = ClarensHost("nocache", read_cache_enabled=False)
        host.users.add_user("u", "p", groups=("g",))
        host.acl.allow("jobs.*", groups=("g",))
        service = _CountingReads()
        host.register("jobs", service)
        client = ClarensClient(LoopbackTransport(host))
        client.login("u", "p")
        client.call("jobs.status", "t1")
        client.call("jobs.status", "t1")
        assert service.executions == 2

    def test_system_cache_rpc_reports_counters_and_epochs(self, rig):
        host, service, client = rig
        client.call("jobs.status", "t1")
        client.call("jobs.status", "t1")
        snap = client.call("system.cache")
        assert snap["enabled"] is True
        assert snap["entries"] >= 1
        assert snap["per_method"]["jobs.status"]["hits"] == 1
        assert "scheduler" in snap["epochs"]

    def test_served_from_recorded_in_stats_and_traces(self, rig):
        host, service, client = rig
        client.call("jobs.status", "t1")
        client.call("jobs.status", "t1")
        stats = host.stats.snapshot()
        assert stats["served"]["jobs.status"]["cache"] == 1
        # Only the executed call enters the latency reservoir.
        assert stats["latency_ms"]["jobs.status"]["count"] == 1
        assert stats["per_method"]["jobs.status"] == 2
        records = [
            r for r in client.call("system.recent_calls")
            if r["method"] == "jobs.status"
        ]
        assert [r["served_from"] for r in records] == ["execute", "cache"]


class TestMulticallCoalescing:
    def test_identical_reads_coalesce_to_one_execution(self, rig):
        host, service, client = rig
        results = client.batch([
            ("jobs.status", "t1"),
            ("jobs.status", "t1"),
            ("jobs.status", "t1"),
        ])
        assert results[0] == results[1] == results[2]
        assert service.executions == 1
        snap = host.read_cache.snapshot()["per_method"]["jobs.status"]
        assert snap["coalesced"] == 2
        assert host.stats.snapshot()["served"]["jobs.status"]["coalesced"] == 2

    def test_mutating_subcall_resets_the_dedup_window(self, rig):
        host, service, client = rig
        results = client.batch_detailed([
            ("jobs.status", "t1"),
            ("jobs.mutate", "t1", "running"),
            ("jobs.status", "t1"),
        ])
        assert all(r.ok for r in results)
        # The second read must re-execute: the mutation between the two
        # identical reads may have changed the answer.
        assert service.executions == 2
        assert results[0].result["status"] == "queued"
        assert results[2].result["status"] == "running"

    def test_coalescing_disabled_with_the_cache(self):
        host = ClarensHost("nocache", read_cache_enabled=False)
        host.users.add_user("u", "p", groups=("g",))
        host.acl.allow("jobs.*", groups=("g",))
        service = _CountingReads()
        host.register("jobs", service)
        client = ClarensClient(LoopbackTransport(host))
        client.login("u", "p")
        client.batch([("jobs.status", "t1"), ("jobs.status", "t1")])
        assert service.executions == 2

    def test_faulted_first_call_is_not_reused(self, rig):
        host, service, client = rig
        results = client.batch_detailed([
            ("jobs.flaky",),
            ("jobs.flaky",),
        ])
        # Faults are never cached or coalesced: both duplicates execute
        # (and fault) independently.
        assert not results[0].ok and not results[1].ok
        assert service.executions == 2


class TestBatchReads:
    def test_duplicates_are_sent_once_and_fanned_back(self, rig):
        host, service, client = rig
        results = client.batch_reads([
            ("jobs.status", "t1"),
            ("jobs.status", "t2"),
            ("jobs.status", "t1"),
        ])
        assert [r.ok for r in results] == [True, True, True]
        assert results[0].result == results[2].result
        assert results[1].result["task"] == "t2"
        assert service.executions == 2

    def test_order_preserved_for_unique_calls(self, rig):
        host, service, client = rig
        results = client.batch_reads([
            ("jobs.status", "t2"),
            ("jobs.status", "t1"),
        ])
        assert results[0].result["task"] == "t2"
        assert results[1].result["task"] == "t1"
