"""Unit tests for the telemetry sinks: stats, percentiles, trace ring."""

import threading

import pytest

from repro.clarens.telemetry import (
    CallStats,
    TraceLog,
    TraceRecord,
    new_trace_id,
    percentile,
)


class TestTraceIds:
    def test_unique_and_nonempty(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert all(ids)

    def test_no_bang_so_it_fits_the_wire_token(self):
        assert "!" not in new_trace_id()


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_single_sample(self):
        assert percentile([3.0], 0) == 3.0
        assert percentile([3.0], 50) == 3.0
        assert percentile([3.0], 100) == 3.0

    def test_nearest_rank(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 50) == 50
        assert percentile(samples, 95) == 95
        assert percentile(samples, 99) == 99

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 100) == 5.0


class TestCallStats:
    def test_counters_keep_historical_meaning(self):
        stats = CallStats()
        stats.record("a.b", True, 0.001)
        stats.record("a.b", False, 0.002)
        assert stats.calls == 2
        assert stats.faults == 1
        assert stats.per_method == {"a.b": 2}

    def test_duration_optional(self):
        stats = CallStats()
        stats.record("a.b", True)
        assert stats.latency_summary("a.b") == {"count": 1, "faults": 0}
        assert stats.mean_latency_s("a.b") is None

    def test_snapshot_shape(self):
        stats = CallStats()
        for i in range(20):
            stats.record("a.b", True, 0.001 * (i + 1))
        snap = stats.snapshot()
        assert snap["calls"] == 20
        summary = snap["latency_ms"]["a.b"]
        assert summary["count"] == 20
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        assert summary["max_ms"] == pytest.approx(20.0)

    def test_reservoir_caps_memory_but_keeps_counting(self):
        stats = CallStats(max_samples_per_method=8)
        for _ in range(100):
            stats.record("a.b", True, 0.001)
        summary = stats.latency_summary("a.b")
        assert summary["count"] == 100
        assert len(stats._methods["a.b"].samples) == 8

    def test_methods_listing(self):
        stats = CallStats()
        stats.record("b.x", True, 0.001)
        stats.record("a.y", True, 0.001)
        assert stats.methods() == ["a.y", "b.x"]

    def test_record_is_thread_safe(self):
        """16 threads hammer one CallStats; no update may be lost."""
        stats = CallStats()
        n_threads, per_thread = 16, 500

        def hammer():
            for _ in range(per_thread):
                stats.record("hot.path", True, 0.0001)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.calls == n_threads * per_thread
        assert stats.per_method["hot.path"] == n_threads * per_thread
        assert stats.latency_summary("hot.path")["count"] == n_threads * per_thread


def _record(i, trace="t"):
    return TraceRecord(
        trace_id=trace, method=f"m.{i}", transport="inproc", principal="u",
        started=float(i), duration_ms=1.0, outcome="ok",
    )


class TestTraceLog:
    def test_capacity_bounds_the_ring(self):
        log = TraceLog(capacity=4)
        for i in range(10):
            log.append(_record(i))
        records = log.snapshot()
        assert len(log) == 4
        assert [r.method for r in records] == ["m.6", "m.7", "m.8", "m.9"]

    def test_limit_keeps_newest(self):
        log = TraceLog()
        for i in range(5):
            log.append(_record(i))
        assert [r.method for r in log.snapshot(limit=2)] == ["m.3", "m.4"]

    def test_filter_by_trace_id(self):
        log = TraceLog()
        log.append(_record(0, trace="a"))
        log.append(_record(1, trace="b"))
        log.append(_record(2, trace="a"))
        assert [r.method for r in log.snapshot(trace_id="a")] == ["m.0", "m.2"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_record_to_wire_is_a_plain_dict(self):
        wire = _record(1).to_wire()
        assert wire["method"] == "m.1"
        assert wire["outcome"] == "ok"
        assert set(wire) == {
            "trace_id", "method", "transport", "principal", "started",
            "duration_ms", "outcome", "code", "error", "served_from",
        }
