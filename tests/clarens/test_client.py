"""Unit tests for the client facade and service proxies."""

import pytest

from repro.clarens.client import ClarensClient, ServiceProxy
from repro.clarens.errors import AuthenticationError
from repro.clarens.server import ClarensHost
from repro.clarens.transport import LoopbackTransport


class Greeter:
    def greet(self, name):
        return f"hello {name}"


@pytest.fixture
def client():
    host = ClarensHost()
    host.users.add_user("u", "p", groups=("g",))
    host.acl.allow("greeter.*", groups=("g",))
    host.register("greeter", Greeter())
    return ClarensClient(LoopbackTransport(host))


class TestSession:
    def test_login_stores_token(self, client):
        token = client.login("u", "p")
        assert client.token == token
        assert client.logged_in

    def test_login_failure_raises(self, client):
        with pytest.raises(AuthenticationError):
            client.login("u", "wrong")
        assert not client.logged_in

    def test_logout_clears_token(self, client):
        client.login("u", "p")
        client.logout()
        assert client.token == ""

    def test_logout_without_login_is_noop(self, client):
        client.logout()


class TestCalls:
    def test_call_carries_token(self, client):
        client.login("u", "p")
        assert client.call("greeter.greet", "world") == "hello world"

    def test_unauthenticated_call_fails(self, client):
        with pytest.raises(AuthenticationError):
            client.call("greeter.greet", "world")

    def test_service_proxy_attribute_call(self, client):
        client.login("u", "p")
        proxy = client.service("greeter")
        assert isinstance(proxy, ServiceProxy)
        assert proxy.greet("x") == "hello x"

    def test_proxy_rejects_private_attributes(self, client):
        proxy = client.service("greeter")
        with pytest.raises(AttributeError):
            proxy._hidden

    def test_introspection_helpers(self, client):
        assert "greeter" in client.list_services()
        assert client.list_methods("greeter") == ["greet"]
        assert client.ping()


class TestBatch:
    def test_batch_returns_results_in_order(self, client):
        client.login("u", "p")
        results = client.batch([
            ("greeter.greet", "a"),
            ("system.ping",),
            ("greeter.greet", "b"),
        ])
        assert results == ["hello a", "pong", "hello b"]

    def test_batch_raises_typed_fault_on_failure(self, client):
        from repro.clarens.errors import ServiceNotFound

        client.login("u", "p")
        with pytest.raises(ServiceNotFound):
            client.batch([("ghost.method",)])

    def test_batch_detailed_never_raises(self, client):
        from repro.clarens.serialization import MulticallResult

        client.login("u", "p")
        detailed = client.batch_detailed([
            ("greeter.greet", "x"),
            ("ghost.method",),
        ])
        assert all(isinstance(r, MulticallResult) for r in detailed)
        assert detailed[0].ok is True
        assert detailed[0].result == "hello x"
        assert detailed[1].ok is False
        assert detailed[1].code == 404

    def test_batch_results_share_one_trace_id(self, client):
        client.login("u", "p")
        detailed = client.batch_detailed([
            ("greeter.greet", "x"),
            ("system.ping",),
        ])
        assert detailed[0].trace_id
        assert detailed[0].trace_id == detailed[1].trace_id


class TestContextManager:
    def test_with_block_logs_out_and_closes(self, client):
        with client:
            client.login("u", "p")
            assert client.logged_in
        assert not client.logged_in
        assert client.transport.closed

    def test_close_is_idempotent(self, client):
        client.login("u", "p")
        client.close()
        client.close()
        assert client.transport.closed

    def test_close_swallows_dead_session(self, client):
        client.login("u", "p")
        # Revoke behind the client's back: close() must still succeed.
        token = client.token
        client.transport.call("system.logout", [token])
        client.close()
        assert not client.logged_in


class TestTracing:
    def test_new_trace_is_carried_and_recorded(self, client):
        client.login("u", "p")
        trace = client.new_trace()
        client.service("greeter").greet("x")
        records = client.call("system.recent_calls", 50, trace)
        assert [r["method"] for r in records] == ["greeter.greet"]

    def test_explicit_trace_id(self, client):
        assert client.new_trace("my-trace") == "my-trace"
        assert client.trace_id == "my-trace"
