"""Unit tests for authentication and session tokens."""

import pytest

from repro.clarens.auth import ANONYMOUS, AuthService, Principal, UserDatabase
from repro.clarens.errors import AuthenticationError


@pytest.fixture
def users():
    db = UserDatabase()
    db.add_user("alice", "secret", groups=("physicists", "gae-users"))
    db.add_user("bob", "hunter2")
    return db


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def auth(users, clock):
    return AuthService(users, time_source=clock, session_lifetime_s=100.0)


class TestUserDatabase:
    def test_verify_good_credentials(self, users):
        p = users.verify("alice", "secret")
        assert p.user == "alice"
        assert p.in_group("physicists")

    def test_verify_bad_password(self, users):
        with pytest.raises(AuthenticationError):
            users.verify("alice", "wrong")

    def test_verify_unknown_user(self, users):
        with pytest.raises(AuthenticationError):
            users.verify("mallory", "x")

    def test_duplicate_user_rejected(self, users):
        with pytest.raises(ValueError):
            users.add_user("alice", "again")

    def test_empty_name_rejected(self, users):
        with pytest.raises(ValueError):
            users.add_user("", "pw")

    def test_users_listed_sorted(self, users):
        assert users.users() == ("alice", "bob")

    def test_password_not_stored_in_clear(self, users):
        record = users._users["alice"]
        assert "secret" not in record.password_hash
        assert record.password_hash != "secret"


class TestPrincipal:
    def test_anonymous(self):
        assert ANONYMOUS.is_anonymous
        assert not Principal(user="x").is_anonymous

    def test_group_membership(self):
        p = Principal(user="x", groups=frozenset({"g"}))
        assert p.in_group("g")
        assert not p.in_group("other")


class TestTokens:
    def test_login_then_validate(self, auth):
        token = auth.login("alice", "secret")
        p = auth.validate(token)
        assert p.user == "alice"
        assert p.in_group("gae-users")

    def test_login_bad_credentials(self, auth):
        with pytest.raises(AuthenticationError):
            auth.login("alice", "nope")

    def test_empty_token_is_anonymous(self, auth):
        assert auth.validate("") is ANONYMOUS

    def test_malformed_token_rejected(self, auth):
        with pytest.raises(AuthenticationError):
            auth.validate("garbage")
        with pytest.raises(AuthenticationError):
            auth.validate("a|b|c|d|e")

    def test_tampered_user_rejected(self, auth):
        token = auth.login("alice", "secret")
        parts = token.split("|")
        forged = "|".join(["bob"] + parts[1:])
        with pytest.raises(AuthenticationError):
            auth.validate(forged)

    def test_tampered_expiry_rejected(self, auth):
        token = auth.login("alice", "secret")
        parts = token.split("|")
        parts[1] = "99999999.000"
        with pytest.raises(AuthenticationError):
            auth.validate("|".join(parts))

    def test_expired_token_rejected(self, auth, clock):
        token = auth.login("alice", "secret")
        clock.now = 101.0
        with pytest.raises(AuthenticationError):
            auth.validate(token)

    def test_token_valid_until_expiry(self, auth, clock):
        token = auth.login("alice", "secret")
        clock.now = 99.0
        assert auth.validate(token).user == "alice"

    def test_logout_revokes(self, auth):
        token = auth.login("alice", "secret")
        auth.logout(token)
        with pytest.raises(AuthenticationError):
            auth.validate(token)

    def test_tokens_unique_per_login(self, auth):
        assert auth.login("alice", "secret") != auth.login("alice", "secret")

    def test_cross_host_token_rejected(self, users, clock):
        a = AuthService(users, clock)
        b = AuthService(users, clock)
        token = a.login("alice", "secret")
        with pytest.raises(AuthenticationError):
            b.validate(token)

    def test_invalid_lifetime_rejected(self, users, clock):
        with pytest.raises(ValueError):
            AuthService(users, clock, session_lifetime_s=0.0)
