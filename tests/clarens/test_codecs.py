"""Unit tests for the negotiable wire codecs (repro.clarens.codecs)."""

import pytest

from repro.clarens.codecs import Codec, codec_names, get_codec, negotiate
from repro.clarens.errors import (
    AuthenticationError,
    ProtocolError,
    RemoteFault,
)
from repro.clarens.framing import (
    CALL,
    HELLO,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_error,
    decode_header,
    decode_hello,
    decode_welcome,
    encode_error,
    encode_frame,
    encode_hello,
    encode_welcome,
)


class TestRegistry:
    def test_codec_names_json_first(self):
        assert codec_names() == ["json", "xmlrpc"]

    def test_get_codec_returns_codec_instances(self):
        for name in codec_names():
            codec = get_codec(name)
            assert isinstance(codec, Codec)
            assert codec.name == name

    def test_get_codec_unknown_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="unknown codec"):
            get_codec("msgpack")


class TestNegotiate:
    def test_client_preference_order_wins(self):
        assert negotiate(["xmlrpc", "json"], ["json", "xmlrpc"]) == "xmlrpc"
        assert negotiate(["json", "xmlrpc"], ["xmlrpc", "json"]) == "json"

    def test_single_common_codec(self):
        assert negotiate(["msgpack", "xmlrpc"], ["json", "xmlrpc"]) == "xmlrpc"

    def test_disjoint_sets_raise(self):
        with pytest.raises(ProtocolError, match="no common codec"):
            negotiate(["msgpack"], ["json", "xmlrpc"])


@pytest.mark.parametrize("name", ["json", "xmlrpc"])
class TestCodecRoundTrip:
    def test_request(self, name):
        codec = get_codec(name)
        payload = codec.encode_request("echo.echo", "tok", [1, "x", None])
        assert codec.decode_request(payload) == ("echo.echo", "tok", [1, "x", None])

    def test_response(self, name):
        codec = get_codec(name)
        value = {"jobs": [1, 2], "blob": b"\x00\xff", "f": 1.5}
        assert codec.decode_response(codec.encode_response(value)) == value

    def test_fault_rehydrates_typed(self, name):
        codec = get_codec(name)
        with pytest.raises(AuthenticationError, match="expired"):
            codec.decode_response(codec.encode_fault(401, "expired"))
        with pytest.raises(RemoteFault):
            codec.decode_response(codec.encode_fault(520, "kaput"))

    def test_encoded_payload_is_bytes(self, name):
        codec = get_codec(name)
        assert isinstance(codec.encode_response([1]), bytes)
        assert isinstance(codec.encode_request("a.b", "", []), bytes)
        assert isinstance(codec.encode_fault(500, "x"), bytes)


class TestJsonCompactness:
    def test_json_much_smaller_than_xmlrpc(self):
        value = [{"job_id": i, "state": "running"} for i in range(50)]
        json_size = len(get_codec("json").encode_response(value))
        xml_size = len(get_codec("xmlrpc").encode_response(value))
        assert json_size < xml_size / 3

    def test_nul_bytes_survive(self):
        codec = get_codec("json")
        value = {"raw": b"\x00\x01", "s": "nul\x00here"}
        assert codec.decode_response(codec.encode_response(value)) == value


class TestFraming:
    def test_frame_round_trip(self):
        frame = encode_frame(CALL, 42, b"payload")
        payload_len, frame_type, request_id = decode_header(frame[:13])
        assert frame_type == CALL
        assert request_id == 42
        assert frame[13:13 + payload_len] == b"payload"

    def test_oversized_frame_rejected(self):
        huge = MAX_FRAME_BYTES + 1
        with pytest.raises(ProtocolError, match="frame"):
            decode_header(
                (huge + 9).to_bytes(4, "big") + bytes([CALL]) + (0).to_bytes(8, "big")
            )

    def test_hello_welcome_round_trip(self):
        version, codecs = decode_hello(encode_hello(("json", "xmlrpc")))
        assert version == PROTOCOL_VERSION
        assert tuple(codecs) == ("json", "xmlrpc")
        version, codec, host = decode_welcome(encode_welcome("json", "gae"))
        assert (version, codec, host) == (PROTOCOL_VERSION, "json", "gae")

    def test_error_frame_round_trip(self):
        assert decode_error(encode_error(400, "bad hello")) == (400, "bad hello")

    def test_hello_frame_type_distinct(self):
        assert HELLO != CALL
