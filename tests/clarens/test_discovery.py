"""Unit tests for the P2P lookup/discovery network."""

import pytest

from repro.clarens.discovery import DiscoveryNetwork, Peer
from repro.clarens.errors import ServiceNotFound
from repro.clarens.server import ClarensHost


class Dummy:
    def noop(self):
        return None


def make_network(topology, services):
    """topology: {peer: [neighbours]}, services: {peer: [service names]}"""
    net = DiscoveryNetwork()
    hosts = {}
    for name in topology:
        host = ClarensHost(name)
        for svc in services.get(name, []):
            host.register(svc, Dummy())
        hosts[name] = host
        net.add_host(host)
    for a, neighbours in topology.items():
        for b in neighbours:
            net.connect(a, b)
    return net


LINE = {"p1": ["p2"], "p2": ["p3"], "p3": []}


class TestPeering:
    def test_connect_is_bidirectional(self):
        net = make_network(LINE, {})
        assert net.peer("p2") in net.peer("p1").neighbours
        assert net.peer("p1") in net.peer("p2").neighbours

    def test_self_peering_rejected(self):
        net = make_network({"p1": []}, {})
        with pytest.raises(ValueError):
            net.peer("p1").connect(net.peer("p1"))

    def test_duplicate_host_rejected(self):
        net = DiscoveryNetwork()
        net.add_host(ClarensHost("x"))
        with pytest.raises(ValueError):
            net.add_host(ClarensHost("x"))

    def test_unknown_peer_raises(self):
        with pytest.raises(ServiceNotFound):
            DiscoveryNetwork().peer("ghost")

    def test_peers_sorted(self):
        net = make_network(LINE, {})
        assert net.peers() == ["p1", "p2", "p3"]


class TestLookup:
    def test_local_hit_at_zero_hops(self):
        net = make_network(LINE, {"p1": ["steering"]})
        results = net.find("steering", start="p1")
        assert results[0].host_name == "p1"
        assert results[0].hops == 0

    def test_neighbour_hit_at_one_hop(self):
        net = make_network(LINE, {"p2": ["steering"]})
        [r] = net.find("steering", start="p1")
        assert (r.host_name, r.hops) == ("p2", 1)

    def test_ttl_limits_reach(self):
        net = make_network(LINE, {"p3": ["steering"]})
        assert net.find("steering", start="p1", ttl=1) == []
        assert len(net.find("steering", start="p1", ttl=2)) == 1

    def test_multiple_instances_closest_first(self):
        net = make_network(LINE, {"p1": ["jobmon"], "p3": ["jobmon"]})
        results = net.find("jobmon", start="p2")
        assert [r.hops for r in results] == [1, 1]
        assert [r.host_name for r in results] == ["p1", "p3"]

    def test_cycle_does_not_loop(self):
        net = make_network({"a": ["b"], "b": ["c"], "c": ["a"]}, {"c": ["svc"]})
        results = net.find("svc", start="a", ttl=5)
        assert len(results) == 1

    def test_find_one_raises_when_unreachable(self):
        net = make_network(LINE, {})
        with pytest.raises(ServiceNotFound):
            net.find_one("missing", start="p1")

    def test_find_one_returns_closest(self):
        net = make_network(LINE, {"p2": ["svc"], "p3": ["svc"]})
        assert net.find_one("svc", start="p1").host_name == "p2"

    def test_negative_ttl_rejected(self):
        net = make_network(LINE, {})
        with pytest.raises(ValueError):
            net.find("svc", start="p1", ttl=-1)

    def test_system_service_discoverable_everywhere(self):
        net = make_network(LINE, {})
        results = net.find("system", start="p2", ttl=2)
        assert {r.host_name for r in results} == {"p1", "p2", "p3"}
