"""Unit tests for the two transports (in-process and XML-RPC)."""

import threading

import pytest

from repro.clarens.client import ClarensClient
from repro.clarens.errors import (
    AuthenticationError,
    RemoteFault,
    SerializationError,
    TransportError,
)
from repro.clarens.server import ClarensHost, XmlRpcServerHandle
from repro.clarens.transport import LoopbackTransport, SocketTransport


class Echo:
    def echo(self, value):
        """Return the argument unchanged."""
        return value

    def boom(self):
        raise RuntimeError("kaput")


@pytest.fixture
def host():
    h = ClarensHost("t")
    h.users.add_user("u", "p", groups=("g",))
    h.acl.allow("echo.*", groups=("g",))
    h.register("echo", Echo())
    return h


@pytest.fixture
def xmlrpc_server(host):
    with XmlRpcServerHandle(host) as handle:
        yield handle


class TestLoopbackTransport:
    def test_round_trip(self, host):
        t = LoopbackTransport(host)
        token = t.call("system.login", ["u", "p"])
        assert t.call("echo.echo", [{"a": [1, 2]}], token) == {"a": [1, 2]}

    def test_strict_wire_catches_bad_params(self, host):
        t = LoopbackTransport(host)
        token = t.call("system.login", ["u", "p"])
        with pytest.raises(SerializationError):
            t.call("echo.echo", [object()], token)

    def test_non_strict_passes_objects(self, host):
        t = LoopbackTransport(host, strict_wire=False)
        token = t.call("system.login", ["u", "p"])
        # Without strict wire the host still marshals the *result*, so a
        # non-wire-safe result would fail; plain values pass.
        assert t.call("echo.echo", [5], token) == 5


class TestSocketTransport:
    def test_round_trip_over_sockets(self, xmlrpc_server):
        t = SocketTransport(xmlrpc_server.url)
        token = t.call("system.login", ["u", "p"])
        assert t.call("echo.echo", [{"k": "v"}], token) == {"k": "v"}

    def test_fault_rehydrated_to_typed_exception(self, xmlrpc_server):
        t = SocketTransport(xmlrpc_server.url)
        with pytest.raises(AuthenticationError):
            t.call("echo.echo", ["x"], token="")

    def test_application_error_travels_as_remote_fault(self, xmlrpc_server):
        t = SocketTransport(xmlrpc_server.url)
        token = t.call("system.login", ["u", "p"])
        with pytest.raises(RemoteFault) as exc:
            t.call("echo.boom", [], token)
        assert "kaput" in str(exc.value)

    def test_unreachable_server_raises_transport_error(self):
        t = SocketTransport("http://127.0.0.1:1/RPC2", timeout_s=0.5)
        with pytest.raises(TransportError):
            t.call("system.ping", [])

    def test_concurrent_clients_each_with_own_transport(self, xmlrpc_server):
        results = []
        errors = []

        def worker():
            try:
                t = SocketTransport(xmlrpc_server.url)
                token = t.call("system.login", ["u", "p"])
                for _ in range(5):
                    results.append(t.call("echo.echo", ["hi"], token))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert results.count("hi") == 40


class TestTransportEquivalence:
    def test_same_result_on_both_transports(self, host, xmlrpc_server):
        payload = {"nested": [1, 2.5, "x", None, True], "t": [1, 2]}
        local = LoopbackTransport(host)
        remote = SocketTransport(xmlrpc_server.url)
        tok_l = local.call("system.login", ["u", "p"])
        tok_r = remote.call("system.login", ["u", "p"])
        assert local.call("echo.echo", [payload], tok_l) == remote.call(
            "echo.echo", [payload], tok_r
        )

    def test_client_facade_over_both(self, host, xmlrpc_server):
        for transport in (LoopbackTransport(host), SocketTransport(xmlrpc_server.url)):
            client = ClarensClient(transport)
            client.login("u", "p")
            assert client.ping()
            assert client.service("echo").echo("abc") == "abc"
            client.logout()
            assert not client.logged_in


class TestTracePropagation:
    def test_inprocess_trace_reaches_the_host(self, host):
        t = LoopbackTransport(host)
        t.call("system.ping", [], trace_id="trace-local")
        records = host.traces.snapshot(trace_id="trace-local")
        assert [r.method for r in records] == ["system.ping"]
        assert records[0].transport == "inproc"

    def test_xmlrpc_trace_travels_the_wire(self, host, xmlrpc_server):
        t = SocketTransport(xmlrpc_server.url)
        token = t.call("system.login", ["u", "p"])
        t.call("echo.echo", ["traced"], token, trace_id="trace-wire")
        records = host.traces.snapshot(trace_id="trace-wire")
        assert [r.method for r in records] == ["echo.echo"]
        assert records[0].transport == "xmlrpc"
        assert records[0].principal == "u"

    def test_wire_token_still_authenticates_with_trace_attached(self, xmlrpc_server):
        t = SocketTransport(xmlrpc_server.url)
        token = t.call("system.login", ["u", "p"])
        # A traced call to a protected method must not corrupt the token.
        assert t.call("echo.echo", [1], token, trace_id="x-1") == 1


class TestClose:
    def test_inprocess_close_is_idempotent(self, host):
        t = LoopbackTransport(host)
        t.close()
        t.close()
        assert t.closed

    def test_xmlrpc_close_is_idempotent(self, xmlrpc_server):
        t = SocketTransport(xmlrpc_server.url)
        assert t.call("system.ping", []) == "pong"
        t.close()
        t.close()
        assert t.closed

    def test_transport_context_manager(self, xmlrpc_server):
        with SocketTransport(xmlrpc_server.url) as t:
            assert t.call("system.ping", []) == "pong"
        assert t.closed
