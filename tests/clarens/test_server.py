"""Unit tests for the ClarensHost dispatcher and its system service."""

import pytest

from repro.clarens.auth import Principal
from repro.clarens.errors import (
    AuthenticationError,
    AuthorizationError,
    MethodNotFound,
    RemoteFault,
    ServiceNotFound,
)
from repro.clarens.registry import clarens_method
from repro.clarens.server import ClarensHost


class Calculator:
    def add(self, a, b):
        """Add two numbers."""
        return a + b

    def fail(self):
        raise ValueError("exploded")


class PersonalService:
    @clarens_method(pass_principal=True)
    def whoami(self, principal):
        return principal.user


@pytest.fixture
def host():
    h = ClarensHost("test-host")
    h.users.add_user("alice", "pw", groups=("users",))
    h.acl.allow("calc.*", groups=("users",))
    h.acl.allow("personal.*", groups=("users",))
    h.register("calc", Calculator())
    h.register("personal", PersonalService())
    return h


def login(host, user="alice", pw="pw"):
    return host.dispatch("system.login", [user, pw])


class TestDispatch:
    def test_authenticated_call(self, host):
        token = login(host)
        assert host.dispatch("calc.add", [2, 3], token) == 5

    def test_anonymous_call_to_protected_method_rejected(self, host):
        with pytest.raises(AuthenticationError):
            host.dispatch("calc.add", [2, 3], token="")

    def test_acl_denial(self, host):
        host.users.add_user("eve", "pw", groups=("strangers",))
        token = login(host, "eve")
        with pytest.raises(AuthorizationError):
            host.dispatch("calc.add", [1, 1], token)

    def test_unknown_service(self, host):
        with pytest.raises(ServiceNotFound):
            host.dispatch("ghost.x", [], "")

    def test_unknown_method(self, host):
        with pytest.raises(MethodNotFound):
            host.dispatch("calc.ghost", [], "")

    def test_application_error_becomes_remote_fault(self, host):
        token = login(host)
        with pytest.raises(RemoteFault) as exc:
            host.dispatch("calc.fail", [], token)
        assert "exploded" in str(exc.value)

    def test_result_marshalled_to_wire(self, host):
        token = login(host)
        result = host.dispatch("calc.add", [(1, 2), (3,)], token)
        # tuples in = concatenated tuple out, lowered to a list
        assert result == [1, 2, 3]

    def test_principal_injection(self, host):
        token = login(host)
        assert host.dispatch("personal.whoami", [], token) == "alice"

    def test_principal_of(self, host):
        token = login(host)
        assert host.principal_of(token).user == "alice"
        assert host.principal_of("").is_anonymous


class TestSystemService:
    def test_ping_anonymous(self, host):
        assert host.dispatch("system.ping", [], "") == "pong"

    def test_list_services(self, host):
        assert host.dispatch("system.list_services", [], "") == [
            "calc", "personal", "system",
        ]

    def test_list_methods(self, host):
        methods = host.dispatch("system.list_methods", ["calc"], "")
        assert methods == ["add", "fail"]

    def test_method_help(self, host):
        assert host.dispatch("system.method_help", ["calc.add"], "") == "Add two numbers."

    def test_host_name(self, host):
        assert host.dispatch("system.host_name", [], "") == "test-host"

    def test_logout_revokes(self, host):
        token = login(host)
        host.dispatch("system.logout", [token], "")
        with pytest.raises(AuthenticationError):
            host.dispatch("calc.add", [1, 1], token)


class TestStats:
    def test_call_counting(self, host):
        token = login(host)
        host.dispatch("calc.add", [1, 1], token)
        host.dispatch("calc.add", [2, 2], token)
        assert host.stats.per_method["calc.add"] == 2

    def test_fault_counting(self, host):
        token = login(host)
        with pytest.raises(RemoteFault):
            host.dispatch("calc.fail", [], token)
        assert host.stats.faults == 1

    def test_session_expiry_uses_injected_clock(self):
        clock = {"now": 0.0}
        host = ClarensHost(time_source=lambda: clock["now"], session_lifetime_s=10.0)
        host.users.add_user("u", "p")
        token = host.dispatch("system.login", ["u", "p"])
        clock["now"] = 11.0
        with pytest.raises(AuthenticationError):
            host.principal_of(token)


class TestSystemStats:
    def test_stats_exposed_anonymously(self, host):
        token = login(host)
        host.dispatch("calc.add", [1, 1], token)
        stats = host.dispatch("system.stats", [], "")
        assert stats["calls"] >= 2  # the login + the add at least
        assert stats["per_method"]["calc.add"] == 1
        assert "faults" in stats

    def test_stats_report_latency_percentiles(self, host):
        token = login(host)
        for _ in range(10):
            host.dispatch("calc.add", [1, 1], token)
        latency = host.dispatch("system.stats", [], "")["latency_ms"]["calc.add"]
        assert latency["count"] == 10
        assert latency["faults"] == 0
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"):
            assert latency[key] >= 0.0
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"] <= latency["max_ms"]


class TestRecentCalls:
    def test_finished_calls_land_in_the_ring(self, host):
        token = login(host)
        host.dispatch("calc.add", [1, 2], token)
        records = host.dispatch("system.recent_calls", [10], "")
        assert records[-1]["method"] == "calc.add"
        assert records[-1]["outcome"] == "ok"
        assert records[-1]["principal"] == "alice"
        assert records[-1]["trace_id"]

    def test_fault_outcome_recorded(self, host):
        token = login(host)
        with pytest.raises(RemoteFault):
            host.dispatch("calc.fail", [], token)
        records = host.dispatch("system.recent_calls", [10], "")
        rec = [r for r in records if r["method"] == "calc.fail"][0]
        assert rec["outcome"] == "fault"
        assert rec["code"] == 520
        assert "exploded" in rec["error"]

    def test_trace_id_filter(self, host):
        host.dispatch("system.ping", [], "", trace_id="t-123")
        host.dispatch("system.ping", [], "")
        records = host.dispatch("system.recent_calls", [50, "t-123"], "")
        assert [r["trace_id"] for r in records] == ["t-123"]


class TestConcurrentDispatch:
    def test_16_threads_no_lost_stat_updates(self, host):
        """Regression: CallStats.record used to race under the threaded
        XML-RPC server (plain-dict read-modify-write with no lock)."""
        import threading

        token = login(host)
        calls_per_thread = 200
        n_threads = 16
        errors = []

        def hammer():
            try:
                for _ in range(calls_per_thread):
                    host.dispatch("calc.add", [1, 1], token)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert host.stats.per_method["calc.add"] == n_threads * calls_per_thread
        latency = host.stats.latency_summary("calc.add")
        assert latency["count"] == n_threads * calls_per_thread
        assert latency["faults"] == 0


class TestMiddlewareHook:
    def test_add_middleware_observes_calls(self, host):
        seen = []

        def spy(ctx, call_next):
            seen.append(ctx.method_path)
            return call_next(ctx)

        host.add_middleware(spy)
        host.dispatch("system.ping", [], "")
        assert seen == ["system.ping"]
        assert host.middlewares == (spy,)

    def test_user_middleware_sees_resolved_principal(self, host):
        token = login(host)
        principals = []

        def spy(ctx, call_next):
            principals.append(ctx.principal.user)
            return call_next(ctx)

        host.add_middleware(spy)
        host.dispatch("calc.add", [1, 1], token)
        assert principals == ["alice"]

    def test_user_middleware_can_short_circuit(self, host):
        from repro.clarens.errors import AuthorizationError as Denied

        def deny_calc(ctx, call_next):
            if ctx.method_path.startswith("calc."):
                raise Denied("calc is down for maintenance")
            return call_next(ctx)

        host.add_middleware(deny_calc)
        token = login(host)
        with pytest.raises(Denied):
            host.dispatch("calc.add", [1, 1], token)
        assert host.dispatch("system.ping", [], "") == "pong"


class TestMulticall:
    def test_batch_of_calls_under_one_token(self, host):
        token = login(host)
        results = host.dispatch(
            "system.multicall",
            [[
                {"methodName": "calc.add", "params": [1, 2]},
                {"methodName": "calc.add", "params": [3, 4]},
                {"methodName": "system.ping", "params": []},
            ]],
            token,
        )
        assert [r["ok"] for r in results] == [True, True, True]
        assert [r["result"] for r in results] == [3, 7, "pong"]

    def test_one_failure_does_not_poison_the_batch(self, host):
        token = login(host)
        results = host.dispatch(
            "system.multicall",
            [[
                {"methodName": "calc.fail", "params": []},
                {"methodName": "calc.add", "params": [5, 5]},
            ]],
            token,
        )
        assert results[0]["ok"] is False
        assert "exploded" in results[0]["error"]
        assert results[1]["ok"] is True
        assert results[1]["result"] == 10

    def test_acl_enforced_per_subcall(self, host):
        host.users.add_user("eve", "pw", groups=("strangers",))
        token = login(host, "eve")
        results = host.dispatch(
            "system.multicall",
            [[{"methodName": "calc.add", "params": [1, 1]},
              {"methodName": "system.ping", "params": []}]],
            token,
        )
        assert results[0]["ok"] is False
        assert results[0]["code"] == 403
        assert results[1]["ok"] is True

    def test_anonymous_multicall_limited_to_anonymous_methods(self, host):
        results = host.dispatch(
            "system.multicall",
            [[{"methodName": "system.ping", "params": []},
              {"methodName": "calc.add", "params": [1, 1]}]],
            "",
        )
        assert results[0]["ok"] is True
        assert results[1]["ok"] is False
        assert results[1]["code"] == 401

    def test_nested_multicall_rejected(self, host):
        results = host.dispatch(
            "system.multicall",
            [[{"methodName": "system.multicall", "params": [[]]}]],
            "",
        )
        assert results[0]["ok"] is False
        assert "nested" in results[0]["error"]

    def test_subcalls_share_the_batch_trace_id(self, host):
        token = login(host)
        results = host.dispatch(
            "system.multicall",
            [[{"methodName": "calc.add", "params": [1, 2]},
              {"methodName": "system.ping", "params": []}]],
            token,
            trace_id="batch-7",
        )
        assert [r["trace_id"] for r in results] == ["batch-7", "batch-7"]
        records = host.dispatch("system.recent_calls", [50, "batch-7"], "")
        assert {r["method"] for r in records} >= {"calc.add", "system.ping"}

    def test_multicall_over_real_xmlrpc(self, host):
        from repro.clarens.client import ClarensClient
        from repro.clarens.server import XmlRpcServerHandle
        from repro.clarens.transport import SocketTransport

        with XmlRpcServerHandle(host) as handle:
            client = ClarensClient(SocketTransport(handle.url))
            client.login("alice", "pw")
            results = client.call(
                "system.multicall",
                [{"methodName": "calc.add", "params": [2, 2]},
                 {"methodName": "system.host_name", "params": []}],
            )
            assert results[0]["result"] == 4
            assert results[1]["result"] == "test-host"
