"""Unit tests for the ClarensHost dispatcher and its system service."""

import pytest

from repro.clarens.auth import Principal
from repro.clarens.errors import (
    AuthenticationError,
    AuthorizationError,
    MethodNotFound,
    RemoteFault,
    ServiceNotFound,
)
from repro.clarens.registry import clarens_method
from repro.clarens.server import ClarensHost


class Calculator:
    def add(self, a, b):
        """Add two numbers."""
        return a + b

    def fail(self):
        raise ValueError("exploded")


class PersonalService:
    @clarens_method(pass_principal=True)
    def whoami(self, principal):
        return principal.user


@pytest.fixture
def host():
    h = ClarensHost("test-host")
    h.users.add_user("alice", "pw", groups=("users",))
    h.acl.allow("calc.*", groups=("users",))
    h.acl.allow("personal.*", groups=("users",))
    h.register("calc", Calculator())
    h.register("personal", PersonalService())
    return h


def login(host, user="alice", pw="pw"):
    return host.dispatch("system.login", [user, pw])


class TestDispatch:
    def test_authenticated_call(self, host):
        token = login(host)
        assert host.dispatch("calc.add", [2, 3], token) == 5

    def test_anonymous_call_to_protected_method_rejected(self, host):
        with pytest.raises(AuthenticationError):
            host.dispatch("calc.add", [2, 3], token="")

    def test_acl_denial(self, host):
        host.users.add_user("eve", "pw", groups=("strangers",))
        token = login(host, "eve")
        with pytest.raises(AuthorizationError):
            host.dispatch("calc.add", [1, 1], token)

    def test_unknown_service(self, host):
        with pytest.raises(ServiceNotFound):
            host.dispatch("ghost.x", [], "")

    def test_unknown_method(self, host):
        with pytest.raises(MethodNotFound):
            host.dispatch("calc.ghost", [], "")

    def test_application_error_becomes_remote_fault(self, host):
        token = login(host)
        with pytest.raises(RemoteFault) as exc:
            host.dispatch("calc.fail", [], token)
        assert "exploded" in str(exc.value)

    def test_result_marshalled_to_wire(self, host):
        token = login(host)
        result = host.dispatch("calc.add", [(1, 2), (3,)], token)
        # tuples in = concatenated tuple out, lowered to a list
        assert result == [1, 2, 3]

    def test_principal_injection(self, host):
        token = login(host)
        assert host.dispatch("personal.whoami", [], token) == "alice"

    def test_principal_of(self, host):
        token = login(host)
        assert host.principal_of(token).user == "alice"
        assert host.principal_of("").is_anonymous


class TestSystemService:
    def test_ping_anonymous(self, host):
        assert host.dispatch("system.ping", [], "") == "pong"

    def test_list_services(self, host):
        assert host.dispatch("system.list_services", [], "") == [
            "calc", "personal", "system",
        ]

    def test_list_methods(self, host):
        methods = host.dispatch("system.list_methods", ["calc"], "")
        assert methods == ["add", "fail"]

    def test_method_help(self, host):
        assert host.dispatch("system.method_help", ["calc.add"], "") == "Add two numbers."

    def test_host_name(self, host):
        assert host.dispatch("system.host_name", [], "") == "test-host"

    def test_logout_revokes(self, host):
        token = login(host)
        host.dispatch("system.logout", [token], "")
        with pytest.raises(AuthenticationError):
            host.dispatch("calc.add", [1, 1], token)


class TestStats:
    def test_call_counting(self, host):
        token = login(host)
        host.dispatch("calc.add", [1, 1], token)
        host.dispatch("calc.add", [2, 2], token)
        assert host.stats.per_method["calc.add"] == 2

    def test_fault_counting(self, host):
        token = login(host)
        with pytest.raises(RemoteFault):
            host.dispatch("calc.fail", [], token)
        assert host.stats.faults == 1

    def test_session_expiry_uses_injected_clock(self):
        clock = {"now": 0.0}
        host = ClarensHost(time_source=lambda: clock["now"], session_lifetime_s=10.0)
        host.users.add_user("u", "p")
        token = host.dispatch("system.login", ["u", "p"])
        clock["now"] = 11.0
        with pytest.raises(AuthenticationError):
            host.principal_of(token)


class TestSystemStats:
    def test_stats_exposed_anonymously(self, host):
        token = login(host)
        host.dispatch("calc.add", [1, 1], token)
        stats = host.dispatch("system.stats", [], "")
        assert stats["calls"] >= 2  # the login + the add at least
        assert stats["per_method"]["calc.add"] == 1
        assert "faults" in stats


class TestMulticall:
    def test_batch_of_calls_under_one_token(self, host):
        token = login(host)
        results = host.dispatch(
            "system.multicall",
            [[
                {"methodName": "calc.add", "params": [1, 2]},
                {"methodName": "calc.add", "params": [3, 4]},
                {"methodName": "system.ping", "params": []},
            ]],
            token,
        )
        assert [r["ok"] for r in results] == [True, True, True]
        assert [r["result"] for r in results] == [3, 7, "pong"]

    def test_one_failure_does_not_poison_the_batch(self, host):
        token = login(host)
        results = host.dispatch(
            "system.multicall",
            [[
                {"methodName": "calc.fail", "params": []},
                {"methodName": "calc.add", "params": [5, 5]},
            ]],
            token,
        )
        assert results[0]["ok"] is False
        assert "exploded" in results[0]["error"]
        assert results[1] == {"ok": True, "result": 10}

    def test_acl_enforced_per_subcall(self, host):
        host.users.add_user("eve", "pw", groups=("strangers",))
        token = login(host, "eve")
        results = host.dispatch(
            "system.multicall",
            [[{"methodName": "calc.add", "params": [1, 1]},
              {"methodName": "system.ping", "params": []}]],
            token,
        )
        assert results[0]["ok"] is False
        assert results[0]["code"] == 403
        assert results[1]["ok"] is True

    def test_anonymous_multicall_limited_to_anonymous_methods(self, host):
        results = host.dispatch(
            "system.multicall",
            [[{"methodName": "system.ping", "params": []},
              {"methodName": "calc.add", "params": [1, 1]}]],
            "",
        )
        assert results[0]["ok"] is True
        assert results[1]["ok"] is False
        assert results[1]["code"] == 401

    def test_nested_multicall_rejected(self, host):
        results = host.dispatch(
            "system.multicall",
            [[{"methodName": "system.multicall", "params": [[]]}]],
            "",
        )
        assert results[0]["ok"] is False
        assert "nested" in results[0]["error"]

    def test_multicall_over_real_xmlrpc(self, host):
        from repro.clarens.client import ClarensClient
        from repro.clarens.server import XmlRpcServerHandle
        from repro.clarens.transport import XmlRpcTransport

        with XmlRpcServerHandle(host) as handle:
            client = ClarensClient(XmlRpcTransport(handle.url))
            client.login("alice", "pw")
            results = client.call(
                "system.multicall",
                [{"methodName": "calc.add", "params": [2, 2]},
                 {"methodName": "system.host_name", "params": []}],
            )
            assert results[0]["result"] == 4
            assert results[1]["result"] == "test-host"
