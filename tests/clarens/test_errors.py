"""Unit tests for the fault hierarchy and wire rehydration."""

import pytest

from repro.clarens.errors import (
    AuthenticationError,
    AuthorizationError,
    ClarensFault,
    MethodNotFound,
    RemoteFault,
    SerializationError,
    ServiceNotFound,
    TransportError,
    fault_from_code,
)

ALL_FAULTS = [
    AuthenticationError, AuthorizationError, ServiceNotFound, MethodNotFound,
    SerializationError, TransportError, RemoteFault,
]


class TestFaultHierarchy:
    def test_all_are_clarens_faults(self):
        for cls in ALL_FAULTS:
            assert issubclass(cls, ClarensFault)
            assert issubclass(cls, RuntimeError)

    def test_codes_are_unique(self):
        codes = [cls.code for cls in ALL_FAULTS]
        assert len(set(codes)) == len(codes)

    def test_message_attribute(self):
        fault = AuthenticationError("bad token")
        assert fault.message == "bad token"
        assert str(fault) == "bad token"


class TestFaultFromCode:
    def test_round_trip_every_class(self):
        for cls in ALL_FAULTS:
            rebuilt = fault_from_code(cls.code, "msg")
            assert type(rebuilt) is cls
            assert rebuilt.message == "msg"

    def test_unknown_code_degrades_to_base(self):
        fault = fault_from_code(999, "strange")
        assert type(fault) is ClarensFault
        assert fault.message == "strange"

    def test_unknown_code_is_preserved_on_the_instance(self):
        # A custom middleware fault (e.g. code=451) must not be masked by
        # the base class's code=500 when rehydrated client-side.
        fault = fault_from_code(451, "blocked by policy")
        assert fault.code == 451
        assert ClarensFault.code == 500  # the class attribute is untouched
