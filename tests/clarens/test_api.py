"""Tests for the redesigned public API surface and its deprecation shims."""

import warnings

import pytest

import repro
import repro.clarens
import repro.clarens.api as api
import repro.clarens.transport as transport_mod
from repro.clarens.client import ClarensClient, resolve_transport
from repro.clarens.server import ClarensHost
from repro.clarens.transport import (
    AsyncSocketTransport,
    LoopbackTransport,
    SocketTransport,
    parse_framed_address,
)


class Echo:
    def echo(self, value):
        """Return the argument unchanged."""
        return value


@pytest.fixture
def host():
    h = ClarensHost("t")
    h.users.add_user("u", "p", groups=("g",))
    h.acl.allow("echo.*", groups=("g",))
    h.register("echo", Echo())
    return h


class TestApiSurface:
    def test_api_module_is_single_surface(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_clarens_package_mirrors_api(self):
        assert set(repro.clarens.__all__) == set(api.__all__)
        for name in ("AsyncSocketServerHandle", "AsyncSocketTransport",
                     "LoopbackTransport", "SocketTransport", "ClarensClient",
                     "Codec", "codec_names", "get_codec", "negotiate",
                     "ProtocolError", "TransportClosedError",
                     "resolve_transport", "parse_framed_address"):
            assert getattr(repro.clarens, name) is getattr(api, name)

    def test_top_level_exports_new_names(self):
        for name in ("AsyncSocketServerHandle", "AsyncSocketTransport",
                     "LoopbackTransport", "SocketTransport"):
            assert hasattr(repro, name)
        assert "InProcessTransport" not in repro.__all__
        assert "XmlRpcTransport" not in repro.__all__


class TestDeprecationShims:
    def test_clarens_old_names_warn(self):
        with pytest.warns(DeprecationWarning, match="LoopbackTransport"):
            assert repro.clarens.InProcessTransport is LoopbackTransport
        with pytest.warns(DeprecationWarning, match="SocketTransport"):
            assert repro.clarens.XmlRpcTransport is SocketTransport

    def test_transport_module_old_names_warn(self):
        with pytest.warns(DeprecationWarning):
            assert transport_mod.InProcessTransport is LoopbackTransport
        with pytest.warns(DeprecationWarning):
            assert transport_mod.XmlRpcTransport is SocketTransport

    def test_top_level_old_names_warn(self):
        with pytest.warns(DeprecationWarning):
            assert repro.InProcessTransport is LoopbackTransport
        with pytest.warns(DeprecationWarning):
            assert repro.XmlRpcTransport is SocketTransport

    def test_new_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.clarens.LoopbackTransport
            repro.clarens.SocketTransport
            transport_mod.AsyncSocketTransport

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.clarens.NoSuchThing
        with pytest.raises(AttributeError):
            transport_mod.NoSuchThing


class TestResolveTransport:
    def test_host_becomes_loopback(self, host):
        assert isinstance(resolve_transport(host), LoopbackTransport)

    def test_http_url_becomes_socket_transport(self):
        t = resolve_transport("http://127.0.0.1:1/RPC2")
        assert isinstance(t, SocketTransport)

    def test_transport_passthrough(self, host):
        t = LoopbackTransport(host)
        assert resolve_transport(t) is t

    def test_codec_rejected_for_non_framed_targets(self, host):
        with pytest.raises(ValueError):
            resolve_transport(host, codec="json")
        with pytest.raises(ValueError):
            resolve_transport("http://x:1/RPC2", codec="json")
        with pytest.raises(ValueError):
            resolve_transport(LoopbackTransport(host), codec="json")

    def test_http_url_accepts_xmlrpc_codec(self):
        t = resolve_transport("http://127.0.0.1:1/RPC2", codec="xmlrpc")
        assert isinstance(t, SocketTransport)

    def test_parse_framed_address_forms(self):
        assert parse_framed_address(("h", 7)) == ("h", 7)
        assert parse_framed_address("clarens://h:7") == ("h", 7)
        assert parse_framed_address("h:7") == ("h", 7)


class TestClientConstruction:
    def test_client_from_host(self, host):
        client = ClarensClient(host)
        assert isinstance(client.transport, LoopbackTransport)
        client.login("u", "p")
        assert client.call("echo.echo", 5) == 5

    def test_client_from_transport_instance(self, host):
        client = ClarensClient(LoopbackTransport(host))
        client.login("u", "p")
        assert client.call("echo.echo", "x") == "x"

    def test_client_clarens_url_uses_async_transport(self, host):
        from repro.clarens.aio import AsyncSocketServerHandle

        with AsyncSocketServerHandle(host) as handle:
            client = ClarensClient(handle.url, codec="xmlrpc")
            try:
                assert isinstance(client.transport, AsyncSocketTransport)
                assert client.transport.codec.name == "xmlrpc"
                client.login("u", "p")
                assert client.call("echo.echo", [1]) == [1]
            finally:
                client.close()

    def test_pipelined_batch_matches_multicall(self, host):
        """batch_reads over a pipelining transport equals the multicall path."""
        from repro.clarens.aio import AsyncSocketServerHandle

        calls = [("echo.echo", i % 3) for i in range(7)] + [("echo.nope",)]
        loop_client = ClarensClient(host)
        loop_client.login("u", "p")
        expected = loop_client.batch_reads(calls)

        with AsyncSocketServerHandle(host) as handle:
            client = ClarensClient(handle.url)
            try:
                client.login("u", "p")
                got = client.batch_reads(calls)
            finally:
                client.close()

        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert (g.ok, g.result, g.code) == (e.ok, e.result, e.code)
