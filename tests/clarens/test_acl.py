"""Unit tests for access control lists."""

import pytest

from repro.clarens.acl import AccessControlList, AclRule
from repro.clarens.auth import ANONYMOUS, Principal

ALICE = Principal(user="alice", groups=frozenset({"physicists"}))
BOB = Principal(user="bob", groups=frozenset({"students"}))


class TestAclRule:
    def test_pattern_matching(self):
        rule = AclRule(pattern="steering.*", everyone=True)
        assert rule.matches_path("steering.kill")
        assert not rule.matches_path("jobmon.kill")

    def test_everyone_covers_anonymous(self):
        rule = AclRule(pattern="*", everyone=True)
        assert rule.covers(ANONYMOUS)

    def test_user_rule(self):
        rule = AclRule(pattern="*", users=frozenset({"alice"}))
        assert rule.covers(ALICE)
        assert not rule.covers(BOB)

    def test_group_rule(self):
        rule = AclRule(pattern="*", groups=frozenset({"physicists"}))
        assert rule.covers(ALICE)
        assert not rule.covers(BOB)

    def test_non_everyone_rule_never_covers_anonymous(self):
        rule = AclRule(pattern="*", users=frozenset({""}))
        assert not rule.covers(ANONYMOUS)


class TestAccessControlList:
    def test_default_deny(self):
        acl = AccessControlList()
        assert not acl.check(ALICE, "any.method")

    def test_default_allow_configurable(self):
        acl = AccessControlList(default_allow=True)
        assert acl.check(ALICE, "any.method")

    def test_allow_by_group(self):
        acl = AccessControlList().allow("steering.*", groups=("physicists",))
        assert acl.check(ALICE, "steering.kill")
        assert not acl.check(BOB, "steering.kill")

    def test_first_match_wins(self):
        acl = (
            AccessControlList()
            .deny("steering.kill", users=("alice",))
            .allow("steering.*", groups=("physicists",))
        )
        assert not acl.check(ALICE, "steering.kill")
        assert acl.check(ALICE, "steering.pause")

    def test_deny_after_allow_is_shadowed(self):
        acl = (
            AccessControlList()
            .allow("steering.*", groups=("physicists",))
            .deny("steering.kill", users=("alice",))
        )
        assert acl.check(ALICE, "steering.kill")  # allow matched first

    def test_everyone_rule(self):
        acl = AccessControlList().allow("system.ping", everyone=True)
        assert acl.check(ANONYMOUS, "system.ping")

    def test_subjectless_rule_rejected(self):
        with pytest.raises(ValueError):
            AccessControlList().allow("x.*")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AccessControlList().allow("", everyone=True)

    def test_rules_property_ordered(self):
        acl = AccessControlList().allow("a.*", everyone=True).deny("b.*", everyone=True)
        assert [r.pattern for r in acl.rules] == ["a.*", "b.*"]

    def test_rule_does_not_apply_to_other_principal_falls_through(self):
        acl = (
            AccessControlList()
            .deny("x.y", users=("bob",))
            .allow("x.*", users=("alice",))
        )
        # Bob's deny doesn't cover alice; she falls through to the allow.
        assert acl.check(ALICE, "x.y")
