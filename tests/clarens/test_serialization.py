"""Unit tests for wire marshalling."""

import enum
from dataclasses import dataclass

import numpy as np
import pytest

from repro.clarens.errors import SerializationError
from repro.clarens.serialization import check_wire_safe, from_wire, to_wire


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclass
class Point:
    x: float
    y: float
    _secret: str = "hidden"


class TestToWire:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "s", b"bytes"):
            assert to_wire(v) == v

    def test_enum_lowered_to_value(self):
        assert to_wire(Color.RED) == "red"

    def test_numpy_scalars_lowered(self):
        assert to_wire(np.int64(5)) == 5
        assert isinstance(to_wire(np.int64(5)), int)
        assert to_wire(np.float64(2.5)) == 2.5

    def test_numpy_array_lowered_to_lists(self):
        assert to_wire(np.array([[1, 2], [3, 4]])) == [[1, 2], [3, 4]]

    def test_wide_int_becomes_float(self):
        assert to_wire(2**40) == float(2**40)
        assert to_wire(-(2**40)) == float(-(2**40))

    def test_32bit_boundaries_stay_int(self):
        assert to_wire(2**31 - 1) == 2**31 - 1
        assert to_wire(-(2**31)) == -(2**31)

    def test_dataclass_becomes_tagged_struct(self):
        wire = to_wire(Point(1.0, 2.0))
        assert wire == {"_type": "Point", "x": 1.0, "y": 2.0}

    def test_private_fields_dropped(self):
        assert "_secret" not in to_wire(Point(0.0, 0.0))

    def test_tuple_becomes_list(self):
        assert to_wire((1, 2)) == [1, 2]

    def test_set_becomes_sorted_list(self):
        assert to_wire({3, 1, 2}) == [1, 2, 3]

    def test_dict_keys_coerced_to_str(self):
        assert to_wire({1: "a"}) == {"1": "a"}

    def test_nested_structures(self):
        value = {"points": [Point(0.0, 1.0)], "tag": Color.BLUE}
        wire = to_wire(value)
        assert wire["points"][0]["x"] == 0.0
        assert wire["tag"] == "blue"

    def test_unmarshalable_raises(self):
        with pytest.raises(SerializationError):
            to_wire(lambda: None)
        with pytest.raises(SerializationError):
            to_wire(object())


class TestFromWire:
    def test_structural_identity(self):
        value = {"a": [1, 2, {"b": "c"}], "d": 2.5}
        assert from_wire(value) == value

    def test_round_trip_stability(self):
        value = to_wire({"p": Point(1.0, 2.0), "xs": (1, 2, 3)})
        assert from_wire(value) == value
        assert to_wire(from_wire(value)) == value


class TestCheckWireSafe:
    def test_accepts_wire_types(self):
        check_wire_safe({"a": [1, 2.5, "s", None, True]})

    def test_rejects_non_string_keys(self):
        with pytest.raises(SerializationError):
            check_wire_safe({1: "a"})

    def test_rejects_objects(self):
        with pytest.raises(SerializationError):
            check_wire_safe({"a": object()})

    def test_everything_to_wire_emits_is_wire_safe(self):
        value = to_wire(
            {"p": Point(1.0, 2.0), "e": Color.RED, "arr": np.arange(3), "n": 2**50}
        )
        check_wire_safe(value)


class TestMulticallResult:
    def test_wire_round_trip(self):
        from repro.clarens.serialization import MulticallResult

        ok = MulticallResult(ok=True, result=[1, 2], trace_id="t-1")
        wire = to_wire(ok)
        assert wire["_type"] == "MulticallResult"
        back = MulticallResult.from_wire(from_wire(wire))
        assert back == ok

    def test_from_wire_tolerates_legacy_shape(self):
        from repro.clarens.serialization import MulticallResult

        legacy = {"ok": False, "code": 404, "error": "gone"}
        r = MulticallResult.from_wire(legacy)
        assert (r.ok, r.code, r.error, r.trace_id) == (False, 404, "gone", "")

    def test_from_wire_rejects_garbage(self):
        from repro.clarens.serialization import MulticallResult

        with pytest.raises(SerializationError):
            MulticallResult.from_wire([1, 2, 3])


class TestTraceToken:
    def test_round_trip(self):
        from repro.clarens.serialization import decode_trace_token, encode_trace_token

        wire = encode_trace_token("tok|123|abc", "trace-9")
        token, trace = decode_trace_token(wire)
        assert (token, trace) == ("tok|123|abc", "trace-9")

    def test_empty_trace_is_identity(self):
        from repro.clarens.serialization import decode_trace_token, encode_trace_token

        assert encode_trace_token("tok", "") == "tok"
        assert decode_trace_token("tok") == ("tok", None)

    def test_trace_id_may_not_contain_bang(self):
        from repro.clarens.serialization import encode_trace_token

        with pytest.raises(SerializationError):
            encode_trace_token("tok", "bad!id")
