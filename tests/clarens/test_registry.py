"""Unit tests for service/method registration."""

import pytest

from repro.clarens.errors import MethodNotFound, ServiceNotFound
from repro.clarens.registry import ServiceRegistry, clarens_method


class PlainService:
    def visible(self):
        """A public method."""
        return 1

    def also_visible(self, x):
        return x

    def _private(self):
        return "no"


class DecoratedService:
    @clarens_method
    def exposed(self):
        """Exposed method."""
        return 1

    @clarens_method(anonymous=True)
    def open_to_all(self):
        return 2

    @clarens_method(pass_principal=True)
    def personalized(self, principal):
        return principal.user

    def not_exposed(self):
        return 3


class TestRegistration:
    def test_plain_service_exposes_all_public(self):
        reg = ServiceRegistry()
        entry = reg.register("svc", PlainService())
        assert set(entry.methods) == {"visible", "also_visible"}

    def test_decorated_service_exposes_only_marked(self):
        reg = ServiceRegistry()
        entry = reg.register("svc", DecoratedService())
        assert set(entry.methods) == {"exposed", "open_to_all", "personalized"}

    def test_explicit_method_list_wins(self):
        reg = ServiceRegistry()
        entry = reg.register("svc", PlainService(), methods=["visible"])
        assert set(entry.methods) == {"visible"}

    def test_explicit_list_with_missing_method_rejected(self):
        reg = ServiceRegistry()
        with pytest.raises(ValueError):
            reg.register("svc", PlainService(), methods=["ghost"])

    def test_duplicate_name_rejected(self):
        reg = ServiceRegistry()
        reg.register("svc", PlainService())
        with pytest.raises(ValueError):
            reg.register("svc", PlainService())

    def test_unregister(self):
        reg = ServiceRegistry()
        reg.register("svc", PlainService())
        reg.unregister("svc")
        assert not reg.has("svc")
        with pytest.raises(ServiceNotFound):
            reg.unregister("svc")

    def test_metadata_captured(self):
        reg = ServiceRegistry()
        entry = reg.register("svc", DecoratedService())
        assert entry.method("exposed").doc == "Exposed method."
        assert entry.method("open_to_all").anonymous
        assert not entry.method("exposed").anonymous
        assert entry.method("personalized").pass_principal


class TestResolution:
    def test_resolve_dotted_path(self):
        reg = ServiceRegistry()
        reg.register("svc", PlainService())
        entry = reg.resolve("svc.visible")
        assert entry.func() == 1

    def test_resolve_unknown_service(self):
        with pytest.raises(ServiceNotFound):
            ServiceRegistry().resolve("ghost.method")

    def test_resolve_unknown_method(self):
        reg = ServiceRegistry()
        reg.register("svc", PlainService())
        with pytest.raises(MethodNotFound):
            reg.resolve("svc.ghost")

    def test_resolve_undotted_path_rejected(self):
        with pytest.raises(MethodNotFound):
            ServiceRegistry().resolve("nodots")

    def test_names_sorted(self):
        reg = ServiceRegistry()
        reg.register("zeta", PlainService())
        reg.register("alpha", PlainService())
        assert reg.names() == ["alpha", "zeta"]

    def test_signature_rendering(self):
        reg = ServiceRegistry()
        entry = reg.register("svc", PlainService())
        assert "also_visible" in entry.method("also_visible").signature()
