"""Scenario spec parsing, validation, and quick-override semantics."""

import json

import pytest

from repro.scenarios.spec import (
    ChaosAction,
    ScenarioError,
    ScenarioSpec,
    WorkloadShape,
)

GRID = {
    "sites": [{"name": "siteA", "nodes": 2}, {"name": "siteB", "nodes": 2}],
    "links": [{"a": "siteA", "b": "siteB", "capacity_mbps": 100.0}],
}


def minimal(**overrides):
    data = {
        "name": "t",
        "description": "a test scenario",
        "grid": GRID,
        "workload": {"shape": "prime", "tasks": 2},
        "slos": [{"metric": "completion_ratio", "op": ">=", "threshold": 1.0}],
    }
    data.update(overrides)
    return data


class TestParsing:
    def test_round_trip_is_identity(self):
        spec = ScenarioSpec.from_dict(minimal(
            chaos=[{"kind": "outage", "site": "siteA",
                    "start_s": 10.0, "duration_s": 5.0}],
            tags=["x"],
            quick={"horizon_s": 100.0},
        ))
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.to_dict() == spec.to_dict()
        assert json.dumps(again.to_dict(), sort_keys=True) == \
            json.dumps(spec.to_dict(), sort_keys=True)

    def test_from_json_text_and_path(self, tmp_path):
        text = json.dumps(minimal())
        assert ScenarioSpec.from_json(text).name == "t"
        path = tmp_path / "t.json"
        path.write_text(text)
        assert ScenarioSpec.from_json(path).name == "t"

    def test_unknown_keys_rejected_with_path(self):
        with pytest.raises(ScenarioError, match="scenario"):
            ScenarioSpec.from_dict(minimal(bogus=1))
        with pytest.raises(ScenarioError, match="workload"):
            ScenarioSpec.from_dict(minimal(workload={"shape": "prime", "zzz": 1}))
        with pytest.raises(ScenarioError, match=r"chaos\[0\]"):
            ScenarioSpec.from_dict(minimal(chaos=[{"kind": "outage", "zzz": 1}]))

    def test_missing_description_rejected(self):
        data = minimal()
        del data["description"]
        with pytest.raises(ScenarioError, match="description"):
            ScenarioSpec.from_dict(data)

    def test_unknown_chaos_site_rejected(self):
        with pytest.raises(ScenarioError, match="unknown site"):
            ScenarioSpec.from_dict(minimal(
                chaos=[{"kind": "outage", "site": "nowhere",
                        "start_s": 0.0, "duration_s": 1.0}]
            ))

    def test_unknown_slo_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            ScenarioSpec.from_dict(minimal(
                slos=[{"metric": "vibes", "op": ">=", "threshold": 1.0}]
            ))

    def test_bad_slo_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            ScenarioSpec.from_dict(minimal(
                slos=[{"metric": "makespan_s", "op": "<", "threshold": 1.0}]
            ))


class TestWorkloadShape:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ScenarioError, match="unknown shape"):
            WorkloadShape.from_dict({"shape": "tsunami"})

    def test_multi_vo_requires_vos(self):
        with pytest.raises(ScenarioError, match="vos"):
            WorkloadShape.from_dict({"shape": "multi_vo"})

    def test_vos_only_for_multi_vo(self):
        with pytest.raises(ScenarioError, match="vos"):
            WorkloadShape.from_dict(
                {"shape": "prime", "vos": [{"owner": "cms"}]}
            )

    def test_owners(self):
        wl = WorkloadShape.from_dict({
            "shape": "multi_vo",
            "vos": [{"owner": "cms"}, {"owner": "atlas"}, {"owner": "cms"}],
        })
        assert wl.owners() == ["atlas", "cms"]
        assert WorkloadShape.from_dict({"shape": "bag", "owner": "u"}).owners() == ["u"]


class TestChaosAction:
    def test_kind_specific_validation(self):
        with pytest.raises(ScenarioError, match="site"):
            ChaosAction.from_dict({"kind": "outage", "duration_s": 5.0}, "c")
        with pytest.raises(ScenarioError, match="duration_s"):
            ChaosAction.from_dict({"kind": "outage", "site": "a"}, "c")
        with pytest.raises(ScenarioError, match="duty"):
            ChaosAction.from_dict(
                {"kind": "flapping", "site": "a", "end_s": 10.0, "duty": 2.0}, "c"
            )
        with pytest.raises(ScenarioError, match="link"):
            ChaosAction.from_dict({"kind": "degrade"}, "c")
        with pytest.raises(ScenarioError, match="sites"):
            ChaosAction.from_dict({"kind": "partition", "duration_s": 5.0}, "c")
        with pytest.raises(ScenarioError, match="mean_utilization"):
            ChaosAction.from_dict({"kind": "weather", "mean_utilization": 1.5}, "c")


class TestQuickOverrides:
    def test_quick_merges_workload_and_replaces_lists(self):
        spec = ScenarioSpec.from_dict(minimal(
            horizon_s=5000.0,
            chaos=[{"kind": "outage", "site": "siteA",
                    "start_s": 100.0, "duration_s": 50.0}],
            quick={
                "horizon_s": 500.0,
                "workload": {"tasks": 1},
                "chaos": [],
                "slos": [{"metric": "makespan_s", "op": "<=", "threshold": 400.0}],
            },
        ))
        eff = spec.effective(quick=True)
        assert eff.horizon_s == 500.0
        assert eff.workload.tasks == 1
        assert eff.workload.shape == "prime"  # merged, not replaced
        assert eff.chaos == ()
        assert [s.metric for s in eff.slos] == ["makespan_s"]
        # quick=False leaves the spec untouched
        assert spec.effective(quick=False) is spec

    def test_quick_validated_at_load_time(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(minimal(quick={"horizon_s": -5.0}))
        with pytest.raises(ScenarioError, match="quick"):
            ScenarioSpec.from_dict(minimal(quick={"seed": 3}))
