"""Engine runs, artifact schema validation, registry, and CLI wiring."""

import json

import pytest

from repro.cli import main
from repro.scenarios.engine import (
    ScenarioReportError,
    run_campaign,
    run_scenario,
    validate_scenarios_report,
    write_scenarios_report,
)
from repro.scenarios.registry import (
    load_scenario,
    render_cookbook,
    scenario_names,
)
from repro.scenarios.spec import ScenarioError, ScenarioSpec

TINY_GRID = {
    "sites": [
        {"name": "siteA", "nodes": 2, "cpus_per_node": 2},
        {"name": "siteB", "nodes": 2, "cpus_per_node": 2},
    ],
    "links": [{"a": "siteA", "b": "siteB", "capacity_mbps": 622.0}],
    "flocking": [["siteA", "siteB"], ["siteB", "siteA"]],
}


def tiny_spec(**overrides):
    data = {
        "name": "tiny",
        "description": "two prime jobs on a two-site grid",
        "grid": TINY_GRID,
        "horizon_s": 1500.0,
        "workload": {"shape": "prime", "tasks": 2, "interval_s": 60.0},
        "slos": [
            {"metric": "completion_ratio", "op": ">=", "threshold": 1.0},
            {"metric": "tasks_failed_total", "op": "<=", "threshold": 0.0},
        ],
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


class TestRunScenario:
    def test_benign_run_single_baseline_phase(self):
        entry = run_scenario(tiny_spec())
        assert entry["passed"] is True
        assert entry["workload"]["tasks"] == 2
        assert entry["workload"]["tasks_completed"] == 2
        assert [p["name"] for p in entry["phases"]] == ["baseline"]
        assert entry["phases"][0]["events"]["completed"] == 2
        assert entry["fault_events"] == 0

    def test_chaos_run_has_three_contiguous_phases(self):
        spec = tiny_spec(
            name="tiny-outage",
            chaos=[{"kind": "outage", "site": "siteA",
                    "start_s": 300.0, "duration_s": 200.0}],
            slos=[{"metric": "completion_ratio", "op": ">=", "threshold": 1.0}],
        )
        entry = run_scenario(spec)
        names = [p["name"] for p in entry["phases"]]
        assert names == ["baseline", "chaos", "recovery"]
        bounds = [(p["start_s"], p["end_s"]) for p in entry["phases"]]
        assert bounds == [(0.0, 300.0), (300.0, 500.0), (500.0, 1500.0)]
        assert entry["fault_events"] == 2  # one failure + one repair
        assert entry["chaos"][0]["kind"] == "outage"

    def test_campaign_is_seed_deterministic(self):
        one = run_campaign([tiny_spec()])
        two = run_campaign([tiny_spec()])
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)


class TestReportValidation:
    def test_round_trip_through_file(self, tmp_path):
        report = run_campaign([tiny_spec()])
        path = write_scenarios_report(report, tmp_path / "SCENARIOS.json")
        text = path.read_text()
        assert text.endswith("\n")
        validate_scenarios_report(json.loads(text))

    def test_rejects_wrong_schema_version(self):
        report = run_campaign([tiny_spec()])
        report["schema_version"] = 99
        with pytest.raises(ScenarioReportError, match="schema_version"):
            validate_scenarios_report(report)

    def test_rejects_gapped_phases(self):
        report = run_campaign([tiny_spec()])
        report["scenarios"][0]["phases"][0]["start_s"] = 5.0
        with pytest.raises(ScenarioReportError, match="previous phase"):
            validate_scenarios_report(report)

    def test_rejects_dishonest_verdict(self):
        report = run_campaign([tiny_spec()])
        report["scenarios"][0]["passed"] = False
        with pytest.raises(ScenarioReportError, match="conjunction"):
            validate_scenarios_report(report)

    def test_rejects_missing_top_level_key(self):
        report = run_campaign([tiny_spec()])
        del report["python"]
        with pytest.raises(ScenarioReportError, match="python"):
            validate_scenarios_report(report)


class TestRegistry:
    def test_library_has_required_coverage(self):
        names = scenario_names()
        assert len(names) >= 6
        kinds = set()
        for name in names:
            kinds.update(a.kind for a in load_scenario(name).chaos)
        assert {"outage", "flapping", "partition"} <= kinds

    def test_stem_must_match_name(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "not-tiny.json"
        path.write_text(json.dumps(spec.to_dict()))
        with pytest.raises(ScenarioError, match="disagree"):
            load_scenario("not-tiny", directory=tmp_path)

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            load_scenario("no-such-scenario")

    def test_render_cookbook_requires_markers(self):
        with pytest.raises(ScenarioError, match="marker"):
            render_cookbook("no markers here\n")


class TestCli:
    def test_run_quick_writes_artifact(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps(tiny_spec().to_dict()))
        out = tmp_path / "SCENARIOS.json"
        code = main(["scenario", "run", str(spec_path), "--quick",
                     "--out", str(out)])
        assert code == 0
        assert "campaign: PASS" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["quick"] is True
        assert report["scenarios"][0]["name"] == "tiny"

    def test_run_unknown_scenario_is_usage_error(self, capsys):
        code = main(["scenario", "run", "no-such-scenario", "--out", "-"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_list_and_validate_library(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "benign-baseline" in out
        assert main(["scenario", "validate"]) == 0
        out = capsys.readouterr().out
        assert out.count(": ok") >= 6

    def test_validate_report_schema(self, tmp_path, capsys):
        report = run_campaign([tiny_spec()])
        path = write_scenarios_report(report, tmp_path / "SCENARIOS.json")
        assert main(["scenario", "validate", "--report", str(path)]) == 0
        assert "schema ok" in capsys.readouterr().out
        path.write_text("{}")
        assert main(["scenario", "validate", "--report", str(path)]) == 1
