"""Unit tests for Backup and Recovery (§4.2.4)."""

import pytest

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState, Task, TaskSpec


def make_gae():
    grid = (
        GridBuilder(seed=5)
        .site("siteA", background_load=0.0)
        .site("siteB", background_load=0.0)
        .probe_noise(0.0)
        .build()
    )
    return build_gae(grid)


def submit_to(gae, site_name, work=100.0, outputs=("out.root",)):
    t = Task(
        spec=TaskSpec(owner="alice", requested_cpu_hours=work / 3600.0,
                      output_files=outputs),
        work_seconds=work,
    )
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda task, exclude=(): site_name
    try:
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
    finally:
        gae.scheduler.select_site = original
    return t


class TestCompletionHandling:
    def test_client_notified_and_state_archived(self):
        gae = make_gae()
        t = submit_to(gae, "siteA", work=50.0)
        gae.sim.run_until(60.0)
        br = gae.steering.backup_recovery
        kinds = [n.kind for n in br.notifications if n.task_id == t.task_id]
        assert "completion" in kinds
        state = br.execution_states[t.task_id]
        assert state["state"] == "completed"
        assert state["output_files"] == ["out.root"]

    def test_notification_carries_owner(self):
        gae = make_gae()
        t = submit_to(gae, "siteA", work=10.0)
        gae.sim.run_until(20.0)
        note = [n for n in gae.steering.backup_recovery.notifications
                if n.kind == "completion"][0]
        assert note.owner == "alice"
        assert note.site == "siteA"


class TestTaskFailureHandling:
    def test_failure_notifies_and_salvages_files(self):
        gae = make_gae()
        t = submit_to(gae, "siteA")
        gae.sim.run_until(10.0)
        gae.grid.execution_services["siteA"].pool.fail_task(t.task_id)
        br = gae.steering.backup_recovery
        kinds = [n.kind for n in br.notifications if n.task_id == t.task_id]
        assert "failure" in kinds
        assert br.recovered_files[t.task_id] == ["out.root.partial"]

    def test_failed_task_resubmitted_elsewhere(self):
        gae = make_gae()
        t = submit_to(gae, "siteA")
        gae.sim.run_until(10.0)
        gae.grid.execution_services["siteA"].pool.fail_task(t.task_id)
        assert gae.grid.execution_services["siteB"].pool.has_task(t.task_id)
        gae.sim.run_until(200.0)
        assert t.state is JobState.COMPLETED

    def test_resubmission_notification_sent(self):
        gae = make_gae()
        t = submit_to(gae, "siteA")
        gae.grid.execution_services["siteA"].pool.fail_task(t.task_id)
        notes = [n for n in gae.steering.backup_recovery.notifications
                 if n.kind == "resubmission"]
        assert len(notes) == 1
        assert "siteB" in notes[0].detail

    def test_resubmission_can_be_disabled(self):
        gae = make_gae()
        gae.steering.backup_recovery.resubmit_failed_tasks = False
        t = submit_to(gae, "siteA")
        gae.grid.execution_services["siteA"].pool.fail_task(t.task_id)
        assert not gae.grid.execution_services["siteB"].pool.has_task(t.task_id)


class TestServiceFailureSweep:
    def test_down_service_detected_and_tasks_resubmitted(self):
        gae = make_gae()
        t = submit_to(gae, "siteA")
        gae.sim.run_until(10.0)
        gae.grid.execution_services["siteA"].fail()  # crashes pool too
        br = gae.steering.backup_recovery
        down = br.check_services()
        assert down == ["siteA"]
        assert "siteA" in br.failed_sites
        assert gae.grid.execution_services["siteB"].pool.has_task(t.task_id)
        gae.sim.run_until(300.0)
        assert t.state is JobState.COMPLETED

    def test_service_failure_notification(self):
        gae = make_gae()
        submit_to(gae, "siteA")
        gae.grid.execution_services["siteA"].fail()
        gae.steering.backup_recovery.check_services()
        kinds = {n.kind for n in gae.steering.backup_recovery.notifications}
        assert "service-failure" in kinds

    def test_sweep_does_not_double_resubmit(self):
        gae = make_gae()
        t = submit_to(gae, "siteA")
        gae.grid.execution_services["siteA"].fail()
        br = gae.steering.backup_recovery
        br.check_services()
        br.check_services()  # second sweep: site already known failed
        resubs = [n for n in br.notifications if n.kind == "resubmission"]
        assert len(resubs) == 1

    def test_recovered_service_leaves_failed_set(self):
        gae = make_gae()
        submit_to(gae, "siteA")
        es = gae.grid.execution_services["siteA"]
        es.fail()
        br = gae.steering.backup_recovery
        br.check_services()
        es.recover()
        br.check_services()
        assert "siteA" not in br.failed_sites

    def test_periodic_sweep_under_simulation_clock(self):
        gae = make_gae()
        policy_interval = gae.steering.backup_recovery.ping_interval_s
        t = submit_to(gae, "siteA")
        gae.steering.backup_recovery.start()
        gae.sim.run_until(5.0)
        gae.grid.execution_services["siteA"].fail()
        gae.sim.run_until(policy_interval + 6.0)  # one sweep fired
        assert gae.grid.execution_services["siteB"].pool.has_task(t.task_id)
        gae.steering.backup_recovery.stop()

    def test_double_start_rejected(self):
        gae = make_gae()
        br = gae.steering.backup_recovery
        br.start()
        with pytest.raises(RuntimeError):
            br.start()
        br.stop()

    def test_notification_listeners_fan_out(self):
        gae = make_gae()
        seen = []
        gae.steering.backup_recovery.notification_listeners.append(
            lambda n: seen.append(n.kind)
        )
        t = submit_to(gae, "siteA", work=5.0)
        gae.sim.run_until(10.0)
        assert "completion" in seen
