"""Unit tests for the Subscriber (§4.2.1)."""

import pytest

from repro.core.steering.subscriber import Subscriber
from repro.gridsim.job import ConcreteJobPlan, Job, JobState, Task, TaskBinding, TaskSpec


def make_job(n=2, owner="u"):
    tasks = [Task(spec=TaskSpec(owner=owner), work_seconds=10.0) for _ in range(n)]
    return Job(tasks=tasks, owner=owner)


def make_plan(job, sites):
    return ConcreteJobPlan(
        job_id=job.job_id,
        bindings=tuple(
            TaskBinding(t.task_id, sites[i % len(sites)]) for i, t in enumerate(job.tasks)
        ),
    )


class TestReceivePlan:
    def test_subscription_created(self):
        sub = Subscriber()
        job = make_job()
        plan = make_plan(job, ["a", "b"])
        s = sub.receive_plan(plan, job)
        assert s.job is job
        assert s.execution_sites == ["a", "b"]
        assert sub.has_job(job.job_id)

    def test_updated_plan_replaces_and_keeps_history(self):
        sub = Subscriber()
        job = make_job()
        p1 = make_plan(job, ["a"])
        p2 = make_plan(job, ["b"])
        sub.receive_plan(p1, job)
        s = sub.receive_plan(p2, job)
        assert s.plan is p2
        assert s.plan_history == [p1, p2]

    def test_task_index(self):
        sub = Subscriber()
        job = make_job()
        sub.receive_plan(make_plan(job, ["a"]), job)
        t = job.tasks[0]
        assert sub.job_of_task(t.task_id) == job.job_id
        assert sub.task(t.task_id) is t
        assert sub.site_of_task(t.task_id) == "a"

    def test_unknown_lookups_raise(self):
        sub = Subscriber()
        with pytest.raises(KeyError):
            sub.job_of_task("ghost")
        with pytest.raises(KeyError):
            sub.subscription("ghost")


class TestAggregates:
    def test_jobs_listed_in_order(self):
        sub = Subscriber()
        j1, j2 = make_job(), make_job()
        sub.receive_plan(make_plan(j1, ["a"]), j1)
        sub.receive_plan(make_plan(j2, ["b"]), j2)
        assert sub.jobs() == [j1, j2]

    def test_active_tasks_excludes_settled(self):
        sub = Subscriber()
        job = make_job(n=3)
        sub.receive_plan(make_plan(job, ["a"]), job)
        job.tasks[0].state = JobState.COMPLETED
        job.tasks[1].state = JobState.RUNNING
        active = sub.active_tasks()
        assert job.tasks[0] not in active
        assert job.tasks[1] in active
        assert job.tasks[2] in active  # pending

    def test_execution_sites_in_use_unions_plans(self):
        sub = Subscriber()
        j1, j2 = make_job(), make_job()
        sub.receive_plan(make_plan(j1, ["a", "b"]), j1)
        sub.receive_plan(make_plan(j2, ["c"]), j2)
        assert sub.execution_sites_in_use() == {"a", "b", "c"}
