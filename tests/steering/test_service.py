"""Unit tests for the Steering Service facade (§4)."""

import pytest

from repro.clarens.errors import RemoteFault
from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState
from repro.core.estimators.history import HistoryRepository
from repro.workloads.generators import make_prime_count_task, prime_job_history_records


def make_gae(policy=None):
    grid = (
        GridBuilder(seed=9)
        .site("siteA", background_load=1.5)
        .site("siteB", background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.0)
        .probe_noise(0.0)
        .build()
    )
    history = HistoryRepository(prime_job_history_records(n=8, sigma=0.0))
    gae = build_gae(grid, policy=policy, history=history)
    gae.add_user("alice", "pw")
    gae.add_user("bob", "pw")
    return gae


def submit_to(gae, site, owner="alice", checkpointable=False):
    t = make_prime_count_task(owner=owner, checkpointable=checkpointable)
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda task, exclude=(): site
    try:
        gae.scheduler.submit_job(Job(tasks=[t], owner=owner))
    finally:
        gae.scheduler.select_site = original
    return t


class TestClientVerbs:
    def test_owner_can_control_own_job(self):
        gae = make_gae()
        t = submit_to(gae, "siteB")
        client = gae.client("alice", "pw")
        steering = client.service("steering")
        assert steering.pause(t.task_id)["ok"]
        assert t.state is JobState.PAUSED
        assert steering.resume(t.task_id)["ok"]
        assert steering.set_priority(t.task_id, 5)["ok"]
        assert steering.kill(t.task_id)["ok"]
        assert t.state is JobState.KILLED

    def test_stranger_denied(self):
        gae = make_gae()
        t = submit_to(gae, "siteB", owner="alice")
        bob = gae.client("bob", "pw")
        with pytest.raises(RemoteFault):
            bob.service("steering").kill(t.task_id)
        assert t.state is JobState.RUNNING

    def test_manual_move(self):
        """'the user could have moved the job from site A to site B
        manually as well' (§7)."""
        gae = make_gae()
        t = submit_to(gae, "siteA")
        gae.sim.run_until(30.0)
        client = gae.client("alice", "pw")
        result = client.service("steering").move(t.task_id, "siteB")
        assert result["ok"]
        gae.grid.run_until(400.0)
        assert t.state is JobState.COMPLETED

    def test_task_progress_feedback(self):
        gae = make_gae()
        t = submit_to(gae, "siteB")
        gae.sim.run_until(100.0)
        out = gae.client("alice", "pw").service("steering").task_progress(t.task_id)
        assert out["status"] == "running"
        assert out["progress"] == pytest.approx(100.0 / 283.0)
        assert out["site"] == "siteB"

    def test_job_feedback_lists_tasks(self):
        gae = make_gae()
        t = submit_to(gae, "siteB")
        gae.sim.run_until(10.0)
        feedback = gae.client("alice", "pw").service("steering").job_feedback(t.job_id)
        assert [r["task_id"] for r in feedback] == [t.task_id]

    def test_evaluate_move_advisory(self):
        gae = make_gae()
        t = submit_to(gae, "siteA")
        gae.sim.run_until(100.0)
        out = gae.client("alice", "pw").service("steering").evaluate_move(t.task_id)
        assert out["should_move"] is True
        assert out["target_site"] == "siteB"
        assert t.state is JobState.RUNNING  # advisory only, no action

    def test_notifications_scoped_to_owner(self):
        gae = make_gae()
        t = submit_to(gae, "siteB", owner="alice")
        gae.grid.execution_services["siteB"].pool.fail_task(t.task_id)
        alice_notes = gae.client("alice", "pw").service("steering").notifications()
        bob_notes = gae.client("bob", "pw").service("steering").notifications()
        assert len(alice_notes) >= 1
        assert bob_notes == []

    def test_download_execution_state(self):
        gae = make_gae()
        t = submit_to(gae, "siteB")
        gae.sim.run_until(300.0)
        state = gae.client("alice", "pw").service("steering").download_execution_state(
            t.task_id
        )
        assert state["state"] == "completed"

    def test_download_missing_state_faults(self):
        gae = make_gae()
        t = submit_to(gae, "siteB")
        with pytest.raises(RemoteFault):
            gae.client("alice", "pw").service("steering").download_execution_state(t.task_id)


class TestAutonomousLoop:
    def test_loop_moves_slow_job(self):
        policy = SteeringPolicy(poll_interval_s=20.0, min_elapsed_wall_s=60.0,
                                slow_rate_threshold=0.8)
        gae = make_gae(policy=policy)
        t = submit_to(gae, "siteA")
        gae.start()
        gae.grid.run_until(600.0)
        gae.stop()
        assert t.state is JobState.COMPLETED
        assert len(gae.steering.actions) == 1
        action = gae.steering.actions[0]
        assert action.decision.target_site == "siteB"
        assert action.result.ok

    def test_auto_move_disabled_records_nothing(self):
        policy = SteeringPolicy(poll_interval_s=20.0, min_elapsed_wall_s=60.0,
                                auto_move=False)
        gae = make_gae(policy=policy)
        t = submit_to(gae, "siteA")
        gae.start()
        gae.grid.run_until(200.0)
        gae.stop()
        moves = [a for a in gae.steering.actions if a.result is not None]
        assert moves == []
        # decision was still observed
        assert any(a.decision.should_move for a in gae.steering.actions)

    def test_steer_once_idempotent_after_move(self):
        policy = SteeringPolicy(poll_interval_s=20.0, min_elapsed_wall_s=60.0)
        gae = make_gae(policy=policy)
        t = submit_to(gae, "siteA")
        gae.sim.run_until(100.0)
        first = gae.steering.steer_once()
        assert len(first) == 1
        second = gae.steering.steer_once()  # now freshly started on siteB
        assert second == []

    def test_double_start_rejected(self):
        gae = make_gae()
        gae.steering.start()
        with pytest.raises(RuntimeError):
            gae.steering.start()
        gae.steering.stop()


class TestMyJobs:
    def test_lists_only_callers_jobs(self):
        gae = make_gae()
        mine = submit_to(gae, "siteB", owner="alice")
        submit_to(gae, "siteB", owner="bob")
        jobs = gae.client("alice", "pw").service("steering").my_jobs()
        assert len(jobs) == 1
        assert jobs[0]["job_id"] == mine.job_id
        assert jobs[0]["tasks"] == 1
        assert jobs[0]["sites"] == ["siteB"]

    def test_reflects_completion_counts(self):
        gae = make_gae()
        t = submit_to(gae, "siteB", owner="alice")
        gae.grid.run_until(400.0)
        [summary] = gae.client("alice", "pw").service("steering").my_jobs()
        assert summary["state"] == "completed"
        assert summary["completed"] == 1

    def test_empty_for_user_without_jobs(self):
        gae = make_gae()
        assert gae.client("bob", "pw").service("steering").my_jobs() == []
