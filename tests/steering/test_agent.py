"""Unit tests for the adaptive steering agent (§1's learning agent)."""

import pytest

from repro.core.steering.agent import AdaptiveSteeringAgent, MoveObservation
from repro.core.steering.optimizer import SteeringPolicy
from repro.core.monitoring.records import MonitoringRecord
from repro.core.estimators.history import HistoryRepository
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState
from repro.workloads.generators import make_prime_count_task, prime_job_history_records


def make_record(task_id="t1", elapsed=40.0, started_at=0.0, progress=0.2, owner="alice"):
    return MonitoringRecord(
        task_id=task_id, job_id="j1", site="siteA", status="running",
        elapsed_time_s=elapsed, estimated_run_time_s=283.0,
        remaining_time_s=243.0, progress=progress, queue_position=-1,
        priority=0, submission_time=0.0, execution_time=started_at,
        completion_time=None, cpu_time_used_s=elapsed, input_io_mb=0.0,
        output_io_mb=0.0, owner=owner,
    )


class TestObservation:
    def test_records_rate_and_reaction(self):
        agent = AdaptiveSteeringAgent()
        # Moved at t=100 after starting at t=0 with 40s accrued -> rate 0.4.
        agent.observe_manual_move(100.0, make_record(elapsed=40.0))
        [obs] = agent.observations
        assert obs.progress_rate == pytest.approx(0.4)
        assert obs.reaction_time_s == pytest.approx(100.0)

    def test_never_started_tasks_skipped(self):
        agent = AdaptiveSteeringAgent()
        rec = make_record()
        rec = type(rec)(**{**rec.__dict__, "execution_time": None})
        agent.observe_manual_move(100.0, rec)
        assert agent.n_observations == 0

    def test_rate_capped_at_one(self):
        agent = AdaptiveSteeringAgent()
        agent.observe_manual_move(10.0, make_record(elapsed=50.0))
        assert agent.observations[0].progress_rate == 1.0


class TestLearning:
    def test_below_min_observations_returns_base(self):
        base = SteeringPolicy(slow_rate_threshold=0.8)
        agent = AdaptiveSteeringAgent(base_policy=base, min_observations=3)
        agent.observe_manual_move(100.0, make_record())
        assert agent.recommended_policy() == base

    def test_threshold_learned_from_rates(self):
        agent = AdaptiveSteeringAgent(min_observations=3, rate_quantile=1.0,
                                      safety_margin=1.0)
        # Users moved jobs running at rates 0.3, 0.5, 0.55.
        for t, elapsed in ((100.0, 30.0), (100.0, 50.0), (100.0, 55.0)):
            agent.observe_manual_move(t, make_record(elapsed=elapsed))
        policy = agent.recommended_policy()
        assert policy.slow_rate_threshold == pytest.approx(0.55)

    def test_reaction_time_drives_poll_and_grace(self):
        agent = AdaptiveSteeringAgent(min_observations=2)
        agent.observe_manual_move(60.0, make_record(elapsed=30.0))
        agent.observe_manual_move(100.0, make_record(task_id="t2", elapsed=40.0))
        policy = agent.recommended_policy()
        assert policy.poll_interval_s == pytest.approx(40.0)   # median 80 / 2
        assert policy.min_elapsed_wall_s == pytest.approx(40.0)

    def test_threshold_clamped_valid(self):
        agent = AdaptiveSteeringAgent(min_observations=1, safety_margin=10.0)
        agent.observe_manual_move(100.0, make_record(elapsed=99.0))
        assert 0.0 < agent.recommended_threshold() <= 0.99

    def test_summary_mentions_observations(self):
        agent = AdaptiveSteeringAgent(min_observations=1)
        assert "no manual moves" in agent.summary()
        agent.observe_manual_move(100.0, make_record())
        assert "1 manual moves" in agent.summary()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSteeringAgent(min_observations=0)
        with pytest.raises(ValueError):
            AdaptiveSteeringAgent(rate_quantile=0.0)


class TestEndToEndLearning:
    def make_gae(self):
        grid = (
            GridBuilder(seed=13)
            .site("siteA", background_load=1.0)
            .site("siteB", background_load=0.0)
            .probe_noise(0.0)
            .build()
        )
        history = HistoryRepository(prime_job_history_records(n=8, sigma=0.0))
        # Autonomous moving disabled: only the human moves jobs.
        policy = SteeringPolicy(auto_move=False, min_elapsed_wall_s=1e9)
        gae = build_gae(grid, policy=policy, history=history)
        gae.add_user("alice", "pw")
        return gae

    def submit_pinned(self, gae, site="siteA"):
        t = make_prime_count_task(owner="alice")
        original = gae.scheduler.select_site
        gae.scheduler.select_site = lambda task, exclude=(): site
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
        gae.scheduler.select_site = original
        return t

    def test_agent_learns_from_manual_moves_through_the_api(self):
        gae = self.make_gae()
        agent = AdaptiveSteeringAgent(min_observations=2)
        gae.steering.attach_agent(agent)
        client = gae.client("alice", "pw")
        steering = client.service("steering")

        # Alice moves two jobs by hand after watching them crawl (rate 0.5).
        for _ in range(2):
            t = self.submit_pinned(gae)
            gae.grid.run_until(gae.sim.now + 120.0)
            steering.move(t.task_id, "siteB")
        assert agent.n_observations == 2
        learned = agent.recommended_policy()
        # She moved at rate 0.5, so the learned threshold covers 0.5.
        assert learned.slow_rate_threshold >= 0.5
        # Reaction ~120 s -> poll/grace ~60 s.
        assert learned.poll_interval_s == pytest.approx(60.0)

    def test_adopted_policy_drives_autonomous_moves(self):
        gae = self.make_gae()
        agent = AdaptiveSteeringAgent(min_observations=2)
        gae.steering.attach_agent(agent)
        client = gae.client("alice", "pw")
        for _ in range(2):
            t = self.submit_pinned(gae)
            gae.grid.run_until(gae.sim.now + 120.0)
            client.service("steering").move(t.task_id, "siteB")

        learned = agent.recommended_policy()
        from dataclasses import replace
        gae.steering.adopt_policy(replace(learned, auto_move=True))

        # Let the manually moved jobs drain off siteB first, then submit a
        # new slow job: the loop should now move it autonomously.
        gae.grid.run_until(gae.sim.now + 700.0)
        t = self.submit_pinned(gae)
        gae.steering.start()
        gae.grid.run_until(gae.sim.now + 1000.0)
        gae.stop()
        assert t.state is JobState.COMPLETED
        assert any(a.task_id == t.task_id for a in gae.steering.actions)
        assert gae.grid.execution_services["siteB"].pool.has_task(t.task_id)

    def test_optimizer_moves_do_not_train_the_agent(self):
        gae = self.make_gae()
        from dataclasses import replace
        gae.steering.adopt_policy(
            replace(gae.steering.policy, auto_move=True, min_elapsed_wall_s=60.0,
                    poll_interval_s=30.0)
        )
        agent = AdaptiveSteeringAgent(min_observations=1)
        gae.steering.attach_agent(agent)
        t = self.submit_pinned(gae)
        gae.steering.start()
        gae.grid.run_until(800.0)
        gae.stop()
        # The autonomous loop moved the job, but the agent saw no *manual* move.
        assert any(a.task_id == t.task_id for a in gae.steering.actions)
        assert agent.n_observations == 0
