"""Unit tests for the Command Processor (§4.2.2)."""

import pytest

from repro.core.steering.commands import CommandProcessor
from repro.core.steering.subscriber import Subscriber
from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import Job, JobState, Task, TaskSpec
from repro.gridsim.scheduler import SphinxScheduler
from repro.gridsim.site import Site


@pytest.fixture
def env():
    sim = Simulator()
    scheduler = SphinxScheduler(sim)
    services = {}
    for name, load in (("fast", 0.0), ("slow", 2.0)):
        es = ExecutionService(Site.simple(sim, name, background_load=load))
        es.runtime_estimator = lambda spec: spec.requested_cpu_hours * 3600.0
        scheduler.register_site(es)
        services[name] = es
    subscriber = Subscriber()
    scheduler.plan_listeners.append(subscriber.receive_plan)
    processor = CommandProcessor(subscriber, scheduler, services)
    return sim, scheduler, services, processor


def submit(scheduler, work=100.0, checkpointable=False):
    t = Task(spec=TaskSpec(requested_cpu_hours=work / 3600.0), work_seconds=work,
             checkpointable=checkpointable)
    scheduler.submit_job(Job(tasks=[t], owner="u"))
    return t


class TestVerbs:
    def test_kill(self, env):
        sim, scheduler, _, proc = env
        t = submit(scheduler)
        result = proc.kill(t.task_id)
        assert result.ok
        assert t.state is JobState.KILLED

    def test_pause_and_resume(self, env):
        sim, scheduler, _, proc = env
        t = submit(scheduler)
        assert proc.pause(t.task_id).ok
        assert t.state is JobState.PAUSED
        assert proc.resume(t.task_id).ok
        assert t.state is JobState.RUNNING

    def test_set_priority(self, env):
        sim, scheduler, services, proc = env
        t = submit(scheduler)
        result = proc.set_priority(t.task_id, 9)
        assert result.ok
        assert services["fast"].job_status(t.task_id).priority == 9

    def test_move_auto_target(self, env):
        sim, scheduler, services, proc = env
        t = submit(scheduler)          # lands on "fast"
        sim.run_until(20.0)
        result = proc.move(t.task_id)
        assert result.ok
        assert "slow" in result.detail
        assert services["slow"].pool.has_task(t.task_id)

    def test_move_explicit_target(self, env):
        sim, scheduler, services, proc = env
        t = submit(scheduler)
        result = proc.move(t.task_id, target_site="slow")
        assert result.ok
        assert services["slow"].pool.has_task(t.task_id)

    def test_move_restarts_noncheckpointable_from_zero(self, env):
        sim, scheduler, services, proc = env
        t = submit(scheduler, work=100.0)
        sim.run_until(40.0)
        proc.move(t.task_id, target_site="slow")
        assert services["slow"].pool.ad(t.task_id).accrued_work == 0.0

    def test_move_carries_checkpoint(self, env):
        sim, scheduler, services, proc = env
        t = submit(scheduler, work=100.0, checkpointable=True)
        sim.run_until(40.0)
        result = proc.move(t.task_id, target_site="slow")
        assert "carried 40.0s" in result.detail
        assert services["slow"].pool.ad(t.task_id).accrued_work == pytest.approx(40.0)


class TestFailureHandling:
    def test_unknown_task_fails_cleanly(self, env):
        _, _, _, proc = env
        result = proc.kill("ghost")
        assert not result.ok
        assert "ghost" in result.detail

    def test_verb_against_down_service_fails_cleanly(self, env):
        sim, scheduler, services, proc = env
        t = submit(scheduler)
        services["fast"].fail(crash_pool=False)
        result = proc.pause(t.task_id)
        assert not result.ok
        assert "down" in result.detail

    def test_invalid_transition_reported(self, env):
        sim, scheduler, _, proc = env
        t = submit(scheduler)
        result = proc.resume(t.task_id)  # not paused
        assert not result.ok

    def test_log_records_everything(self, env):
        sim, scheduler, _, proc = env
        t = submit(scheduler)
        proc.pause(t.task_id)
        proc.resume(t.task_id)
        proc.kill("ghost")
        assert [(r.command, r.ok) for r in proc.log] == [
            ("pause", True), ("resume", True), ("kill", False),
        ]
