"""Unit tests for the Optimizer (§4.2.2): detection and best-site choice."""

import pytest

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job
from repro.workloads.generators import make_prime_count_task, prime_job_history_records
from repro.core.estimators.history import HistoryRepository


def make_gae(policy=None, load_a=1.5):
    grid = (
        GridBuilder(seed=1)
        .site("siteA", background_load=load_a)
        .site("siteB", background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.0)
        .probe_noise(0.0)
        .build()
    )
    history = HistoryRepository(prime_job_history_records(n=8, sigma=0.0))
    return build_gae(grid, policy=policy, history=history)


def submit_to(gae, site_name, task, owner="alice"):
    """Force a job onto a specific site (reproducing the paper's setup)."""
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): site_name
    try:
        return gae.scheduler.submit_job(Job(tasks=[task], owner=owner))
    finally:
        gae.scheduler.select_site = original


class TestPolicyValidation:
    def test_bad_preference(self):
        with pytest.raises(ValueError):
            SteeringPolicy(preference="lucky")

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            SteeringPolicy(slow_rate_threshold=0.0)
        with pytest.raises(ValueError):
            SteeringPolicy(slow_rate_threshold=1.5)

    def test_bad_improvement_factor(self):
        with pytest.raises(ValueError):
            SteeringPolicy(min_improvement_factor=0.5)

    def test_bad_poll_interval(self):
        with pytest.raises(ValueError):
            SteeringPolicy(poll_interval_s=0.0)

    def test_cheap_preference_requires_accounting(self):
        gae = make_gae()
        from repro.core.steering.optimizer import Optimizer

        with pytest.raises(ValueError):
            Optimizer(
                sim=gae.sim,
                policy=SteeringPolicy(preference="cheap"),
                subscriber=gae.steering.subscriber,
                monitoring=gae.monitoring.executable,
                estimators=gae.estimators,
                accounting=None,
            )


class TestDetection:
    def test_healthy_task_not_moved(self):
        gae = make_gae()
        task = make_prime_count_task()
        submit_to(gae, "siteB", task)  # free CPU, rate 1.0
        gae.sim.run_until(100.0)
        decision = gae.steering.optimizer.evaluate(task.task_id)
        assert not decision.should_move
        assert "healthy" in decision.reason

    def test_grace_period_respected(self):
        gae = make_gae(policy=SteeringPolicy(min_elapsed_wall_s=120.0))
        task = make_prime_count_task()
        submit_to(gae, "siteA", task)
        gae.sim.run_until(60.0)
        decision = gae.steering.optimizer.evaluate(task.task_id)
        assert not decision.should_move
        assert "grace" in decision.reason

    def test_slow_task_on_loaded_site_flagged(self):
        gae = make_gae(policy=SteeringPolicy(min_elapsed_wall_s=60.0))
        task = make_prime_count_task()
        submit_to(gae, "siteA", task)  # load 1.5 -> rate 0.4
        gae.sim.run_until(100.0)
        decision = gae.steering.optimizer.evaluate(task.task_id)
        assert decision.should_move
        assert decision.target_site == "siteB"
        assert decision.progress_rate == pytest.approx(0.4, rel=0.01)
        assert decision.best_alternative_s < decision.remaining_here_s

    def test_queued_task_not_evaluated_for_move(self):
        gae = make_gae()
        blocker = make_prime_count_task()
        queued = make_prime_count_task()
        submit_to(gae, "siteA", blocker)
        submit_to(gae, "siteA", queued)
        gae.sim.run_until(100.0)
        decision = gae.steering.optimizer.evaluate(queued.task_id)
        assert not decision.should_move
        assert "not running" in decision.reason

    def test_unknown_task_handled(self):
        gae = make_gae()
        decision = gae.steering.optimizer.evaluate("ghost")
        assert not decision.should_move

    def test_no_move_without_sufficient_improvement(self):
        # siteB nearly as loaded as siteA: moving is pointless.
        gae = make_gae(load_a=1.5)
        gae.grid.sites["siteB"].nodes[0].load_profile = (
            gae.grid.sites["siteA"].nodes[0].load_profile
        )
        task = make_prime_count_task()
        submit_to(gae, "siteA", task)
        # Seed MonALISA-load so the alternative looks equally bad via queue?
        # The estimator's completion includes queue time only; emulate a busy
        # alternative by stuffing siteB's queue.
        for _ in range(10):
            filler = make_prime_count_task()
            gae.grid.execution_services["siteB"].submit_task(filler)
            gae.estimators.estimate_db.record(filler.task_id, 283.0)
        gae.sim.run_until(100.0)
        decision = gae.steering.optimizer.evaluate(task.task_id)
        assert not decision.should_move


class TestTargetChoice:
    def test_fast_preference_picks_min_completion(self):
        grid = (
            GridBuilder(seed=1)
            .site("siteA", background_load=2.0)
            .site("siteB", background_load=0.0)
            .site("siteC", background_load=0.0)
            .probe_noise(0.0)
            .build()
        )
        history = HistoryRepository(prime_job_history_records(n=8, sigma=0.0))
        gae = build_gae(grid, history=history)
        # Make siteC busier than siteB so "fast" prefers siteB.
        filler = make_prime_count_task()
        gae.grid.execution_services["siteC"].submit_task(filler)
        gae.estimators.estimate_db.record(filler.task_id, 283.0)
        task = make_prime_count_task()
        original = gae.scheduler.select_site
        gae.scheduler.select_site = lambda t, exclude=(): "siteA"
        gae.scheduler.submit_job(Job(tasks=[task], owner="u"))
        gae.scheduler.select_site = original
        gae.sim.run_until(100.0)
        decision = gae.steering.optimizer.evaluate(task.task_id)
        assert decision.should_move
        assert decision.target_site == "siteB"

    def test_cheap_preference_uses_accounting(self):
        grid = (
            GridBuilder(seed=1)
            .site("siteA", background_load=2.0, cpu_hour_rate=1.0)
            .site("siteB", background_load=0.0, cpu_hour_rate=10.0)
            .site("siteC", background_load=0.0, cpu_hour_rate=0.1)
            .probe_noise(0.0)
            .build()
        )
        history = HistoryRepository(prime_job_history_records(n=8, sigma=0.0))
        gae = build_gae(grid, history=history,
                        policy=SteeringPolicy(preference="cheap"))
        task = make_prime_count_task()
        original = gae.scheduler.select_site
        gae.scheduler.select_site = lambda t, exclude=(): "siteA"
        gae.scheduler.submit_job(Job(tasks=[task], owner="u"))
        gae.scheduler.select_site = original
        gae.sim.run_until(100.0)
        decision = gae.steering.optimizer.evaluate(task.task_id)
        assert decision.should_move
        assert decision.target_site == "siteC"  # cheapest eligible

    def test_checkpointable_task_counts_only_remaining_work(self):
        gae = make_gae()
        task = make_prime_count_task(checkpointable=True)
        submit_to(gae, "siteA", task)
        gae.sim.run_until(200.0)  # 80 s accrued at rate 0.4
        decision = gae.steering.optimizer.evaluate(task.task_id)
        assert decision.should_move
        # Remaining work ~203 s beats the full 283 s restart.
        assert decision.candidates["siteB"] < 283.0
