"""Unit tests for the Session Manager (§4.2.5)."""

import pytest

from repro.clarens.auth import ANONYMOUS, Principal
from repro.core.steering.session_manager import (
    OPTIMIZER_PRINCIPAL,
    SessionManager,
    SteeringAuthError,
)
from repro.core.steering.subscriber import Subscriber
from repro.gridsim.job import ConcreteJobPlan, Job, Task, TaskBinding, TaskSpec

ALICE = Principal(user="alice", groups=frozenset())
BOB = Principal(user="bob", groups=frozenset())
ADMIN = Principal(user="root", groups=frozenset({"grid-admins"}))


@pytest.fixture
def manager():
    sub = Subscriber()
    task = Task(spec=TaskSpec(owner="alice"), work_seconds=10.0)
    job = Job(tasks=[task], owner="alice")
    plan = ConcreteJobPlan(job_id=job.job_id, bindings=(TaskBinding(task.task_id, "a"),))
    sub.receive_plan(plan, job)
    return SessionManager(sub), task, job


class TestTaskAuthorization:
    def test_owner_may_steer(self, manager):
        mgr, task, _ = manager
        mgr.authorize(ALICE, task.task_id)  # no exception
        assert mgr.may_steer(ALICE, task.task_id)

    def test_other_user_denied(self, manager):
        mgr, task, _ = manager
        with pytest.raises(SteeringAuthError):
            mgr.authorize(BOB, task.task_id)

    def test_anonymous_denied(self, manager):
        mgr, task, _ = manager
        with pytest.raises(SteeringAuthError):
            mgr.authorize(ANONYMOUS, task.task_id)

    def test_admin_group_allowed(self, manager):
        mgr, task, _ = manager
        mgr.authorize(ADMIN, task.task_id)

    def test_optimizer_principal_allowed(self, manager):
        mgr, task, _ = manager
        mgr.authorize(OPTIMIZER_PRINCIPAL, task.task_id)

    def test_unknown_task_raises(self, manager):
        mgr, _, _ = manager
        with pytest.raises(SteeringAuthError):
            mgr.authorize(ALICE, "ghost")

    def test_custom_admin_groups(self):
        sub = Subscriber()
        task = Task(spec=TaskSpec(owner="alice"), work_seconds=1.0)
        job = Job(tasks=[task], owner="alice")
        sub.receive_plan(
            ConcreteJobPlan(job_id=job.job_id, bindings=(TaskBinding(task.task_id, "a"),)),
            job,
        )
        mgr = SessionManager(sub, admin_groups=("ops",))
        ops = Principal(user="op1", groups=frozenset({"ops"}))
        mgr.authorize(ops, task.task_id)
        with pytest.raises(SteeringAuthError):
            mgr.authorize(ADMIN, task.task_id)  # grid-admins not recognised here


class TestJobAuthorization:
    def test_owner_allowed(self, manager):
        mgr, _, job = manager
        mgr.authorize_job(ALICE, job.job_id)

    def test_stranger_denied(self, manager):
        mgr, _, job = manager
        with pytest.raises(SteeringAuthError):
            mgr.authorize_job(BOB, job.job_id)

    def test_admin_allowed(self, manager):
        mgr, _, job = manager
        mgr.authorize_job(ADMIN, job.job_id)

    def test_unknown_job_raises(self, manager):
        mgr, _, _ = manager
        with pytest.raises(SteeringAuthError):
            mgr.authorize_job(ALICE, "ghost")
