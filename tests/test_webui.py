"""Tests for the read-only web interface (the §4.2.4 download page)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, Task, TaskSpec
from repro.webui import GAEWebUI


@pytest.fixture
def served():
    grid = (
        GridBuilder(seed=91)
        .site("siteA", nodes=2, background_load=0.5)
        .site("siteB", nodes=2, background_load=0.0)
        .probe_noise(0.0)
        .build()
    )
    gae = build_gae(grid)
    gae.add_user("alice", "pw")
    done = Task(spec=TaskSpec(owner="alice", output_files=("out.root",)),
                work_seconds=30.0)
    running = Task(spec=TaskSpec(owner="alice"), work_seconds=5000.0)
    for t in (done, running):
        gae.scheduler.submit_job(Job(tasks=[t], owner="alice"))
    gae.load_publisher.publish_now()
    gae.grid.run_until(100.0)
    with GAEWebUI(gae) as ui:
        yield gae, ui, done, running


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8"), dict(resp.headers)


class TestPages:
    def test_overview_lists_sites(self, served):
        gae, ui, *_ = served
        status, body, _ = fetch(ui.url)
        assert status == 200
        assert "siteA" in body and "siteB" in body
        assert "up" in body

    def test_overview_shows_down_site(self, served):
        gae, ui, *_ = served
        gae.grid.execution_services["siteA"].fail(crash_pool=False)
        _, body, _ = fetch(ui.url)
        assert "DOWN" in body

    def test_jobs_table(self, served):
        gae, ui, done, running = served
        _, body, _ = fetch(ui.url + "jobs")
        assert done.task_id in body
        assert running.task_id in body
        assert "completed" in body
        assert "running" in body

    def test_job_detail(self, served):
        gae, ui, done, _ = served
        _, body, _ = fetch(ui.url + f"job/{done.task_id}")
        assert "alice" in body
        assert "completed" in body
        assert f"/state/{done.task_id}" in body  # the download link

    def test_job_detail_unknown_is_structured_404(self, served):
        _, ui, *_ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(ui.url + "job/ghost")
        assert exc.value.code == 404
        error = json.loads(exc.value.read().decode("utf-8"))
        assert error == {
            "error": "not-found", "resource": "task", "id": "ghost", "status": 404,
        }
        assert exc.value.headers["Content-Type"] == "application/json"

    def test_job_detail_escapes_task_id(self, served):
        _, ui, *_ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(ui.url + "job/%3Cscript%3Ealert(1)%3C/script%3E")
        error = json.loads(exc.value.read().decode("utf-8"))
        # The JSON body carries the raw id; nothing is reflected as HTML.
        assert error["id"] == "<script>alert(1)</script>"
        assert exc.value.headers["Content-Type"] == "application/json"

    def test_state_download(self, served):
        gae, ui, done, _ = served
        status, body, headers = fetch(ui.url + f"state/{done.task_id}")
        assert status == 200
        state = json.loads(body)
        assert state["state"] == "completed"
        assert "attachment" in headers["Content-Disposition"]

    def test_state_missing_404(self, served):
        gae, ui, _, running = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(ui.url + f"state/{running.task_id}")
        assert exc.value.code == 404
        error = json.loads(exc.value.read().decode("utf-8"))
        assert error["error"] == "not-found"
        assert error["resource"] == "execution-state"
        assert error["id"] == running.task_id

    def test_notifications_page(self, served):
        gae, ui, done, _ = served
        _, body, _ = fetch(ui.url + "notifications")
        assert "completion" in body
        assert done.task_id in body

    def test_weather_json(self, served):
        gae, ui, *_ = served
        _, body, _ = fetch(ui.url + "weather")
        weather = json.loads(body)
        assert set(weather) == {"siteA", "siteB"}

    def test_unknown_page_404(self, served):
        _, ui, *_ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            fetch(ui.url + "nope")
        assert exc.value.code == 404


class TestProgressChart:
    def test_job_detail_renders_progress_curve_from_db_history(self):
        from repro.gae import build_gae
        from repro.gridsim import GridBuilder, Job as GJob

        grid = GridBuilder(seed=92).site("s").probe_noise(0.0).build()
        gae = build_gae(grid, monitor_snapshot_period_s=20.0)
        gae.add_user("u", "pw")
        t = Task(spec=TaskSpec(owner="u"), work_seconds=100.0)
        gae.scheduler.submit_job(GJob(tasks=[t], owner="u"))
        gae.start()
        gae.grid.run_until(120.0)
        gae.stop()
        with GAEWebUI(gae) as ui:
            _, body, _ = fetch(ui.url + f"job/{t.task_id}")
        assert "Progress of" in body
        assert "progress (%)" in body

    def test_no_chart_without_history(self, served):
        gae, ui, _, running = served
        _, body, _ = fetch(ui.url + f"job/{running.task_id}")
        assert "Progress of" not in body


class TestMetricsPage:
    def test_metrics_exposition(self, served):
        gae, ui, *_ = served
        gae.client("alice", "pw")  # at least one dispatched call to count
        status, body, headers = fetch(ui.url + "metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "gae_rpc_calls_total" in body
        assert 'gae_rpc_method_calls_total{method="system.login"}' in body
        assert 'gae_site_load{site="siteA"}' in body

    def test_metrics_include_latency_quantiles(self, served):
        gae, ui, done, running = served
        client = gae.client("alice", "pw")
        for _ in range(3):
            client.service("jobmon").job_status(running.task_id)
        _, body, _ = fetch(ui.url + "metrics")
        assert 'gae_rpc_latency_ms{method="jobmon.job_status",quantile="0.5"}' in body
        assert 'quantile="0.95"' in body and 'quantile="0.99"' in body

    def test_nav_links_to_metrics(self, served):
        gae, ui, *_ = served
        _, body, _ = fetch(ui.url)
        assert '<a href="/metrics">metrics</a>' in body

    def test_metrics_include_observability_registry(self, served):
        gae, ui, *_ = served
        _, body, _ = fetch(ui.url + "metrics")
        assert "gae_scheduler_jobs_planned_total" in body
        assert "gae_task_events_total" in body
        assert 'gae_execution_service_up{site="siteA"}' in body


class TestTracePages:
    def test_trace_page_renders_span_tree(self, served):
        gae, ui, done, _ = served
        status, body, _ = fetch(ui.url + f"trace/{done.task_id}")
        assert status == 200
        assert f"task:{done.task_id}" in body
        assert "run@" in body
        assert gae.observability.trace_id_of(done.task_id) in body

    def test_timeline_json(self, served):
        gae, ui, done, _ = served
        status, body, _ = fetch(ui.url + f"timeline/{done.task_id}")
        assert status == 200
        timeline = json.loads(body)
        assert timeline["task_id"] == done.task_id
        types = [e["type"] for e in timeline["events"]]
        assert types[0] == "submitted"
        assert "completed" in types
        trace_ids = {e["trace_id"] for e in timeline["events"]}
        assert trace_ids == {gae.observability.trace_id_of(done.task_id)}

    def test_trace_unknown_task_404(self, served):
        _, ui, *_ = served
        for page in ("trace", "timeline"):
            with pytest.raises(urllib.error.HTTPError) as exc:
                fetch(ui.url + f"{page}/ghost")
            assert exc.value.code == 404
            error = json.loads(exc.value.read().decode("utf-8"))
            assert error["error"] == "not-found"

    def test_trace_disabled_503(self):
        grid = GridBuilder(seed=93).site("s").probe_noise(0.0).build()
        gae = build_gae(grid, observability=False)
        assert gae.observability is None
        with GAEWebUI(gae) as ui:
            with pytest.raises(urllib.error.HTTPError) as exc:
                fetch(ui.url + "trace/task-000001")
            assert exc.value.code == 503

    def test_job_detail_links_to_trace(self, served):
        gae, ui, done, _ = served
        _, body, _ = fetch(ui.url + f"job/{done.task_id}")
        assert f"/trace/{done.task_id}" in body
        assert f"/timeline/{done.task_id}" in body
