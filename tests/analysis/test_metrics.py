"""Unit tests for accuracy metrics (the paper's §7 formulas)."""

import pytest

from repro.analysis.metrics import (
    mean_absolute_percentage_error,
    mean_percentage_error,
    percentage_error,
    summarize_errors,
)


class TestPercentageError:
    def test_paper_formula(self):
        # (Actual - Estimated) / Actual * 100
        assert percentage_error(100.0, 80.0) == pytest.approx(20.0)
        assert percentage_error(100.0, 120.0) == pytest.approx(-20.0)

    def test_perfect_estimate(self):
        assert percentage_error(50.0, 50.0) == 0.0

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            percentage_error(0.0, 10.0)


class TestMeans:
    def test_signed_mean_cancels(self):
        assert mean_percentage_error([100.0, 100.0], [80.0, 120.0]) == pytest.approx(0.0)

    def test_absolute_mean_does_not_cancel(self):
        assert mean_absolute_percentage_error([100.0, 100.0], [80.0, 120.0]) == pytest.approx(20.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_percentage_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])


class TestSummary:
    def test_summary_fields(self):
        s = summarize_errors([100.0, 100.0, 100.0, 100.0], [90.0, 110.0, 150.0, 100.0])
        assert s.n == 4
        assert s.mean_abs_pct == pytest.approx((10 + 10 + 50 + 0) / 4)
        assert s.mean_signed_pct == pytest.approx((10 - 10 - 50 + 0) / 4)
        assert s.median_abs_pct == pytest.approx(10.0)
        assert s.max_abs_pct == pytest.approx(50.0)
        assert s.within_25_pct == pytest.approx(0.75)
