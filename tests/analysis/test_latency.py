"""Unit tests for the Figure 6 measurement core."""

import pytest

from repro.analysis.latency import build_served_monitoring, measure_mean_latency_ms
from repro.clarens.server import XmlRpcServerHandle


class TestBuildServedMonitoring:
    def test_jobs_running_and_queryable(self):
        gae, task_ids = build_served_monitoring(n_jobs=4)
        assert len(task_ids) == 4
        for task_id in task_ids:
            assert gae.monitoring.job_status(task_id) == "running"

    def test_deterministic_per_seed(self):
        from repro.gridsim.job import reset_id_counters

        reset_id_counters()
        _, a = build_served_monitoring(seed=2, n_jobs=3)
        reset_id_counters()
        _, b = build_served_monitoring(seed=2, n_jobs=3)
        assert a == b


class TestMeasurement:
    def test_single_client_measurement(self):
        gae, task_ids = build_served_monitoring(n_jobs=2)
        with XmlRpcServerHandle(gae.host) as handle:
            ms = measure_mean_latency_ms(handle.url, task_ids, 1, calls_per_client=3)
        assert 0.0 < ms < 1000.0

    def test_multiple_clients(self):
        gae, task_ids = build_served_monitoring(n_jobs=2)
        with XmlRpcServerHandle(gae.host) as handle:
            ms = measure_mean_latency_ms(handle.url, task_ids, 4, calls_per_client=2)
        assert ms > 0.0

    def test_zero_clients_rejected(self):
        with pytest.raises(ValueError):
            measure_mean_latency_ms("http://127.0.0.1:1/RPC2", ["t"], 0)

    def test_worker_errors_surface(self):
        # Nothing listening on the port: the TransportError must propagate.
        from repro.clarens.errors import TransportError

        with pytest.raises(TransportError):
            measure_mean_latency_ms(
                "http://127.0.0.1:1/RPC2", ["t"], 1, calls_per_client=1
            )
