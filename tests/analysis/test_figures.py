"""Unit tests for figure data containers and ASCII rendering."""

import pytest

from repro.analysis.figures import FigureData, Series, ascii_chart


@pytest.fixture
def figure():
    fig = FigureData(title="Test figure", x_label="x", y_label="y")
    fig.add("one", [0, 1, 2], [0.0, 1.0, 4.0])
    fig.add("two", [0, 1, 2], [4.0, 1.0, 0.0])
    return fig


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series(name="s", x=[1.0], y=[1.0, 2.0])


class TestFigureData:
    def test_add_chains(self):
        fig = FigureData(title="t", x_label="x", y_label="y")
        assert fig.add("a", [1], [2]) is fig
        assert fig.series[0].y == [2.0]

    def test_csv_long_format(self, figure):
        csv = figure.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "series,x,y"
        assert len(lines) == 1 + 6
        assert lines[1].startswith("one,")


class TestAsciiChart:
    def test_contains_title_labels_and_legend(self, figure):
        out = ascii_chart(figure)
        assert "Test figure" in out
        assert "x " in out
        assert "y " in out
        assert "legend:" in out
        assert "one" in out and "two" in out

    def test_marks_present(self, figure):
        out = ascii_chart(figure)
        assert "*" in out  # first series mark
        assert "o" in out  # second series mark

    def test_empty_figure_handled(self):
        fig = FigureData(title="Empty", x_label="x", y_label="y")
        assert "(no data)" in ascii_chart(fig)

    def test_single_point(self):
        fig = FigureData(title="P", x_label="x", y_label="y").add("s", [1.0], [1.0])
        out = ascii_chart(fig)
        assert "*" in out

    def test_render_shorthand(self, figure):
        assert figure.render() == ascii_chart(figure)
