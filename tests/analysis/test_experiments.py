"""Unit tests for the programmatic experiment runner."""

import pytest

from repro.analysis.experiments import (
    ExperimentResult,
    run_figure5,
    run_figure7,
    write_report,
)


class TestFigure5Runner:
    def test_result_structure(self):
        result = run_figure5()
        assert result.name.startswith("Figure 5")
        assert len(result.figure.series) == 2
        assert len(result.figure.series[0].y) == 20
        quantities = [row[0] for row in result.comparison]
        assert "mean |% error|" in quantities

    def test_deterministic_per_seed(self):
        a = run_figure5(seed=3)
        b = run_figure5(seed=3)
        assert a.figure.series[1].y == b.figure.series[1].y

    def test_markdown_rendering(self):
        md = run_figure5().to_markdown()
        assert "## Figure 5" in md
        assert "| quantity | paper | measured |" in md
        assert "13.53" in md


class TestFigure7Runner:
    def test_ordering_reproduced(self):
        result = run_figure7()
        rows = {row[0]: row[2] for row in result.comparison}
        steered = rows["steered completion (s)"]
        shadow = rows["stay-at-A completion (s)"]
        assert 283.0 < steered < shadow

    def test_three_series(self):
        result = run_figure7()
        names = [s.name for s in result.figure.series]
        assert any("site A" in n for n in names)
        assert any("Steered" in n for n in names)
        assert any("283" in n for n in names)

    def test_steered_curve_reaches_100(self):
        result = run_figure7()
        steer = next(s for s in result.figure.series if "Steered" in s.name)
        assert steer.y[-1] == pytest.approx(100.0)


class TestWriteReport:
    def test_report_text(self):
        text = write_report()
        assert "# GAE reproduction report" in text
        assert "## Figure 5" in text
        assert "## Figure 7" in text
        assert "Figure 6" not in text  # excluded by default

    def test_report_to_file(self, tmp_path):
        path = tmp_path / "report.md"
        text = write_report(path=path)
        assert path.read_text() == text

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out)]) == 0
        assert "wrote report" in capsys.readouterr().out
        assert "## Figure 7" in out.read_text()
