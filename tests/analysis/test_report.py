"""Unit tests for markdown report rendering."""

import pytest

from repro.analysis.report import markdown_table


class TestMarkdownTable:
    def test_basic_table(self):
        out = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.strip().splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_float_formatting(self):
        out = markdown_table(["v"], [[13.528571]])
        assert "13.53" in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            markdown_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            markdown_table([], [])

    def test_empty_rows_ok(self):
        out = markdown_table(["a"], [])
        assert out.strip().splitlines() == ["| a |", "|---|"]
