"""Property-based tests: cached reads are bit-identical to an uncached host.

The read cache's whole contract is that it is invisible: for ANY
interleaving of mutations (submissions, steering verbs, clock advances,
injected site faults) and reads, a host with the epoch-keyed cache enabled
must answer every read exactly as a cache-disabled host would — including
the faults — and every mutation must bump an epoch so stale entries can
never be served.

The same operation script is replayed against two independently built,
identically seeded GAEs (one ``read_cache=True``, one ``False``) and the
full read battery is compared step by step.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import numpy as np

from repro.clarens.errors import ClarensFault
from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, Task, TaskSpec
from repro.gridsim.faults import FaultInjector
from repro.gridsim.job import reset_id_counters

SITES = ("siteA", "siteB")


def _op_strategy():
    submit = st.tuples(
        st.just("submit"),
        st.integers(min_value=50, max_value=2_000),   # work_seconds
        st.integers(min_value=0, max_value=4),        # priority
    )
    advance = st.tuples(
        st.just("advance"), st.integers(min_value=1, max_value=400)
    )
    kill = st.tuples(st.just("kill"), st.integers(min_value=0, max_value=63))
    priority = st.tuples(
        st.just("priority"),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=4),
    )
    move = st.tuples(st.just("move"), st.integers(min_value=0, max_value=63))
    return st.one_of(submit, advance, kill, priority, move)


class _Rig:
    """One GAE plus the per-step read battery the property compares."""

    def __init__(self, seed: int, read_cache: bool):
        reset_id_counters()
        grid = (
            GridBuilder(seed=seed)
            .site("siteA", nodes=2)
            .site("siteB", nodes=2)
            .link("siteA", "siteB", capacity_mbps=155.0, latency_s=0.05)
            .probe_noise(0.0)
            .build()
        )
        self.gae = build_gae(
            grid,
            read_cache=read_cache,
            observability=False,
            policy=SteeringPolicy(auto_move=False, poll_interval_s=3_600.0),
        )
        self.gae.add_user("prop", "pw")
        self.gae.start()
        # Deterministic fault process: same seed on both rigs, and both
        # rigs execute the same event sequence, so outages land at the
        # same instants with the same repair times.
        self.injector = FaultInjector(
            self.gae.sim, rng=np.random.default_rng(seed + 7)
        )
        for site in SITES:
            self.injector.add_site(
                self.gae.grid.execution_services[site], mtbf_s=900.0, mttr_s=120.0
            )
        self.injector.start()
        self.client = self.gae.client("prop", "pw")
        self.steering = self.client.service("steering")
        self.jobmon = self.client.service("jobmon")
        self.estimator = self.client.service("estimator")
        self.monalisa = self.client.service("monalisa")
        self.accounting = self.client.service("accounting")
        self.task_ids = []

    def _try(self, fn, *args):
        try:
            return fn(*args)
        except ClarensFault as exc:
            return ("fault", exc.code, exc.message)

    def apply(self, op):
        kind = op[0]
        if kind == "submit":
            # Explicit ids: the module-level allocators are global, so two
            # rigs drawing from them would disagree on every id.
            n = len(self.task_ids) + 1
            task = Task(
                spec=TaskSpec(owner="prop", priority=op[2]),
                work_seconds=float(op[1]),
                task_id=f"ptask-{n:04d}",
            )
            self.task_ids.append(task.task_id)
            self.gae.scheduler.submit_job(
                Job(tasks=[task], owner="prop", job_id=f"pjob-{n:04d}")
            )
            return ("submitted", task.task_id)
        if kind == "advance":
            self.gae.grid.run_until(self.gae.sim.now + float(op[1]))
            return ("advanced", self.gae.sim.now)
        if not self.task_ids:
            return ("noop",)
        task_id = self.task_ids[op[1] % len(self.task_ids)]
        if kind == "kill":
            return self._try(self.steering.kill, task_id)
        if kind == "priority":
            return self._try(self.steering.set_priority, task_id, op[2])
        if kind == "move":
            return self._try(self.steering.move, task_id)
        raise AssertionError(f"unknown op {op!r}")

    def read_battery(self):
        out = {
            "running": self._try(self.jobmon.running_tasks),
            "owner": self._try(self.jobmon.owner_tasks, "prop"),
            "history_size": self._try(self.estimator.history_size),
            "weather": self._try(self.monalisa.grid_weather),
            "quota": self._try(self.accounting.quota_available, "prop"),
        }
        for site in SITES:
            out[f"load:{site}"] = self._try(self.monalisa.site_load, site)
        for task_id in self.task_ids:
            out[f"status:{task_id}"] = self._try(self.jobmon.job_status, task_id)
            out[f"queuepos:{task_id}"] = self._try(
                self.jobmon.queue_position, task_id
            )
            out[f"progress:{task_id}"] = self._try(self.jobmon.progress, task_id)
        return out

    def close(self):
        self.gae.stop()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    ops=st.lists(_op_strategy(), min_size=1, max_size=10),
)
def test_cached_reads_bit_identical_under_random_interleavings(seed, ops):
    cached = _Rig(seed, read_cache=True)
    plain = _Rig(seed, read_cache=False)
    try:
        assert cached.read_battery() == plain.read_battery()
        for step, op in enumerate(ops):
            epochs_before = cached.gae.host.epochs.snapshot()
            outcome_cached = cached.apply(op)
            outcome_plain = plain.apply(op)
            assert outcome_cached == outcome_plain, f"step {step}: {op}"

            # Every effective mutation must bump at least one epoch —
            # otherwise the cache could serve a stale answer.
            epochs_after = cached.gae.host.epochs.snapshot()
            mutated = not (
                outcome_cached == ("noop",)
                or (isinstance(outcome_cached, tuple)
                    and outcome_cached[0] == "fault")
                or (isinstance(outcome_cached, dict)
                    and not outcome_cached.get("ok", True))
            )
            if mutated:
                assert epochs_after != epochs_before, (
                    f"step {step}: {op} mutated state without an epoch bump"
                )
            if op[0] == "submit":
                assert epochs_after["scheduler"] > epochs_before["scheduler"]
            if op[0] == "advance":
                assert epochs_after["clock"] > epochs_before["clock"]

            # Reads answer identically on both rigs — and reading must
            # not itself bump any epoch.
            battery_cached = cached.read_battery()
            battery_plain = plain.read_battery()
            assert battery_cached == battery_plain, f"step {step}: {op}"
            assert cached.gae.host.epochs.snapshot() == epochs_after
        # The cache actually participated: repeat batteries produce hits.
        snap = cached.gae.host.read_cache.snapshot()
        total_hits = sum(c["hits"] for c in snap["per_method"].values())
        assert snap["enabled"] and total_hits > 0
    finally:
        cached.close()
        plain.close()
