"""Property-based tests: time-series query invariants."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.monalisa.timeseries import TimeSeries

samples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


def build(sample_list):
    ts = TimeSeries()
    for t, v in sorted(sample_list, key=lambda p: p[0]):
        ts.append(t, v)
    return ts


class TestTimeSeriesProperties:
    @given(samples)
    def test_window_covers_everything(self, pts):
        ts = build(pts)
        times, values = ts.as_arrays()
        wt, wv = ts.window(float(times.min()), float(times.max()))
        assert len(wt) == len(times)

    @given(samples, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_value_at_is_last_at_or_before(self, pts, query):
        ts = build(pts)
        times, values = ts.as_arrays()
        eligible = [(t, v) for t, v in zip(times, values) if t <= query]
        if not eligible:
            try:
                ts.value_at(query)
                assert False
            except ValueError:
                return
        assert ts.value_at(query) == eligible[-1][1]

    @given(samples)
    def test_mean_matches_numpy(self, pts):
        ts = build(pts)
        _, values = ts.as_arrays()
        assert abs(ts.mean() - float(np.mean(values))) < 1e-9 * max(
            1.0, abs(float(np.mean(values)))
        )

    @given(samples)
    def test_latest_is_max_time(self, pts):
        ts = build(pts)
        t, _ = ts.latest()
        times, _ = ts.as_arrays()
        assert t == float(times.max())

    @given(samples, samples)
    def test_windows_partition(self, a, b):
        ts = build(a + b)
        times, _ = ts.as_arrays()
        lo, hi = float(times.min()), float(times.max())
        if lo == hi:
            return  # degenerate: no strictly-after-mid window exists
        mid = (lo + hi) / 2
        left, _ = ts.window(lo, mid)
        right, _ = ts.window(np.nextafter(mid, hi), hi)
        assert len(left) + len(right) == len(times)
