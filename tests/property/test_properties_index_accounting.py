"""Property-based tests: the indexed hot paths equal their naive baselines.

Two families of invariants back the PR-2 estimator optimisations:

- the multi-attribute history index answers every template query with
  exactly the records (same order) a linear scan finds, no matter how the
  history was built up or queried in between;
- the incremental per-priority-band queue accounting produces queue-wait
  estimates **bit-identical** to the naive §6.2 queue scan under arbitrary
  interleavings of submit / start / complete / kill / re-prioritise
  events and estimate recordings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.core.estimators.queue_time import QueueTimeEstimator, RuntimeEstimateDB
from repro.core.estimators.similarity import DEFAULT_LADDER
from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.job import JobState, Task, TaskSpec, reset_id_counters
from repro.gridsim.site import Site

# ----------------------------------------------------------------------
# history index == linear scan
# ----------------------------------------------------------------------
owners = st.sampled_from(["alice", "bob", "carol"])
executables = st.sampled_from(["reco", "simulate", "merge"])
partitions = st.sampled_from(["compute", "io"])
statuses = st.sampled_from(["successful", "failed"])

record_rows = st.tuples(
    owners, executables, partitions, statuses,
    st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
)


def _record(owner, executable, partition, status, runtime):
    return TaskRecord(
        owner=owner, account="cms", partition=partition, queue="q", nodes=1,
        task_type="batch", executable=executable, requested_cpu_hours=1.0,
        runtime_s=runtime, status=status,
    )


def _target(owner, executable, partition):
    return {
        "owner": owner, "account": "cms", "partition": partition, "queue": "q",
        "nodes": 1, "task_type": "batch", "executable": executable,
        "requested_cpu_hours": 1.0,
    }


class TestHistoryIndexProperties:
    @given(st.lists(record_rows, max_size=60), owners, executables, partitions)
    def test_indexed_matching_equals_naive(self, rows, owner, executable, partition):
        history = HistoryRepository([_record(*row) for row in rows])
        target = _target(owner, executable, partition)
        for template in DEFAULT_LADDER:
            if not template:
                continue
            assert history.matching(template, target) == history.matching(
                template, target, naive=True
            )

    @given(
        st.lists(record_rows, min_size=1, max_size=40),
        st.lists(record_rows, max_size=20),
        owners, executables,
    )
    def test_index_stays_consistent_across_interleaved_adds(
        self, initial, late, owner, executable
    ):
        """Queries between adds warm the index; later adds must keep it true."""
        history = HistoryRepository([_record(*row) for row in initial])
        target = _target(owner, executable, "compute")
        for template in (("executable",), ("executable", "owner")):
            history.matching(template, target)  # warm the buckets
        for row in late:
            history.add(_record(*row))
            for template in (("executable",), ("executable", "owner"), ("owner",)):
                assert history.matching(template, target) == history.matching(
                    template, target, naive=True
                )

    @given(st.lists(record_rows, max_size=40))
    def test_fresh_repository_agrees_with_incremental_one(self, rows):
        """Building record-by-record equals building from the full list."""
        incremental = HistoryRepository()
        for row in rows:
            incremental.add(_record(*row))
        bulk = HistoryRepository([_record(*row) for row in rows])
        target = _target("alice", "reco", "compute")
        for template in DEFAULT_LADDER:
            if not template:
                continue
            assert incremental.matching(template, target) == bulk.matching(
                template, target
            )


# ----------------------------------------------------------------------
# incremental queue accounting == naive queue scan
# ----------------------------------------------------------------------
events = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.integers(min_value=0, max_value=3),            # priority band
            st.floats(min_value=10.0, max_value=5e3, allow_nan=False),  # work
            st.floats(min_value=10.0, max_value=5e3, allow_nan=False),  # estimate
            st.booleans(),                                    # record before submit?
        ),
        st.tuples(st.just("advance"), st.floats(min_value=1.0, max_value=400.0)),
        st.tuples(st.just("kill"), st.integers(min_value=0, max_value=100)),
        st.tuples(
            st.just("reprioritise"),
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=3),
        ),
    ),
    min_size=1,
    max_size=40,
)

ACTIONABLE = (JobState.QUEUED, JobState.RUNNING, JobState.PAUSED)


def _live(service, task_ids, index):
    """The index-th task (mod population) still sitting in the pool."""
    candidates = [
        tid for tid in task_ids
        if service.has_task(tid)
        and service.pool.ad(tid).state in ACTIONABLE
    ]
    if not candidates:
        return None
    return candidates[index % len(candidates)]


class TestQueueAccountingProperties:
    @given(events=events)
    @settings(max_examples=60, deadline=None)
    def test_incremental_estimate_identical_to_naive(self, events):
        reset_id_counters()
        sim = Simulator()
        service = ExecutionService(Site.simple(sim, "site", cpus_per_node=2))
        db = RuntimeEstimateDB()
        estimator = QueueTimeEstimator(db, fallback_runtime_s=1800.0)
        estimator.attach(service)
        task_ids = []

        def check():
            for priority in range(5):
                incremental = estimator.estimate_for_new(service, priority=priority)
                naive = estimator.estimate_for_new(
                    service, priority=priority, naive=True
                )
                assert incremental == naive  # bit-identical, not approx

        for event in events:
            kind = event[0]
            if kind == "submit":
                _, priority, work, estimate, record_before = event
                task = Task(spec=TaskSpec(priority=priority), work_seconds=work)
                if record_before:
                    db.record(task.task_id, estimate)
                    service.submit_task(task)
                else:
                    # the scheduler's real ordering: estimate lands after
                    # the pool submit, via the estimate-db listener
                    service.submit_task(task)
                    db.record(task.task_id, estimate)
                task_ids.append(task.task_id)
            elif kind == "advance":
                sim.run_until(sim.now + event[1])
            elif kind == "kill":
                target = _live(service, task_ids, event[1])
                if target is not None:
                    service.kill_task(target)
            elif kind == "reprioritise":
                target = _live(service, task_ids, event[1])
                if target is not None:
                    service.set_task_priority(target, event[2])
            check()

    @given(events=events)
    @settings(max_examples=30, deadline=None)
    def test_accounted_depth_matches_queue(self, events):
        reset_id_counters()
        sim = Simulator()
        service = ExecutionService(Site.simple(sim, "site", cpus_per_node=1))
        db = RuntimeEstimateDB()
        estimator = QueueTimeEstimator(db, fallback_runtime_s=600.0)
        acct = estimator.attach(service)
        task_ids = []
        for event in events:
            if event[0] == "submit":
                task = Task(spec=TaskSpec(priority=event[1]), work_seconds=event[2])
                service.submit_task(task)
                db.record(task.task_id, event[3])
                task_ids.append(task.task_id)
            elif event[0] == "advance":
                sim.run_until(sim.now + event[1])
            elif event[0] == "kill":
                target = _live(service, task_ids, event[1])
                if target is not None:
                    service.kill_task(target)
            elif event[0] == "reprioritise":
                target = _live(service, task_ids, event[1])
                if target is not None:
                    service.set_task_priority(target, event[2])
            assert acct.queued_depth() == len(service.queue_info())
