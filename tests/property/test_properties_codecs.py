"""Property-based tests: the two wire codecs decode identically.

The framed transport's contract is that codec choice is invisible: any
wire-representable payload (the :func:`~repro.clarens.serialization.to_wire`
value set), encoded as a request or response by either codec, decodes to
the same Python value — including fault structures and
``system.multicall`` batch shapes.  The compact-JSON codec additionally
must survive payloads XML cannot carry (control characters, strings that
collide with its own byte-tagging sentinels).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clarens.codecs import codec_names, get_codec
from repro.clarens.errors import (
    AuthenticationError,
    ClarensFault,
    RemoteFault,
)

JSON = get_codec("json")
XMLRPC = get_codec("xmlrpc")

# ----------------------------------------------------------------------
# payload domains
# ----------------------------------------------------------------------
# Strings both codecs can carry: XML 1.0 forbids most C0 control
# characters outright, and XML parsers normalize \r away, so the
# cross-codec domain excludes them (and lone surrogates, which neither
# UTF-8 wire format can encode).
_xml_safe_chars = st.characters(
    blacklist_categories=("Cs",),
    blacklist_characters="".join(
        chr(c) for c in range(0x20) if c not in (0x09, 0x0A)
    )
    + "\x0d",
)
xml_safe_text = st.text(alphabet=_xml_safe_chars, max_size=30)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    xml_safe_text,
    st.binary(max_size=30),
)

wire_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(xml_safe_text, children, max_size=5),
    ),
    max_leaves=25,
)

# JSON-only domain: full unicode text (minus surrogates), including the
# control characters and NUL-prefixed sentinel lookalikes XML refuses.
_json_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30
)
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    _json_text,
    st.binary(max_size=30),
    st.sampled_from(["\x00b64", "\x00esc", "\x00b64trailing", "\x00"]),
)
json_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(_json_text, children, max_size=5),
    ),
    max_leaves=25,
)

methods = st.sampled_from(
    ["jobmon.job_status", "system.multicall", "steering.set_priority", "a.b"]
)
tokens = st.sampled_from(["", "tok-123", "!t=abcd-1!signed.token"])


class TestCrossCodecIdentity:
    @given(methods, tokens, st.lists(wire_values, max_size=4))
    @settings(max_examples=150)
    def test_requests_decode_identically(self, method, token, params):
        for codec in (JSON, XMLRPC):
            got = codec.decode_request(
                codec.encode_request(method, token, params)
            )
            assert got == (method, token, params), codec.name

    @given(wire_values)
    @settings(max_examples=200)
    def test_responses_decode_identically(self, value):
        decoded = {
            codec.name: codec.decode_response(codec.encode_response(value))
            for codec in (JSON, XMLRPC)
        }
        assert decoded["json"] == decoded["xmlrpc"] == value

    @given(
        st.sampled_from([401, 403, 404, 405, 406, 400, 502, 503, 520, 500]),
        xml_safe_text,
    )
    @settings(max_examples=100)
    def test_faults_decode_identically(self, code, message):
        for codec in (JSON, XMLRPC):
            with pytest.raises(ClarensFault) as err:
                codec.decode_response(codec.encode_fault(code, message))
            assert err.value.code == code, codec.name
            assert err.value.message == message, codec.name

    @given(st.lists(wire_values, max_size=3))
    @settings(max_examples=50)
    def test_multicall_batches_decode_identically(self, results):
        """The multicall request/response shapes survive both codecs."""
        batch_request = [
            {"methodName": "jobmon.job_status", "params": [r]} for r in results
        ]
        batch_response = [
            {"ok": True, "result": r, "code": 0, "error": "", "trace_id": "t-1"}
            for r in results
        ] + [
            {"ok": False, "result": None, "code": 401, "error": "expired",
             "trace_id": "t-1"}
        ]
        for payload in (batch_request, batch_response):
            decoded = {
                codec.name: codec.decode_response(codec.encode_response(payload))
                for codec in (JSON, XMLRPC)
            }
            assert decoded["json"] == decoded["xmlrpc"] == payload

    def test_fault_types_rehydrate(self):
        for codec in (JSON, XMLRPC):
            with pytest.raises(AuthenticationError):
                codec.decode_response(codec.encode_fault(401, "expired"))
            with pytest.raises(RemoteFault):
                codec.decode_response(codec.encode_fault(520, "kaput"))


class TestJsonCodecAdversarial:
    """The compact codec alone must survive what XML cannot carry."""

    @given(json_values)
    @settings(max_examples=300)
    def test_response_round_trip(self, value):
        assert JSON.decode_response(JSON.encode_response(value)) == value

    @given(methods, st.lists(json_values, max_size=4))
    @settings(max_examples=150)
    def test_request_round_trip(self, method, params):
        got = JSON.decode_request(JSON.encode_request(method, "tok", params))
        assert got == (method, "tok", params)

    @given(st.binary(max_size=100))
    def test_bytes_round_trip(self, blob):
        assert JSON.decode_response(JSON.encode_response(blob)) == blob

    def test_sentinel_collisions(self):
        """User data shaped exactly like the codec's own tags survives."""
        tricky = [
            ["\x00b64", "bm90IGJ5dGVz"],          # fake bytes tag
            ["\x00esc", "payload"],                # fake escape tag
            {"k": ["\x00b64", b"\x00\xff", "x"]},  # tag + real bytes mixed
            "\x00b64",                             # bare sentinel string
            [["\x00esc", ["\x00b64", "y"]]],       # nested fakes
        ]
        for value in tricky:
            assert JSON.decode_response(JSON.encode_response(value)) == value

    def test_nan_free_floats_exact(self):
        for value in (0.1, -1e300, 5e-324, math.pi):
            assert JSON.decode_response(JSON.encode_response(value)) == value


def test_registry_names_stable():
    """The negotiation preference order is part of the wire contract."""
    assert codec_names() == ["json", "xmlrpc"]
