"""Property-based tests: network model invariants."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gridsim.network import Link, Network, NetworkError

capacities = st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False)
latencies = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
sizes = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)


@st.composite
def random_networks(draw):
    """A connected random network over 2..6 sites (spanning chain + extras)."""
    n = draw(st.integers(min_value=2, max_value=6))
    names = [f"s{i}" for i in range(n)]
    net = Network()
    # Chain guarantees connectivity.
    for a, b in zip(names, names[1:]):
        net.add_link(Link(a, b, capacity_mbps=draw(capacities), latency_s=draw(latencies)))
    # A few random extra links.
    extras = draw(st.integers(min_value=0, max_value=4))
    for _ in range(extras):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i != j and not net._graph.has_edge(names[i], names[j]):
            net.add_link(
                Link(names[i], names[j], capacity_mbps=draw(capacities),
                     latency_s=draw(latencies))
            )
    return net, names


class TestNetworkProperties:
    @given(random_networks())
    def test_routes_exist_between_all_pairs(self, net_names):
        net, names = net_names
        for a in names:
            for b in names:
                route = net.route(a, b)
                if a == b:
                    assert route == []
                else:
                    assert route  # connected by construction

    @given(random_networks())
    def test_path_bandwidth_is_bottleneck(self, net_names):
        net, names = net_names
        a, b = names[0], names[-1]
        route = net.route(a, b)
        bw = net.path_bandwidth_mbps(a, b)
        assert bw == min(link.available_mbps for link in route)
        assert all(bw <= link.available_mbps for link in route)

    @given(random_networks())
    def test_route_latency_is_symmetric(self, net_names):
        """Lowest latency is direction-independent.  (Bandwidth need not
        be: equal-latency ties may resolve to different paths per
        direction, as in real routing.)"""
        net, names = net_names
        a, b = names[0], names[-1]
        assert net.path_latency_s(a, b) == pytest.approx(net.path_latency_s(b, a))

    @given(random_networks(), sizes, sizes)
    def test_transfer_time_monotone_in_size(self, net_names, s1, s2):
        net, names = net_names
        a, b = names[0], names[-1]
        small, big = sorted((s1, s2))
        assert net.transfer_time(a, b, small) <= net.transfer_time(a, b, big) + 1e-9

    @given(random_networks(), sizes)
    def test_transfer_time_at_least_latency(self, net_names, size):
        net, names = net_names
        a, b = names[0], names[-1]
        assume(size > 0)
        assert net.transfer_time(a, b, size) >= net.path_latency_s(a, b)

    @given(random_networks())
    def test_route_latency_never_beaten_by_any_single_edge_path(self, net_names):
        """Shortest path: the chosen route's latency is minimal among the
        direct edge (when one exists)."""
        net, names = net_names
        a, b = names[0], names[-1]
        chosen = net.path_latency_s(a, b)
        if net._graph.has_edge(a, b):
            assert chosen <= net.link_between(a, b).latency_s + 1e-12
