"""Property-based tests: batch-pool conservation and ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridsim.clock import Simulator
from repro.gridsim.condor import CondorPool
from repro.gridsim.job import JobState, Task, TaskSpec
from repro.gridsim.node import LoadProfile, Node

work_values = st.floats(min_value=1.0, max_value=500.0, allow_nan=False)
priorities = st.integers(min_value=0, max_value=9)
loads = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)


class TestPoolProperties:
    @given(
        st.lists(st.tuples(work_values, priorities), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=4),
        loads,
    )
    @settings(max_examples=60, deadline=None)
    def test_every_job_completes_with_exact_work(self, jobs, slots, load):
        sim = Simulator()
        pool = CondorPool(
            sim, "p",
            [Node(name="n", cpu_count=slots, load_profile=LoadProfile.constant(load))],
        )
        tasks = [
            Task(spec=TaskSpec(priority=p), work_seconds=w) for w, p in jobs
        ]
        for t in tasks:
            pool.submit(t)
        sim.run()
        for t in tasks:
            ad = pool.ad(t.task_id)
            assert t.state is JobState.COMPLETED
            assert abs(ad.accrued_work - t.work_seconds) < 1e-6
            # Wall time on node is work / rate.
            assert ad.end_time - ad.start_time >= t.work_seconds - 1e-6

    @given(st.lists(st.tuples(work_values, priorities), min_size=2, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_single_slot_start_order_respects_priority(self, jobs):
        sim = Simulator()
        blocker = Task(spec=TaskSpec(priority=10), work_seconds=5.0)
        pool = CondorPool(sim, "p", [Node(name="n")])
        pool.submit(blocker)
        tasks = [Task(spec=TaskSpec(priority=p), work_seconds=w) for w, p in jobs]
        for t in tasks:
            pool.submit(t)
        sim.run()
        starts = [(pool.ad(t.task_id).start_time, -t.priority, pool.ad(t.task_id).condor_id) for t in tasks]
        # Start times must be sorted consistently with (priority desc, id asc).
        expected_order = sorted(tasks, key=lambda t: (-t.priority, pool.ad(t.task_id).condor_id))
        actual_order = sorted(tasks, key=lambda t: pool.ad(t.task_id).start_time)
        assert [t.task_id for t in actual_order] == [t.task_id for t in expected_order]

    @given(
        st.lists(work_values, min_size=1, max_size=10),
        st.floats(min_value=1.0, max_value=200.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_pause_resume_preserves_total_work(self, works, pause_at):
        sim = Simulator()
        pool = CondorPool(sim, "p", [Node(name="n")])
        t = Task(spec=TaskSpec(), work_seconds=sum(works))
        pool.submit(t)
        sim.run_until(min(pause_at, sum(works) / 2))
        pool.pause(t.task_id)
        sim.run_until(sim.now + 100.0)
        pool.resume(t.task_id)
        sim.run()
        total = sum(works)
        assert abs(pool.ad(t.task_id).accrued_work - total) < 1e-6 * max(1.0, total)

    @given(st.lists(work_values, min_size=1, max_size=12), st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_slots_never_oversubscribed(self, works, slots):
        sim = Simulator()
        node = Node(name="n", cpu_count=slots)
        pool = CondorPool(sim, "p", [node])
        for w in works:
            pool.submit(Task(spec=TaskSpec(), work_seconds=w))
        while sim.step():
            assert len(node.running_task_ids) <= slots
