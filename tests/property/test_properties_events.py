"""Property-based tests: simulation kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridsim.clock import Simulator
from repro.gridsim.events import EventQueue

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestEventQueueProperties:
    @given(st.lists(times, min_size=1, max_size=50))
    def test_pop_order_is_sorted(self, ts):
        q = EventQueue()
        for t in ts:
            q.push(t, lambda: None)
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(ts)

    @given(st.lists(times, min_size=1, max_size=40), st.data())
    def test_cancellation_removes_exactly_the_cancelled(self, ts, data):
        q = EventQueue()
        handles = [q.push(t, lambda: None) for t in ts]
        n_cancel = data.draw(st.integers(min_value=0, max_value=len(ts)))
        for h in handles[:n_cancel]:
            h.cancel()
        survivors = sorted(ts[n_cancel:])
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == survivors


class TestSimulatorProperties:
    @given(st.lists(times, min_size=1, max_size=50))
    def test_clock_monotone_and_events_counted(self, ts):
        sim = Simulator()
        observed = []
        for t in ts:
            sim.at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(ts)
        assert sim.executed_events == len(ts)
        assert all(b >= a for a, b in zip(observed, observed[1:]))

    @given(
        st.lists(times, min_size=1, max_size=30),
        times,
    )
    def test_run_until_partitions_events(self, ts, cut):
        sim = Simulator()
        fired = []
        for t in ts:
            sim.at(t, lambda t=t: fired.append(t))
        sim.run_until(cut)
        assert sorted(fired) == sorted(t for t in ts if t <= cut)
        assert sim.now == cut
        sim.run()
        assert sorted(fired) == sorted(ts)

    @given(
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_periodic_fires_floor_times(self, interval, horizon):
        sim = Simulator()
        fired = []
        handle = sim.every(interval, lambda: fired.append(sim.now))
        sim.run_until(horizon)
        handle.cancel()
        expected = int(horizon / interval)
        # Floating point boundary tolerance of one firing.
        assert abs(len(fired) - expected) <= 1
