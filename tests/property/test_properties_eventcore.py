"""Property-based tests: event-sourced core fold/replay identity.

Two invariants of the journal-first write path, for random workloads,
random fault schedules and random checkpoint barriers:

1. every registered consumer's state is a pure fold over the journal —
   ``rebuild(baseline + tail)`` is bit-identical to the live store at
   any instant the simulation can pause on;
2. an incremental restore (base snapshot + quiet journal-tail replay)
   answers exactly like a full restore of the same barrier, and both
   match the live answers captured at that barrier.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridsim.job import reset_id_counters
from repro.observability.eventbus import CONSUMER_NAMES
from repro.store.checkpoint import Checkpointer, restore_gae, restore_incremental

from tests.property.test_properties_checkpoint import (
    answers,
    barrier_times,
    build_workload,
    fault_schedules,
    work_lists,
)

# Base barriers strictly before every delta barrier, so incremental
# checkpoints always have a full snapshot to build on.
base_times = st.sampled_from([105.0, 125.0, 145.0])
delta_times = st.sampled_from([185.0, 205.0, 265.0])


class TestEventCoreProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        works=work_lists,
        t_stop=barrier_times,
        fault=fault_schedules(),
    )
    @settings(max_examples=10, deadline=None)
    def test_fold_from_journal_matches_live_state(self, seed, works, t_stop, fault):
        """rebuild(journal) == live fingerprint for every consumer."""
        gae, _ = build_workload(seed, works, fault)
        gae.sim.run_until(t_stop)
        reports = gae.observability.eventcore.verify_all()
        assert {r["consumer"] for r in reports} == set(CONSUMER_NAMES)
        for report in reports:
            assert report["covered"], report
            assert report["identical"], report

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        works=work_lists,
        t_base=base_times,
        t_delta=delta_times,
        fault=fault_schedules(),
    )
    @settings(max_examples=8, deadline=None)
    def test_snapshot_plus_tail_replay_equals_full_replay(
        self, seed, works, t_base, t_delta, fault
    ):
        """Incremental restore == full restore == live barrier answers."""
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "base.sqlite")
            delta = os.path.join(tmp, "delta.sqlite")
            full = os.path.join(tmp, "full.sqlite")

            gae, job = build_workload(seed, works, fault)
            incremental_ckpt = Checkpointer(gae)
            incremental_ckpt.checkpoint_at(t_base, base)
            incremental_ckpt.checkpoint_incremental_at(t_delta, delta)
            Checkpointer(gae).checkpoint_at(t_delta, full)

            captured = {}
            gae.sim.at(t_delta, lambda: captured.update(answers(gae, job)))
            gae.sim.run_until(t_delta)

            reset_id_counters()
            restored = restore_incremental(base, delta)
            restored_answers = answers(restored, restored.scheduler.jobs()[0])
            assert restored_answers == captured
            # The replayed tail must leave the consumers rebuildable too.
            for report in restored.observability.eventcore.verify_all():
                assert report["identical"], report

            reset_id_counters()
            control = restore_gae(full)
            assert answers(control, control.scheduler.jobs()[0]) == captured
