"""Property-based tests: estimator invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.estimators.history import HistoryRepository, TaskRecord
from repro.core.estimators.runtime import RuntimeEstimator
from repro.core.estimators.similarity import most_specific_match
from repro.gridsim.job import TaskSpec

runtimes = st.floats(min_value=1.0, max_value=1e5, allow_nan=False)
hours = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


def record(runtime, h=1.0, executable="exe", owner="u"):
    return TaskRecord(
        owner=owner, account="a", partition="p", queue="q", nodes=1,
        task_type="batch", executable=executable, requested_cpu_hours=h,
        runtime_s=runtime,
    )


def spec(h=1.0, executable="exe", owner="u"):
    return TaskSpec(
        owner=owner, account="a", partition="p", queue="q", nodes=1,
        task_type="batch", executable=executable, requested_cpu_hours=h,
    )


class TestRuntimeEstimatorProperties:
    @given(st.lists(runtimes, min_size=1, max_size=30))
    def test_mean_estimate_within_observed_range(self, rts):
        history = HistoryRepository([record(r) for r in rts])
        est = RuntimeEstimator(history, method="mean").estimate(spec())
        assert min(rts) - 1e-9 <= est.value <= max(rts) + 1e-9

    @given(st.lists(st.tuples(runtimes, hours), min_size=3, max_size=30), hours)
    @settings(max_examples=100)
    def test_any_method_estimate_bounded_by_clip(self, pairs, query_hours):
        history = HistoryRepository([record(r, h) for r, h in pairs])
        est = RuntimeEstimator(history, method="auto").estimate(spec(h=query_hours))
        rts = [r for r, _ in pairs]
        # The regression clip guarantees: value in [min/2, 2*max]; the mean
        # is inside the observed range; either way this envelope holds.
        assert min(rts) / 2 - 1e-9 <= est.value <= 2 * max(rts) + 1e-9

    @given(st.lists(runtimes, min_size=1, max_size=20))
    def test_estimate_deterministic(self, rts):
        history = HistoryRepository([record(r) for r in rts])
        e1 = RuntimeEstimator(history).estimate(spec())
        e2 = RuntimeEstimator(history).estimate(spec())
        assert e1 == e2

    @given(st.lists(runtimes, min_size=1, max_size=20), runtimes)
    def test_adding_failed_records_never_changes_estimate(self, rts, junk):
        history = HistoryRepository([record(r) for r in rts])
        before = RuntimeEstimator(history, method="mean").estimate(spec()).value
        history.add(
            TaskRecord(
                owner="u", account="a", partition="p", queue="q", nodes=1,
                task_type="batch", executable="exe", requested_cpu_hours=1.0,
                runtime_s=junk, status="failed",
            )
        )
        after = RuntimeEstimator(history, method="mean").estimate(spec()).value
        assert before == after


class TestTemplateProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["alice", "bob"]), st.sampled_from(["a1", "a2"]), runtimes),
            min_size=1,
            max_size=40,
        )
    )
    def test_matches_agree_on_template_attributes(self, rows):
        history = HistoryRepository(
            [record(r, executable=app, owner=who) for who, app, r in rows]
        )
        target = spec(executable="a1", owner="alice").attributes()
        template, matches = most_specific_match(history, target, min_samples=2)
        for m in matches:
            for attr in template:
                assert m.attribute(attr) == target[attr]

    @given(
        st.lists(
            st.tuples(st.sampled_from(["alice", "bob"]), runtimes),
            min_size=1,
            max_size=30,
        )
    )
    def test_result_never_empty_when_history_nonempty(self, rows):
        history = HistoryRepository([record(r, owner=who) for who, r in rows])
        _, matches = most_specific_match(history, spec(owner="alice").attributes())
        assert len(matches) >= 1
