"""Property-based tests: load-profile integration invariants.

These pin the analytic engine Figure 7 rests on: work accrual must be
additive, monotone, bounded by wall time, and exactly inverse to
``time_to_accrue``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridsim.node import LoadProfile

loads = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
instants = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
works = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)


@st.composite
def profiles(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    ts = sorted(draw(st.lists(instants, min_size=n, max_size=n, unique=True)))
    vs = draw(st.lists(loads, min_size=n, max_size=n))
    return LoadProfile(list(zip(ts, vs)))


class TestWorkIntegralProperties:
    @given(profiles(), instants, instants)
    def test_work_is_additive(self, profile, a, b):
        t0, t1 = sorted((a, b))
        mid = (t0 + t1) / 2
        whole = profile.work_between(t0, t1)
        split = profile.work_between(t0, mid) + profile.work_between(mid, t1)
        assert abs(whole - split) < 1e-6 * max(1.0, whole)

    @given(profiles(), instants, instants)
    def test_work_bounded_by_wall_time(self, profile, a, b):
        t0, t1 = sorted((a, b))
        work = profile.work_between(t0, t1)
        assert 0.0 <= work <= (t1 - t0) + 1e-9

    @given(profiles(), instants, instants, instants)
    def test_work_monotone_in_interval(self, profile, a, b, c):
        t0, t1, t2 = sorted((a, b, c))
        assert (
            profile.work_between(t0, t1)
            <= profile.work_between(t0, t2) + 1e-9
        )

    @given(profiles(), instants, works)
    @settings(max_examples=200)
    def test_time_to_accrue_inverts_work_between(self, profile, t0, work):
        duration = profile.time_to_accrue(t0, work)
        accrued = profile.work_between(t0, t0 + duration)
        assert abs(accrued - work) < 1e-6 * max(1.0, work)

    @given(profiles(), instants, works)
    def test_time_to_accrue_at_least_work(self, profile, t0, work):
        # Rates never exceed 1, so wall time >= CPU work.
        assert profile.time_to_accrue(t0, work) >= work - 1e-9
