"""Property-based tests: ACL evaluation invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.clarens.acl import AccessControlList, AclRule
from repro.clarens.auth import ANONYMOUS, Principal

users = st.sampled_from(["alice", "bob", "carol"])
groups = st.sampled_from(["phys", "ops", "students"])
services = st.sampled_from(["steering", "jobmon", "estimator"])
methods = st.sampled_from(["kill", "move", "status", "ping"])


@st.composite
def rules(draw):
    pattern = draw(
        st.sampled_from(["*", "steering.*", "jobmon.*", "*.ping", "steering.kill"])
    )
    kind = draw(st.sampled_from(["users", "groups", "everyone"]))
    if kind == "users":
        return AclRule(
            pattern=pattern,
            allow=draw(st.booleans()),
            users=frozenset(draw(st.sets(users, min_size=1, max_size=3))),
        )
    if kind == "groups":
        return AclRule(
            pattern=pattern,
            allow=draw(st.booleans()),
            groups=frozenset(draw(st.sets(groups, min_size=1, max_size=3))),
        )
    return AclRule(pattern=pattern, allow=draw(st.booleans()), everyone=True)


@st.composite
def principals(draw):
    if draw(st.booleans()):
        return ANONYMOUS
    return Principal(
        user=draw(users), groups=frozenset(draw(st.sets(groups, max_size=2)))
    )


def make_acl(rule_list, default=False):
    acl = AccessControlList(default_allow=default)
    acl._rules = list(rule_list)
    return acl


class TestAclProperties:
    @given(st.lists(rules(), max_size=8), principals(), services, methods)
    def test_evaluation_is_deterministic(self, rule_list, principal, service, method):
        acl = make_acl(rule_list)
        path = f"{service}.{method}"
        assert acl.check(principal, path) == acl.check(principal, path)

    @given(st.lists(rules(), max_size=8), principals(), services, methods)
    def test_first_applicable_rule_decides(self, rule_list, principal, service, method):
        acl = make_acl(rule_list)
        path = f"{service}.{method}"
        expected = None
        for rule in rule_list:
            if rule.matches_path(path) and rule.covers(principal):
                expected = rule.allow
                break
        if expected is None:
            expected = acl.default_allow
        assert acl.check(principal, path) == expected

    @given(st.lists(rules(), max_size=8), services, methods)
    def test_anonymous_only_passes_everyone_rules(self, rule_list, service, method):
        acl = make_acl(rule_list, default=False)
        path = f"{service}.{method}"
        if acl.check(ANONYMOUS, path):
            first = next(
                r for r in rule_list
                if r.matches_path(path) and r.covers(ANONYMOUS)
            )
            assert first.everyone

    @given(st.lists(rules(), max_size=8), principals(), services, methods)
    def test_appending_non_matching_rule_never_changes_decision(
        self, rule_list, principal, service, method
    ):
        acl = make_acl(rule_list)
        path = f"{service}.{method}"
        before = acl.check(principal, path)
        acl._rules.append(
            AclRule(pattern="other.zzz", allow=not before, everyone=True)
        )
        assert acl.check(principal, path) == before

    @given(st.lists(rules(), max_size=6), principals(), services, methods)
    def test_prepending_everyone_allow_forces_allow(
        self, rule_list, principal, service, method
    ):
        acl = make_acl([AclRule(pattern="*", allow=True, everyone=True)] + rule_list)
        assert acl.check(principal, f"{service}.{method}") is True
