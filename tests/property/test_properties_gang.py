"""Property-based tests: gang scheduling and combined-profile invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridsim.clock import Simulator
from repro.gridsim.condor import CondorPool
from repro.gridsim.job import JobState, Task, TaskSpec
from repro.gridsim.node import LoadProfile, Node

loads = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
instants = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
works = st.floats(min_value=1.0, max_value=500.0, allow_nan=False)


@st.composite
def profiles(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    ts = sorted(draw(st.lists(instants, min_size=n, max_size=n, unique=True)))
    vs = draw(st.lists(loads, min_size=n, max_size=n))
    return LoadProfile(list(zip(ts, vs)))


class TestCombineMaxProperties:
    @given(st.lists(profiles(), min_size=1, max_size=4), instants)
    def test_combined_load_is_pointwise_max(self, ps, t):
        combined = LoadProfile.combine_max(ps)
        assert combined.load_at(t) == max(p.load_at(t) for p in ps)

    @given(st.lists(profiles(), min_size=1, max_size=4), instants, works)
    def test_combined_work_never_exceeds_any_member(self, ps, t0, w):
        """The gang is as slow as its slowest member: over any window the
        combined profile accrues no more work than any single profile."""
        combined = LoadProfile.combine_max(ps)
        t1 = t0 + w
        combined_work = combined.work_between(t0, t1)
        for p in ps:
            assert combined_work <= p.work_between(t0, t1) + 1e-9

    @given(profiles(), instants, instants)
    def test_combine_with_self_is_identity(self, p, a, b):
        t0, t1 = sorted((a, b))
        combined = LoadProfile.combine_max([p, p])
        assert abs(combined.work_between(t0, t1) - p.work_between(t0, t1)) < 1e-9


class TestGangPoolProperties:
    @given(
        st.lists(
            st.tuples(works, st.integers(min_value=1, max_value=4)),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=4, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_gangs_complete_and_slots_conserve(self, jobs, total_slots):
        sim = Simulator()
        node = Node(name="n", cpu_count=total_slots)
        pool = CondorPool(sim, "p", [node])
        tasks = [
            Task(spec=TaskSpec(nodes=slots), work_seconds=w)
            for w, slots in jobs
        ]
        for t in tasks:
            pool.submit(t)
        while sim.step():
            # Invariant at every event: slots never oversubscribed and
            # occupancy equals the sum of running gangs' slot needs.
            running = [ad for ad in pool._ads.values() if ad.state is JobState.RUNNING]
            assert len(node.running_task_ids) == sum(ad.slots_needed for ad in running)
            assert len(node.running_task_ids) <= total_slots
        for t in tasks:
            ad = pool.ad(t.task_id)
            assert t.state is JobState.COMPLETED
            assert abs(ad.accrued_work - t.work_seconds) < 1e-6 * max(1.0, t.work_seconds)

    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_strict_dispatch_order_is_fifo_without_priorities(self, slot_needs):
        sim = Simulator()
        pool = CondorPool(sim, "p", [Node(name="n", cpu_count=3)])
        tasks = [
            Task(spec=TaskSpec(nodes=s), work_seconds=10.0) for s in slot_needs
        ]
        for t in tasks:
            pool.submit(t)
        sim.run()
        starts = [pool.ad(t.task_id).start_time for t in tasks]
        # FIFO: no task starts before an earlier-submitted one.
        assert starts == sorted(starts)
