"""Property-based tests: quota accounting conservation laws."""

from hypothesis import given
from hypothesis import strategies as st

from repro.accounting.quota import QuotaError, QuotaManager

amounts = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
ops = st.lists(
    st.tuples(st.sampled_from(["reserve", "commit", "release"]), amounts),
    max_size=40,
)


class TestQuotaProperties:
    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), ops)
    def test_invariants_hold_under_any_op_sequence(self, limit, operations):
        q = QuotaManager()
        q.set_quota("u", limit)
        live = []
        committed_total = 0.0
        over_commit_total = 0.0  # charges above the reserved amount
        for op, amount in operations:
            if op == "reserve":
                try:
                    live.append(q.reserve("u", amount))
                except QuotaError:
                    pass
            elif op == "commit" and live:
                res = live.pop(0)
                q.commit(res.reservation_id, amount)
                committed_total += amount
                over_commit_total += max(0.0, amount - res.amount)
            elif op == "release" and live:
                q.release(live.pop(0).reservation_id)
            quota = q.quota("u")
            # Conservation: reserved equals the sum of live reservations.
            assert abs(quota.reserved - sum(r.amount for r in live)) < 1e-6
            # Spend only comes from commits.
            assert abs(quota.spent - committed_total) < 1e-6
            # Reservations never overdraw the limit, except to the extent
            # that actual charges exceeded their reservations (billing
            # after the fact may legitimately drive balances negative).
            assert (
                quota.reserved
                <= quota.limit - quota.spent + over_commit_total + 1e-6
            )

    @given(amounts, amounts)
    def test_reserve_release_is_identity(self, limit_pad, amount):
        q = QuotaManager()
        q.set_quota("u", amount + limit_pad)
        before = q.available("u")
        res = q.reserve("u", amount)
        q.release(res.reservation_id)
        assert abs(q.available("u") - before) < 1e-9

    @given(amounts)
    def test_cannot_reserve_more_than_available(self, amount):
        q = QuotaManager()
        q.set_quota("u", amount)
        try:
            q.reserve("u", amount * 1.5 + 1.0)
            assert False, "expected QuotaError"
        except QuotaError:
            pass
