"""Property-based tests: streaming telemetry equals offline recomputation.

The pipeline's determinism contract: every windowed aggregate it streams
is a pure function of the raw samples, so recomputing the same windows
offline — ``windows_from_events`` over the raw journal, and
``derive_window_series`` over the raw metric boundary samples — must be
**bit-identical** to the streamed series, whatever the workload or fault
schedule did.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, Task, TaskSpec
from repro.gridsim.faults import FaultInjector
from repro.observability.telemetry import (
    derive_window_series,
    windows_from_events,
)

HORIZON_S = 6000.0


def run_telemetry_gae(seed, window_s, n_tasks, with_faults):
    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=2, background_load=0.0)
        .site("siteB", nodes=2, background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )
    gae = build_gae(
        grid,
        policy=SteeringPolicy(auto_move=False),
        telemetry_window_s=window_s,  # ≤100 windows: the ring keeps them all
    )
    for i in range(n_tasks):
        task = Task(spec=TaskSpec(owner="prop"), work_seconds=50.0 + 35.0 * i)
        gae.scheduler.submit_job(Job(tasks=[task], owner="prop"))
    if with_faults:
        injector = FaultInjector(gae.sim, rng=np.random.default_rng(seed))
        for site in ("siteA", "siteB"):
            injector.add_site(
                gae.grid.execution_services[site], mtbf_s=900.0, mttr_s=200.0
            )
        injector.start()
    gae.start()
    gae.grid.run_until(HORIZON_S)
    gae.stop()
    return gae


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    window_s=st.sampled_from([60.0, 125.0, 250.0]),
    n_tasks=st.integers(min_value=1, max_value=4),
    with_faults=st.booleans(),
)
def test_streamed_windows_equal_offline_recomputation(
    seed, window_s, n_tasks, with_faults
):
    gae = run_telemetry_gae(seed, window_s, n_tasks, with_faults)
    telemetry = gae.observability.telemetry
    boundaries = telemetry.boundaries()
    assert telemetry.windows_closed == len(boundaries)

    # -- journal series: counts, rates, cumulative totals --------------
    recomputed = windows_from_events(
        gae.observability.journal.events(), boundaries, telemetry.origin
    )
    streamed_types = {
        name.split(".")[1]
        for name in telemetry.names()
        if name.startswith("journal.") and name.endswith(".count")
    }
    assert streamed_types == set(recomputed)
    for event_type, expected in recomputed.items():
        count = telemetry.series(f"journal.{event_type}.count").samples()
        assert count == [(t, float(v)) for t, v in expected]
        rate = telemetry.series(f"journal.{event_type}.rate").samples()
        assert rate == [(t, v / window_s) for t, v in expected]
        total = telemetry.series(f"journal.{event_type}.total").samples()
        running = 0
        expected_total = []
        for t, v in expected:
            running += v
            expected_total.append((t, float(running)))
        assert total == expected_total

    # -- metric series: derived rates/deltas from raw boundary samples -
    for name in telemetry.names():
        if name.endswith(".total"):
            raw, derived, kind = name, name[: -len(".total")] + ".rate", "counter"
        elif name.endswith(".value"):
            raw, derived, kind = name, name[: -len(".value")] + ".delta", "gauge"
        else:
            continue
        if not name.startswith("metric."):
            continue
        derived_series = telemetry.series(derived)
        if derived_series is None:
            continue
        expected = derive_window_series(
            telemetry.series(raw).samples(), kind, window_s
        )
        assert derived_series.samples() == expected, name
