"""Property-based tests: tracing/journal invariants under site churn.

Whatever the fault injector does to the grid, every job that reaches a
terminal state must leave behind (a) a gap-free span tree — every span's
parent exists in the trace and no child starts before its parent — with
monotonically ordered sim-time stamps, and (b) a journal timeline that
starts at *submitted*, never goes backwards in time, and carries one
trace id end to end.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, Task, TaskSpec
from repro.gridsim.faults import FaultInjector
from repro.gridsim.job import JobState
from repro.observability.journal import EventType

HORIZON_S = 8000.0

TERMINAL_EVENT = {
    JobState.COMPLETED: EventType.COMPLETED,
    JobState.KILLED: EventType.KILLED,
    JobState.FAILED: EventType.FAILED,
}


def run_faulty_gae(seed, mtbf_s, mttr_s, n_tasks):
    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=2, background_load=0.0)
        .site("siteB", nodes=2, background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )
    gae = build_gae(grid, policy=SteeringPolicy(auto_move=False))
    tasks = [
        Task(spec=TaskSpec(owner="prop"), work_seconds=60.0 + 40.0 * i)
        for i in range(n_tasks)
    ]
    for task in tasks:
        gae.scheduler.submit_job(Job(tasks=[task], owner="prop"))
    injector = FaultInjector(gae.sim, rng=np.random.default_rng(seed))
    for site in ("siteA", "siteB"):
        injector.add_site(gae.grid.execution_services[site], mtbf_s=mtbf_s, mttr_s=mttr_s)
    gae.start()
    injector.start()
    gae.grid.run_until(HORIZON_S)
    gae.stop()
    return gae, tasks


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mtbf_s=st.floats(min_value=400.0, max_value=5000.0),
    mttr_s=st.floats(min_value=50.0, max_value=500.0),
    n_tasks=st.integers(min_value=1, max_value=4),
)
def test_terminal_jobs_leave_ordered_gap_free_traces(seed, mtbf_s, mttr_s, n_tasks):
    gae, tasks = run_faulty_gae(seed, mtbf_s, mttr_s, n_tasks)
    obs = gae.observability
    terminal = [t for t in tasks if t.state.is_terminal]

    for task in terminal:
        trace_id = obs.trace_id_of(task.task_id)
        assert trace_id is not None

        # -- journal timeline ----------------------------------------
        timeline = obs.journal.timeline(task.task_id)
        assert timeline, f"terminal task {task.task_id} left no events"
        assert timeline[0].type is EventType.SUBMITTED
        times = [e.time for e in timeline]
        assert all(b >= a for a, b in zip(times, times[1:]))
        seqs = [e.seq for e in timeline]
        assert all(b > a for a, b in zip(seqs, seqs[1:]))
        assert {e.trace_id for e in timeline} == {trace_id}
        if task.state in TERMINAL_EVENT:
            assert TERMINAL_EVENT[task.state] in {e.type for e in timeline}

        # -- span tree -----------------------------------------------
        spans = obs.tracer.spans(trace_id)
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.name == f"task:{task.task_id}"]
        assert len(roots) == 1  # one root per task, however many retries
        for span in spans:
            if span.end is not None:
                assert span.end >= span.start
            if span.parent_id is not None:
                assert span.parent_id in by_id, (
                    f"gap in trace: {span.name} parents a missing span"
                )
                assert span.start >= by_id[span.parent_id].start
        if task.state is JobState.COMPLETED:
            assert roots[0].status == "ok"
        elif task.state is JobState.KILLED:
            assert roots[0].status == "killed"
        # A FAILED root stays open on purpose: recovery may resubmit.

        # Every timeline event's span is part of the same trace.
        for event in timeline:
            if event.span_id is not None:
                assert event.span_id in by_id
