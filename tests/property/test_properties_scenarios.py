"""Property-based tests: scenario schema round-trip and report determinism.

Two contracts:

1. Any valid scenario config survives ``ScenarioSpec.from_dict`` /
   ``to_dict`` as a fixpoint — re-parsing the canonical dict yields an
   equal spec and the identical canonical JSON.
2. ``run_campaign`` is a pure function of (spec, seed): serialising the
   report twice for the same spec yields bit-identical JSON, the
   determinism contract behind the committed ``SCENARIOS.json``.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.engine import run_campaign
from repro.scenarios.spec import ScenarioSpec

SITES = ("siteA", "siteB")

GRID = {
    "sites": [
        {"name": "siteA", "nodes": 2, "cpus_per_node": 2},
        {"name": "siteB", "nodes": 2, "cpus_per_node": 2},
    ],
    "links": [{"a": "siteA", "b": "siteB", "capacity_mbps": 155.0}],
    "flocking": [["siteA", "siteB"], ["siteB", "siteA"]],
}

finite = {"allow_nan": False, "allow_infinity": False}


@st.composite
def workloads(draw):
    shape = draw(st.sampled_from(["prime", "bag", "diurnal", "multi_vo"]))
    data = {"shape": shape}
    if shape == "multi_vo":
        data["vos"] = draw(
            st.lists(
                st.fixed_dictionaries({
                    "owner": st.sampled_from(["cms", "atlas", "ops"]),
                    "tasks": st.integers(1, 4),
                    "priority": st.integers(0, 10),
                }),
                min_size=1, max_size=3,
            )
        )
    else:
        data["owner"] = draw(st.sampled_from(["alice", "bob"]))
        data["tasks"] = draw(st.integers(1, 6))
    if shape == "diurnal":
        data["period_s"] = draw(st.floats(200.0, 2000.0, **finite))
    return data


@st.composite
def chaos_actions(draw):
    kind = draw(st.sampled_from(["outage", "flapping", "degrade", "weather"]))
    if kind == "outage":
        return {
            "kind": kind,
            "site": draw(st.sampled_from(SITES)),
            "start_s": draw(st.floats(0.0, 500.0, **finite)),
            "duration_s": draw(st.floats(1.0, 500.0, **finite)),
        }
    if kind == "flapping":
        return {
            "kind": kind,
            "site": draw(st.sampled_from(SITES)),
            "start_s": 0.0,
            "end_s": draw(st.floats(100.0, 900.0, **finite)),
            "period_s": draw(st.floats(50.0, 300.0, **finite)),
            "duty": draw(st.floats(0.1, 0.9, **finite)),
        }
    if kind == "degrade":
        return {
            "kind": kind,
            "link": ["siteA", "siteB"],
            "start_s": 0.0,
            "end_s": draw(st.floats(10.0, 900.0, **finite)),
            "utilization": draw(st.floats(0.1, 0.9, **finite)),
        }
    return {
        "kind": "weather",
        "period_s": draw(st.floats(50.0, 400.0, **finite)),
        "mean_utilization": draw(st.floats(0.05, 0.8, **finite)),
        "volatility": draw(st.floats(0.01, 0.3, **finite)),
    }


@st.composite
def slo_dicts(draw):
    metric = draw(st.sampled_from(
        ["completion_ratio", "makespan_s", "queue_wait_s", "tasks_failed_total"]
    ))
    data = {
        "metric": metric,
        "op": draw(st.sampled_from(["<=", ">="])),
        "threshold": draw(st.floats(0.0, 10000.0, **finite)),
    }
    if metric == "queue_wait_s":
        data["percentile"] = draw(st.sampled_from([50.0, 90.0, 95.0, 99.0]))
    return data


@st.composite
def scenario_dicts(draw):
    return {
        "name": draw(st.sampled_from(["prop-a", "prop-b"])),
        "description": "property-generated scenario",
        "grid": GRID,
        "seed": draw(st.integers(1, 2**20)),
        "horizon_s": draw(st.floats(600.0, 5000.0, **finite)),
        "workload": draw(workloads()),
        "chaos": draw(st.lists(chaos_actions(), max_size=2)),
        "slos": draw(st.lists(slo_dicts(), min_size=1, max_size=3)),
        "tags": draw(st.lists(st.sampled_from(["a", "b"]), max_size=2, unique=True)),
    }


@given(scenario_dicts())
@settings(max_examples=60, deadline=None)
def test_spec_round_trip_is_fixpoint(data):
    spec = ScenarioSpec.from_dict(data)
    canonical = spec.to_dict()
    again = ScenarioSpec.from_dict(canonical)
    assert again == spec
    assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
        canonical, sort_keys=True
    )


@given(st.integers(1, 2**16))
@settings(max_examples=5, deadline=None)
def test_same_seed_reports_serialize_bit_identically(seed):
    spec = ScenarioSpec.from_dict({
        "name": "prop-determinism",
        "description": "tiny deterministic campaign",
        "grid": GRID,
        "seed": seed,
        "horizon_s": 1200.0,
        "workload": {"shape": "prime", "tasks": 2, "interval_s": 60.0},
        "chaos": [{"kind": "outage", "site": "siteB",
                   "start_s": 200.0, "duration_s": 150.0}],
        "slos": [{"metric": "makespan_s", "op": "<=", "threshold": 1e6}],
    })
    first = json.dumps(run_campaign([spec]), sort_keys=True)
    second = json.dumps(run_campaign([spec]), sort_keys=True)
    assert first == second
