"""Property-based tests: wire marshalling totality and stability."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clarens.serialization import check_wire_safe, from_wire, to_wire

# Values a GAE service might realistically return.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)

rich_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


class TestMarshallingProperties:
    @given(rich_values)
    def test_to_wire_always_yields_wire_safe(self, value):
        check_wire_safe(to_wire(value))

    @given(rich_values)
    def test_to_wire_idempotent_through_from_wire(self, value):
        wire = to_wire(value)
        assert to_wire(from_wire(wire)) == wire

    @given(st.dictionaries(st.text(max_size=8), scalars, max_size=8))
    def test_plain_string_dicts_survive_unchanged(self, value):
        # Remove wide ints which are lowered to floats.
        filtered = {
            k: v
            for k, v in value.items()
            if not (isinstance(v, int) and not isinstance(v, bool) and abs(v) > 2**31 - 1)
        }
        assert to_wire(filtered) == filtered

    @given(st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1), max_size=20))
    def test_int_lists_preserved_exactly(self, xs):
        assert to_wire(xs) == xs


class TestXmlRpcWireCompatibility:
    @given(rich_values)
    @settings(max_examples=50)
    def test_survives_actual_xmlrpc_dumps(self, value):
        """Everything to_wire emits must be encodable by stdlib xmlrpc."""
        import xmlrpc.client

        wire = to_wire(value)
        xmlrpc.client.dumps((wire,), allow_none=True)
