"""Property-based tests: checkpoint/restore barrier-instant identity.

For random workloads, random checkpoint instants and random fault
schedules, a GAE restored from its checkpoint answers ``job_status``,
``estimator.estimate_runtime`` and ``system.observability`` exactly as
the original did *at the barrier instant* (captured by a callback
scheduled immediately after the checkpoint event, so same-time periodic
events armed later do not contaminate the reference answers).
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clarens.errors import ClarensFault
from repro.gae import build_gae
from repro.gridsim import GridBuilder
from repro.gridsim.job import TaskSpec, bag_of_tasks, reset_id_counters
from repro.store.checkpoint import Checkpointer, restore_gae

# Odd multiples of 5 s that are not multiples of any periodic activity
# (20/30/60 s): the barrier never coincides with a periodic event, and
# when it does coincide with task events the capture-at-barrier pattern
# still pins the comparison point.
barrier_times = st.sampled_from([105.0, 125.0, 145.0, 185.0, 205.0, 215.0, 265.0])
work_lists = st.lists(
    st.floats(min_value=50.0, max_value=500.0, allow_nan=False),
    min_size=2,
    max_size=6,
)


@st.composite
def fault_schedules(draw, t_max=100.0):
    """None, or (site, t_fail, t_recover-or-None) strictly before t_max."""
    if not draw(st.booleans()):
        return None
    site = draw(st.sampled_from(["siteA", "siteB"]))
    t_fail = draw(st.floats(min_value=10.0, max_value=t_max - 20.0, allow_nan=False))
    t_recover = None
    if draw(st.booleans()):
        t_recover = draw(
            st.floats(min_value=t_fail + 1.0, max_value=t_max - 1.0, allow_nan=False)
        )
    return (site, t_fail, t_recover)


def build_workload(seed, works, fault):
    reset_id_counters()
    grid = (
        GridBuilder(seed=seed)
        .site("siteA", nodes=2, background_load=0.3)
        .site("siteB", nodes=2, background_load=1.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .file("in.dat", size_mb=50.0, at="siteA")
        .build()
    )
    gae = build_gae(grid, monitor_snapshot_period_s=20.0).start()
    gae.add_user("alice", "pw")
    specs = [TaskSpec(owner="alice", input_files=("in.dat",)) for _ in works]
    job = bag_of_tasks(specs, list(works), owner="alice")
    gae.scheduler.submit_job(job)
    if fault is not None:
        site, t_fail, t_recover = fault
        service = gae.grid.execution_services[site]
        gae.sim.at(t_fail, service.fail)
        if t_recover is not None:
            gae.sim.at(t_recover, service.recover)
    return gae, job


def answers(gae, job):
    client = gae.client("alice", "pw")
    # Before any task completes the estimator legitimately faults
    # ("history holds no successful task records"); the fault is then
    # part of the answer the restored GAE must reproduce.
    try:
        est = client.call(
            "estimator.estimate_runtime", {"owner": "alice", "nodes": 1}
        )
    except ClarensFault as exc:
        est = ("fault", str(exc))
    return {
        "status": {
            t.task_id: client.call("jobmon.job_status", t.task_id)
            for t in job.tasks
        },
        "obs": client.call("system.observability"),
        "est": est,
    }


class TestCheckpointProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        works=work_lists,
        t_ckpt=barrier_times,
        fault=fault_schedules(),
    )
    @settings(max_examples=12, deadline=None)
    def test_restored_answers_match_barrier_instant(self, seed, works, t_ckpt, fault):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "ckpt.sqlite")
            gae, job = build_workload(seed, works, fault)
            Checkpointer(gae).checkpoint_at(t_ckpt, path)

            captured = {}
            gae.sim.at(t_ckpt, lambda: captured.update(answers(gae, job)))
            gae.sim.run_until(t_ckpt)

            reset_id_counters()
            restored = restore_gae(path)
            restored_job = restored.scheduler.jobs()[0]
            assert answers(restored, restored_job) == captured

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        works=work_lists,
        t_ckpt=barrier_times,
    )
    @settings(max_examples=8, deadline=None)
    def test_restore_is_deterministic(self, seed, works, t_ckpt):
        """Two restores of one checkpoint give identical answers."""
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "ckpt.sqlite")
            gae, _ = build_workload(seed, works, fault=None)
            Checkpointer(gae).checkpoint_at(t_ckpt, path)
            gae.sim.run_until(t_ckpt)

            reset_id_counters()
            first = restore_gae(path)
            first_answers = answers(first, first.scheduler.jobs()[0])
            reset_id_counters()
            second = restore_gae(path)
            assert answers(second, second.scheduler.jobs()[0]) == first_answers
