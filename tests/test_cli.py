"""Unit tests for the gae-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure5_defaults(self):
        args = build_parser().parse_args(["figure5"])
        assert args.seed == 1995
        assert args.history == 100
        assert args.tests == 20

    def test_figure7_flags(self):
        args = build_parser().parse_args(["figure7", "--poll", "10", "--checkpoint"])
        assert args.poll == 10.0
        assert args.checkpoint is True

    def test_trace_requires_n(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestCommands:
    def test_figure5_prints_figure_and_table(self, capsys):
        assert main(["figure5", "--tests", "10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "mean |% error|" in out
        assert "13.53" in out

    def test_figure7_prints_comparison(self, capsys):
        assert main(["figure7", "--poll", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "steered completion" in out
        assert "~369" in out

    def test_trace_to_stdout(self, capsys):
        assert main(["trace", "--n", "5"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("account,login")
        assert len(lines) == 6

    def test_trace_to_file(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        assert main(["trace", "--n", "7", "--out", str(path)]) == 0
        assert "wrote 7 accounting records" in capsys.readouterr().out
        from repro.workloads.traces import read_trace_csv

        assert len(read_trace_csv(path)) == 7

    def test_trace_deterministic_per_seed(self, capsys):
        main(["trace", "--n", "3", "--seed", "5"])
        first = capsys.readouterr().out
        main(["trace", "--n", "3", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_demo_runs_to_completion(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "scheduled" in out
        assert "completed" in out

    def test_figure6_small_sweep(self, capsys):
        assert main(["figure6", "--clients", "1", "2", "--calls", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "mean latency (ms)" in out


class TestStatsCommand:
    def test_stats_prints_latency_table_and_trace(self, capsys):
        assert main(["stats", "--calls", "2"]) == 0
        out = capsys.readouterr().out
        assert "p95 (ms)" in out
        assert "jobmon.job_info" in out
        assert "system.multicall" in out
        assert "calls in the recent-calls ring" in out

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.calls == 5
        assert args.seed == 7
