"""Unit tests for the gae-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure5_defaults(self):
        args = build_parser().parse_args(["figure5"])
        assert args.seed == 1995
        assert args.history == 100
        assert args.tests == 20

    def test_figure7_flags(self):
        args = build_parser().parse_args(["figure7", "--poll", "10", "--checkpoint"])
        assert args.poll == 10.0
        assert args.checkpoint is True

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.task_id is None
        assert args.n is None
        assert args.export == "gae_trace_export.jsonl"


class TestCommands:
    def test_figure5_prints_figure_and_table(self, capsys):
        assert main(["figure5", "--tests", "10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "mean |% error|" in out
        assert "13.53" in out

    def test_figure7_prints_comparison(self, capsys):
        assert main(["figure7", "--poll", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "steered completion" in out
        assert "~369" in out

    def test_trace_to_stdout(self, capsys):
        assert main(["trace", "--n", "5"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("account,login")
        assert len(lines) == 6

    def test_trace_to_file(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        assert main(["trace", "--n", "7", "--out", str(path)]) == 0
        assert "wrote 7 accounting records" in capsys.readouterr().out
        from repro.workloads.traces import read_trace_csv

        assert len(read_trace_csv(path)) == 7

    def test_trace_deterministic_per_seed(self, capsys):
        main(["trace", "--n", "3", "--seed", "5"])
        first = capsys.readouterr().out
        main(["trace", "--n", "3", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_trace_without_args_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "task id" in capsys.readouterr().err

    def test_trace_missing_export_errors(self, tmp_path, capsys):
        assert main(["trace", "task-000001",
                     "--export", str(tmp_path / "nope.jsonl")]) == 1
        assert "no trace export" in capsys.readouterr().err

    def test_demo_runs_to_completion(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "scheduled" in out
        assert "completed" in out
        assert (tmp_path / "gae_trace_export.jsonl").exists()

    def test_demo_then_trace_prints_steered_span_tree(self, tmp_path, capsys):
        export = tmp_path / "demo.jsonl"
        assert main(["demo", "--trace-export", str(export)]) == 0
        out = capsys.readouterr().out
        task_id = next(
            line.split()[1] for line in out.splitlines()
            if line.startswith("scheduled ")
        )
        assert main(["trace", task_id, "--export", str(export)]) == 0
        tree = capsys.readouterr().out
        # One trace covers the whole steered life of the job.
        assert f"task:{task_id}" in tree
        assert "flock" in tree and "to=siteB" in tree
        assert "steer:pause" in tree and "steer:move" in tree
        assert "rpc:steering.move" in tree
        assert "monalisa:publish" in tree
        assert "run@siteA" in tree and "run@siteB" in tree
        assert "| completed |" in tree  # timeline table reaches the end

    def test_trace_unknown_task_errors(self, tmp_path, capsys):
        export = tmp_path / "demo.jsonl"
        assert main(["demo", "--trace-export", str(export)]) == 0
        capsys.readouterr()
        assert main(["trace", "task-999999", "--export", str(export)]) == 1
        assert "not found" in capsys.readouterr().err

    def test_demo_export_validates_against_schema(self, tmp_path, capsys):
        from repro.observability import validate_export_file

        export = tmp_path / "demo.jsonl"
        assert main(["demo", "--trace-export", str(export)]) == 0
        rows = validate_export_file(
            export, "docs/schemas/trace_export.schema.json"
        )
        assert rows > 20

    def test_figure6_small_sweep(self, capsys):
        assert main(["figure6", "--clients", "1", "2", "--calls", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "mean latency (ms)" in out


class TestStatsCommand:
    def test_stats_prints_latency_table_and_trace(self, capsys):
        assert main(["stats", "--calls", "2"]) == 0
        out = capsys.readouterr().out
        assert "p95 (ms)" in out
        assert "jobmon.job_info" in out
        assert "system.multicall" in out
        assert "calls in the recent-calls ring" in out

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.calls == 5
        assert args.seed == 7
