"""Shared helpers for the benchmark harness.

Every ``bench_fig*`` module regenerates one figure of the paper's §7 and
prints (run pytest with ``-s`` to see it):

- the figure's data series (the same series the paper plots),
- an ASCII rendering of the figure, and
- a paper-vs-measured comparison row.

Numbers are not expected to match the 2005 testbed; the *shape* assertions
(who wins, by roughly what factor, where the crossover falls) are enforced
with real asserts so a regression in any service breaks the bench.
"""

from __future__ import annotations

import pytest

from repro.gridsim.job import reset_id_counters


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_id_counters()
    yield
    reset_id_counters()


def print_figure(figure, comparison_rows=None):
    """Render a reproduced figure plus its paper-vs-measured table."""
    print()
    print(figure.render())
    if comparison_rows:
        from repro.analysis.report import markdown_table

        print(markdown_table(["quantity", "paper", "measured"], comparison_rows))
