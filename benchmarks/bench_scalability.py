"""Scalability — simulator and service throughput at scale.

Not a paper figure, but the property that makes the reproduction usable:
the discrete-event substrate must chew through grid-scale workloads fast
enough that the figure benches and ablation sweeps stay interactive.

Measures:

- raw event-loop throughput (events/second),
- end-to-end simulated-job throughput on a 16-site grid (jobs include
  scheduling, monitoring updates and history recording),
- monitoring-query cost as the DB grows to thousands of tasks.
"""

import pytest

from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, Simulator, Task, TaskSpec
from repro.workloads.generators import bag_of_batch_tasks


@pytest.mark.benchmark(group="scalability")
def test_event_loop_throughput(benchmark):
    """Pure kernel: schedule+run 10k trivial events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 100), lambda: None)
        return sim.run()

    executed = benchmark(run)
    assert executed == 10_000


def build_big_gae(n_sites=16, nodes_per_site=4):
    builder = GridBuilder(seed=99).probe_noise(0.0)
    for i in range(n_sites):
        builder.site(f"site{i:02d}", nodes=nodes_per_site,
                     background_load=0.1 * (i % 4))
    grid = builder.build()
    return build_gae(grid, load_publish_period_s=300.0)


@pytest.mark.benchmark(group="scalability")
def test_full_gae_job_throughput(benchmark):
    """Simulate 200 jobs across 16 sites end to end."""

    def run():
        gae = build_big_gae()
        job = bag_of_batch_tasks("u", 200, gae.grid.rngs.stream("bench"),
                                 mean_seconds=600.0)
        gae.scheduler.submit_job(job)
        gae.grid.run_until(1e6)
        return sum(1 for t in job.tasks if t.state.value == "completed")

    completed = benchmark(run)
    assert completed == 200


@pytest.mark.benchmark(group="scalability")
def test_monitoring_query_with_large_db(benchmark):
    """One jobmon query while the DB holds 1000 finished tasks."""
    gae = build_big_gae(n_sites=4, nodes_per_site=8)
    tasks = []
    for _ in range(1000):
        t = Task(spec=TaskSpec(owner="u"), work_seconds=1.0)
        tasks.append(t)
        gae.scheduler.submit_job(Job(tasks=[t], owner="u"))
    gae.grid.run_until(1e6)
    assert len(gae.monitoring.db_manager) == 1000
    target = tasks[500].task_id
    record = benchmark(lambda: gae.monitoring.record_for(target))
    assert record.status == "completed"


class TestScaleCorrectness:
    def test_500_jobs_16_sites_all_complete(self):
        gae = build_big_gae()
        job = bag_of_batch_tasks("u", 500, gae.grid.rngs.stream("scale"),
                                 mean_seconds=300.0)
        gae.scheduler.submit_job(job)
        gae.grid.run_until(1e7)
        assert all(t.state.value == "completed" for t in job.tasks)
        # Work got spread: several sites were used.
        plan = gae.scheduler.plan(job.job_id)
        assert len(plan.sites()) >= 4
