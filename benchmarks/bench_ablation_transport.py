"""Ablation — Clarens transport and dispatch overhead.

The paper's services are "SOAP/XMLRPC web services … to ensure a modular
architecture" (§3); the price is serialization and HTTP.  This bench breaks
the per-call cost into layers:

- bare in-process dispatch (auth + ACL + marshalling, no sockets),
- real XML-RPC over loopback HTTP,
- the framed async transport (serial round trips, and pipelined) under
  each wire codec,
- the marshalling layer alone (to_wire on a monitoring record),
- token validation alone.
"""

import pytest

from repro.clarens.aio import AsyncSocketServerHandle
from repro.clarens.client import ClarensClient
from repro.clarens.serialization import to_wire
from repro.clarens.server import ClarensHost, XmlRpcServerHandle
from repro.clarens.transport import (
    AsyncSocketTransport,
    LoopbackTransport,
    SocketTransport,
)


class EchoService:
    def echo(self, value):
        """Return the argument unchanged."""
        return value


SAMPLE_RECORD = {
    "task_id": "task-000001",
    "job_id": "job-000001",
    "site": "caltech",
    "status": "running",
    "elapsed_time_s": 120.5,
    "estimated_run_time_s": 283.0,
    "remaining_time_s": 162.5,
    "progress": 0.426,
    "queue_position": -1,
    "priority": 0,
    "submission_time": 0.0,
    "execution_time": 1.5,
    "completion_time": None,
    "cpu_time_used_s": 120.5,
    "input_io_mb": 10.0,
    "output_io_mb": 0.0,
    "owner": "physicist",
    "environment": {"ROOTSYS": "/opt/root", "SCRAM_ARCH": "slc3_ia32_gcc323"},
}


def make_host():
    host = ClarensHost("bench")
    host.users.add_user("u", "p", groups=("g",))
    host.acl.allow("echo.*", groups=("g",))
    host.register("echo", EchoService())
    return host


@pytest.mark.benchmark(group="ablation-transport")
def test_inprocess_dispatch(benchmark):
    host = make_host()
    client = ClarensClient(LoopbackTransport(host))
    client.login("u", "p")
    echo = client.service("echo")
    result = benchmark(lambda: echo.echo(SAMPLE_RECORD))
    assert result["task_id"] == "task-000001"


@pytest.mark.benchmark(group="ablation-transport")
def test_xmlrpc_dispatch(benchmark):
    host = make_host()
    with XmlRpcServerHandle(host) as handle:
        client = ClarensClient(SocketTransport(handle.url))
        client.login("u", "p")
        echo = client.service("echo")
        result = benchmark(lambda: echo.echo(SAMPLE_RECORD))
        assert result["owner"] == "physicist"


@pytest.mark.benchmark(group="ablation-transport")
@pytest.mark.parametrize("codec", ["json", "xmlrpc"])
def test_async_framed_dispatch(benchmark, codec):
    host = make_host()
    with AsyncSocketServerHandle(host) as handle:
        client = ClarensClient(AsyncSocketTransport(handle.address, codec=codec))
        client.login("u", "p")
        echo = client.service("echo")
        result = benchmark(lambda: echo.echo(SAMPLE_RECORD))
        assert result["owner"] == "physicist"
        client.close()


@pytest.mark.benchmark(group="ablation-transport")
@pytest.mark.parametrize("codec", ["json", "xmlrpc"])
def test_async_framed_pipelined(benchmark, codec):
    """Amortised per-call cost with 64 calls in flight on one connection."""
    host = make_host()
    with AsyncSocketServerHandle(host) as handle:
        transport = AsyncSocketTransport(handle.address, codec=codec)
        client = ClarensClient(transport)
        token = client.login("u", "p")
        batch = [("echo.echo", [SAMPLE_RECORD])] * 64

        def run():
            return transport.call_pipelined(batch, token=token)

        results = benchmark(run)
        assert all(ok for ok, _ in results)
        client.close()


@pytest.mark.benchmark(group="ablation-transport")
def test_marshalling_only(benchmark):
    result = benchmark(lambda: to_wire(SAMPLE_RECORD))
    assert result["progress"] == pytest.approx(0.426)


@pytest.mark.benchmark(group="ablation-transport")
def test_token_validation_only(benchmark):
    host = make_host()
    token = host.auth.login("u", "p")
    principal = benchmark(lambda: host.auth.validate(token))
    assert principal.user == "u"


class TestTransportEquivalence:
    def test_overhead_ordering(self):
        """Sanity: sockets cost more than in-process, which costs more than
        bare marshalling.  (The printed ratios go into EXPERIMENTS.md.)"""
        import time

        host = make_host()

        def time_it(fn, n=300):
            t0 = time.perf_counter()
            for _ in range(n):
                fn()
            return (time.perf_counter() - t0) / n * 1e6  # us

        local = ClarensClient(LoopbackTransport(host))
        local.login("u", "p")
        local_echo = local.service("echo")
        t_local = time_it(lambda: local_echo.echo(SAMPLE_RECORD))
        t_marshal = time_it(lambda: to_wire(SAMPLE_RECORD))
        with XmlRpcServerHandle(host) as handle:
            remote = ClarensClient(SocketTransport(handle.url))
            remote.login("u", "p")
            remote_echo = remote.service("echo")
            t_remote = time_it(lambda: remote_echo.echo(SAMPLE_RECORD))
        print(
            f"\nmarshal-only: {t_marshal:.1f} us; in-process call: {t_local:.1f} us; "
            f"xmlrpc call: {t_remote:.1f} us "
            f"(socket tax {t_remote / t_local:.1f}x)"
        )
        assert t_marshal < t_local < t_remote
