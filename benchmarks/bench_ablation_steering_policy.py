"""Ablation — steering-policy design choices.

§7 names the factors that "must be taken into account when deciding whether
a job should be transferred or allowed to run to completion": how quickly
the decision is taken, and the cost of moving (data transfer, restart).
This bench sweeps them:

- poll interval × detection threshold → completion time of the Figure 7
  job (the decision-speed claim, quantified);
- site-A load level → move-vs-stay crossover (below some load, moving is
  not worth it and the optimizer must decline);
- input-data size → the transfer-cost crossover for a data-heavy job.
"""

import statistics
from typing import Dict

import pytest

from repro.analysis.report import markdown_table
from repro.core.estimators.history import HistoryRepository
from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState
from repro.workloads.generators import (
    PRIME_JOB_FREE_CPU_SECONDS,
    make_prime_count_task,
    prime_job_history_records,
)


def run_once(
    load_a: float = 1.5,
    poll_interval_s: float = 20.0,
    slow_rate_threshold: float = 0.8,
    input_size_mb: float = 0.0,
    bandwidth_mbps: float = 100.0,
    horizon: float = 6000.0,
):
    """Run a Figure 7-style scenario; returns (completion time, #moves)."""
    builder = (
        GridBuilder(seed=77)
        .site("siteA", background_load=load_a)
        .site("siteB", background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=bandwidth_mbps, latency_s=0.05)
        .probe_noise(0.0)
    )
    if input_size_mb > 0:
        builder = builder.file("input.dat", size_mb=input_size_mb, at="siteA")
    grid = builder.build()
    history = HistoryRepository(prime_job_history_records(n=10, sigma=0.01))
    policy = SteeringPolicy(
        poll_interval_s=poll_interval_s,
        min_elapsed_wall_s=40.0,
        slow_rate_threshold=slow_rate_threshold,
        min_improvement_factor=1.2,
    )
    gae = build_gae(grid, policy=policy, history=history)

    task = make_prime_count_task(owner="u")
    if input_size_mb > 0:
        from dataclasses import replace

        task.spec = replace(task.spec, input_files=("input.dat",))
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    gae.scheduler.submit_job(Job(tasks=[task], owner="u"))
    gae.scheduler.select_site = original
    gae.start()
    gae.grid.run_until(horizon)
    gae.stop()
    es = gae.grid.execution_services
    site = "siteB" if es["siteB"].pool.has_task(task.task_id) else "siteA"
    end = es[site].pool.ad(task.task_id).end_time
    moves = len([a for a in gae.steering.actions if a.result and a.result.ok])
    return end, moves


class TestPolicySweep:
    def test_poll_interval_sweep(self):
        rows = []
        ends = {}
        for poll in (10.0, 30.0, 60.0, 120.0, 240.0):
            end, moves = run_once(poll_interval_s=poll)
            ends[poll] = end
            rows.append([poll, round(end, 1), moves])
        print()
        print(markdown_table(["poll interval (s)", "completion (s)", "moves"], rows))
        # Monotone: slower polling never completes sooner.
        sorted_polls = sorted(ends)
        for a, b in zip(sorted_polls, sorted_polls[1:]):
            assert ends[a] <= ends[b] + 1e-6

    def test_threshold_sweep(self):
        rows = []
        for threshold in (0.3, 0.5, 0.8, 0.95):
            end, moves = run_once(slow_rate_threshold=threshold)
            rows.append([threshold, round(end, 1), moves])
        print()
        print(markdown_table(["slow-rate threshold", "completion (s)", "moves"], rows))
        # At threshold 0.3 the 0.4-rate job is *not* slow -> no move.
        end_no_move, moves_no_move = run_once(slow_rate_threshold=0.3)
        assert moves_no_move == 0
        assert end_no_move == pytest.approx(
            PRIME_JOB_FREE_CPU_SECONDS * 2.5, rel=0.01
        )  # 283 / 0.4

    def test_move_vs_stay_crossover_in_load(self):
        """Below some site-A load, the optimizer must decline to move."""
        rows = []
        moved_at = {}
        for load in (0.1, 0.3, 0.8, 1.5, 3.0):
            end, moves = run_once(load_a=load)
            moved_at[load] = moves > 0
            rows.append([load, round(end, 1), moves])
        print()
        print(markdown_table(["site-A load", "completion (s)", "moves"], rows))
        assert not moved_at[0.1]   # healthy rate 0.91 -> stays
        assert moved_at[3.0]       # rate 0.25 -> moves
        # Crossover is monotone: once it moves, heavier load still moves.
        loads = sorted(moved_at)
        first_move = next((l for l in loads if moved_at[l]), None)
        assert first_move is not None
        for l in loads:
            if l >= first_move:
                assert moved_at[l]

    def test_transfer_cost_crossover(self):
        """A data-heavy job over a thin pipe should stay put; the same job
        over a fat pipe should move (the §7 'time taken to transfer the
        data files' factor)."""
        end_fat, moves_fat = run_once(input_size_mb=500.0, bandwidth_mbps=1000.0)
        end_thin, moves_thin = run_once(input_size_mb=500.0, bandwidth_mbps=1.5)
        print(
            f"\nfat pipe: completion {end_fat:.0f}s moves={moves_fat}; "
            f"thin pipe: completion {end_thin:.0f}s moves={moves_thin}"
        )
        assert moves_fat >= 1
        assert moves_thin == 0


@pytest.mark.benchmark(group="ablation-steering")
def test_steering_loop_pass_cost(benchmark):
    """Cost of one steering-loop pass over an active task set."""
    grid = (
        GridBuilder(seed=78)
        .site("siteA", background_load=1.5)
        .site("siteB", background_load=0.0)
        .probe_noise(0.0)
        .build()
    )
    history = HistoryRepository(prime_job_history_records(n=10, sigma=0.01))
    gae = build_gae(grid, history=history,
                    policy=SteeringPolicy(auto_move=False, min_elapsed_wall_s=40.0))
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    for _ in range(10):
        gae.scheduler.submit_job(Job(tasks=[make_prime_count_task(owner="u")], owner="u"))
    gae.scheduler.select_site = original
    gae.grid.run_until(100.0)
    benchmark(gae.steering.steer_once)
