"""Validation — queue-time and transfer-time estimator accuracy.

The paper evaluates the Runtime Estimator quantitatively (Figure 5) but
only describes the Queue Time (§6.2) and Transfer Time (§6.3) estimators.
This bench closes the gap: for each, compare *predicted* against *actual*
over a workload the simulator then executes, so the reproduction documents
how accurate the paper's algorithms actually are.

- Queue time: submit a Paragon-trace batch to a small pool, record §6.2
  predictions at enqueue time, then measure the true wait of every task.
- Transfer time: predict transfers over a noisy-probed link and compare
  with the network model's ground truth across sizes and noise levels.
"""

import statistics
from typing import List, Tuple

import numpy as np
import pytest

from repro.analysis.metrics import summarize_errors
from repro.analysis.report import markdown_table
from repro.core.estimators.queue_time import QueueTimeEstimator, RuntimeEstimateDB
from repro.core.estimators.runtime import RuntimeEstimator
from repro.core.estimators.transfer_time import TransferTimeEstimator
from repro.gridsim.clock import Simulator
from repro.gridsim.execution import ExecutionService
from repro.gridsim.network import IperfProbe, Link, Network
from repro.gridsim.site import Site
from repro.workloads.downey import DowneyWorkloadGenerator


def run_queue_time_validation(seed: int = 1995, n_jobs: int = 40) -> Tuple[List[float], List[float]]:
    """Returns (actual waits, predicted waits) for queued trace jobs."""
    sim = Simulator()
    site = Site.simple(sim, "pool", n_nodes=1)
    service = ExecutionService(site)

    gen = DowneyWorkloadGenerator(seed=seed)
    history, _ = gen.history_and_tests(100, 5)
    runtime_est = RuntimeEstimator(history)
    db = RuntimeEstimateDB()
    qte = QueueTimeEstimator(db, fallback_runtime_s=None)

    records = [r for r in gen.generate(3 * n_jobs) if r.status == "successful"][:n_jobs]
    # Flatten to single-slot tasks: §6.2's plain sum models a single CPU
    # draining the queue, which is exactly this validation setup.
    from dataclasses import replace as _replace

    tasks = []
    for r in records:
        task = r.to_task()
        task.spec = _replace(task.spec, nodes=1)
        tasks.append(task)
    predicted, actual_tasks = [], []
    for task in tasks:
        service.submit_task(task)
        db.record(task.task_id, runtime_est.estimate(task.spec).value)
        predicted.append(qte.estimate(service, task.task_id))
        actual_tasks.append(task)
    sim.run()
    actual = []
    for task in actual_tasks:
        ad = site.pool.ad(task.task_id)
        actual.append(ad.start_time - ad.submit_time)
    return actual, predicted


class TestQueueTimeValidation:
    def test_predictions_track_actual_waits(self):
        actual, predicted = run_queue_time_validation()
        # Drop the zero-wait head-of-queue jobs (percentage error undefined).
        pairs = [(a, p) for a, p in zip(actual, predicted) if a > 60.0]
        assert len(pairs) >= 20
        acts, preds = zip(*pairs)
        summary = summarize_errors(list(acts), list(preds))
        corr = float(np.corrcoef(acts, preds)[0, 1])
        print(f"\nqueue-time estimator over {len(pairs)} queued jobs: "
              f"mean |%err| = {summary.mean_abs_pct:.1f}%, correlation = {corr:.3f}")
        print(markdown_table(
            ["quantity", "value"],
            [["mean |% error|", round(summary.mean_abs_pct, 1)],
             ["median |% error|", round(summary.median_abs_pct, 1)],
             ["correlation", round(corr, 3)]],
        ))
        # §6.2's sum-of-remaining is unbiased when runtime estimates are
        # good; demand strong tracking.
        assert corr > 0.95
        assert summary.mean_abs_pct < 30.0

    def test_prediction_monotone_in_queue_depth(self):
        actual, predicted = run_queue_time_validation(n_jobs=20)
        # Later submissions see (weakly) deeper queues.
        assert predicted[0] == 0.0
        assert predicted[-1] > predicted[1]


def run_transfer_validation(noise_sigma: float, n: int = 50, seed: int = 3):
    net = Network()
    net.add_link(Link("src", "dst", capacity_mbps=100.0, latency_s=0.05))
    probe = IperfProbe(net, rng=np.random.default_rng(seed), noise_sigma=noise_sigma)
    estimator = TransferTimeEstimator(probe)
    rng = np.random.default_rng(seed + 1)
    actual, predicted = [], []
    for _ in range(n):
        size = float(rng.uniform(10.0, 2000.0))
        predicted.append(estimator.estimate("src", "dst", size).transfer_time_s)
        actual.append(net.transfer_time("src", "dst", size))
    return actual, predicted


class TestTransferTimeValidation:
    def test_accuracy_degrades_gracefully_with_probe_noise(self):
        rows = []
        errors = {}
        for sigma in (0.0, 0.05, 0.2):
            actual, predicted = run_transfer_validation(sigma)
            summary = summarize_errors(actual, predicted)
            errors[sigma] = summary.mean_abs_pct
            rows.append([sigma, round(summary.mean_abs_pct, 2)])
        print()
        print(markdown_table(["probe noise sigma", "mean |%err|"], rows))
        assert errors[0.0] < 1.0          # perfect probe ~ exact (latency only)
        assert errors[0.0] <= errors[0.05] <= errors[0.2]

    def test_smoothing_window_improves_noisy_probe(self):
        net = Network()
        net.add_link(Link("src", "dst", capacity_mbps=100.0, latency_s=0.0))

        def mean_err(window):
            probe = IperfProbe(net, rng=np.random.default_rng(5), noise_sigma=0.3)
            est = TransferTimeEstimator(probe, smoothing_window=window)
            actual, predicted = [], []
            for _ in range(60):
                predicted.append(est.estimate("src", "dst", 500.0).transfer_time_s)
                actual.append(net.transfer_time("src", "dst", 500.0))
            return summarize_errors(actual, predicted).mean_abs_pct

        e1, e10 = mean_err(1), mean_err(10)
        print(f"\nnoisy probe |%err|: window=1 -> {e1:.1f}%, window=10 -> {e10:.1f}%")
        assert e10 < e1


@pytest.mark.benchmark(group="validation")
def test_queue_time_estimate_cost(benchmark):
    """Cost of one §6.2 estimate against a 40-deep queue."""
    sim = Simulator()
    site = Site.simple(sim, "pool", n_nodes=1)
    service = ExecutionService(site)
    from dataclasses import replace as _replace

    db = RuntimeEstimateDB()
    gen = DowneyWorkloadGenerator(seed=1)
    tasks = []
    for r in gen.generate(40):
        t = r.to_task()
        t.spec = _replace(t.spec, nodes=1)
        tasks.append(t)
    for t in tasks:
        service.submit_task(t)
        db.record(t.task_id, 600.0)
    qte = QueueTimeEstimator(db)
    last = tasks[-1].task_id
    result = benchmark(lambda: qte.estimate(service, last))
    assert result > 0.0


class TestPerSlotExtension:
    def test_per_slot_division_tracks_multi_slot_pools(self):
        """§6.2's plain sum assumes one CPU drains the queue; on an 8-slot
        pool it overestimates ~8x, and the per-slot extension repairs it."""
        from dataclasses import replace as _replace

        sim = Simulator()
        site = Site.simple(sim, "pool", n_nodes=8)
        service = ExecutionService(site)
        db = RuntimeEstimateDB()
        qte = QueueTimeEstimator(db)

        gen = DowneyWorkloadGenerator(seed=9)
        records = [r for r in gen.generate(120) if r.status == "successful"][:60]
        tasks = []
        plain_pred, slot_pred = [], []
        for r in records:
            task = r.to_task()
            task.spec = _replace(task.spec, nodes=1)
            service.submit_task(task)
            db.record(task.task_id, max(1.0, r.runtime_s))  # oracle estimates
            plain_pred.append(qte.estimate(service, task.task_id))
            slot_pred.append(qte.estimate(service, task.task_id, per_slot=True))
            tasks.append(task)
        sim.run()

        pairs = [
            (site.pool.ad(t.task_id).start_time - site.pool.ad(t.task_id).submit_time,
             p, s)
            for t, p, s in zip(tasks, plain_pred, slot_pred)
        ]
        waited = [(a, p, s) for a, p, s in pairs if a > 60.0]
        assert len(waited) >= 10
        import numpy as _np

        plain_ratio = _np.median([p / a for a, p, s in waited])
        slot_ratio = _np.median([s / a for a, p, s in waited])
        print(f"\n8-slot pool: plain-sum overestimates actual wait by "
              f"{plain_ratio:.1f}x; per-slot division lands at {slot_ratio:.2f}x")
        assert plain_ratio > 4.0          # the naive sum is way off
        assert 0.5 < slot_ratio < 2.0     # per-slot is in the right regime
