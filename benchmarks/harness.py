"""Reproducible estimator benchmark harness (standalone entry point).

Thin wrapper around :mod:`repro.analysis.bench` so the harness can run
straight from a checkout without installing the package::

    PYTHONPATH=src python benchmarks/harness.py                 # full run
    PYTHONPATH=src python benchmarks/harness.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/harness.py --validate BENCH_estimators.json

Equivalent to ``gae-repro bench`` once installed.  See
``docs/BENCHMARKS.md`` for what gets measured and the JSON schema of the
``BENCH_estimators.json`` it writes.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
