"""Closed-loop RPC read-path load harness (standalone entry point).

Thin wrapper around :mod:`repro.analysis.load` so the harness can run
straight from a checkout without installing the package::

    PYTHONPATH=src python benchmarks/load.py                  # full run
    PYTHONPATH=src python benchmarks/load.py --quick          # CI smoke
    PYTHONPATH=src python benchmarks/load.py --validate LOAD_readpath.json

Equivalent to ``gae-repro loadtest`` once installed.  See
``docs/BENCHMARKS.md`` for the workload mix, what gets asserted (response
bit-identity, the >=3x cached-throughput floor at 10k jobs), and the JSON
schema of the ``LOAD_readpath.json`` it writes.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.load import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
