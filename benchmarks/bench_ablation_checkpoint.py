"""Ablation — checkpointing and flocking (§7's closing observation).

"The job can be completed even quicker than 369 seconds if it is
checkpoint-able and flocking is enabled between site A and Site B."

Sweeps the moment of the move across the job's lifetime and compares
restart-from-zero against checkpointed moves: the later the move, the more
work a restart throws away, so checkpointing's advantage grows linearly —
and flocking lets queued work drain to the free pool without steering at
all.
"""

import pytest

from repro.analysis.report import markdown_table
from repro.gridsim import GridBuilder, Job, JobState
from repro.gridsim.clock import Simulator
from repro.gridsim.condor import CondorPool
from repro.gridsim.node import LoadProfile, Node
from repro.workloads.generators import PRIME_JOB_FREE_CPU_SECONDS, make_prime_count_task

SITE_A_LOAD = 1.5


def run_manual_move(move_at_s: float, checkpointable: bool) -> float:
    """Vacate at t=move_at_s from loaded A to free B; returns completion."""
    sim = Simulator()
    pool_a = CondorPool(
        sim, "A", [Node(name="a0", load_profile=LoadProfile.constant(SITE_A_LOAD))]
    )
    pool_b = CondorPool(sim, "B", [Node(name="b0")])
    task = make_prime_count_task(checkpointable=checkpointable)
    pool_a.submit(task)
    sim.run_until(move_at_s)
    ad = pool_a.vacate(task.task_id)
    carry = ad.accrued_work if checkpointable else 0.0
    pool_b.submit(task, initial_work=carry)
    sim.run()
    return pool_b.ad(task.task_id).end_time


class TestCheckpointAblation:
    def test_checkpoint_advantage_grows_with_move_time(self):
        rows = []
        advantage = []
        for move_at in (30.0, 100.0, 200.0, 400.0):
            plain = run_manual_move(move_at, checkpointable=False)
            ckpt = run_manual_move(move_at, checkpointable=True)
            rows.append([move_at, round(plain, 1), round(ckpt, 1), round(plain - ckpt, 1)])
            advantage.append(plain - ckpt)
        print()
        print(
            markdown_table(
                ["move at (s)", "restart completion", "checkpoint completion", "saved (s)"],
                rows,
            )
        )
        # Checkpointing never hurts and its advantage grows with accrued work.
        assert all(a >= -1e-6 for a in advantage)
        assert advantage == sorted(advantage)
        # Saved work = accrued at move time = move_at * rate (0.4).
        assert advantage[1] == pytest.approx(100.0 * 0.4, rel=0.01)

    def test_checkpointed_move_beats_staying_even_late(self):
        stay = PRIME_JOB_FREE_CPU_SECONDS / 0.4  # 707.5 s at site A
        late = run_manual_move(500.0, checkpointable=True)
        print(f"\nstay-at-A: {stay:.1f}s; late checkpointed move: {late:.1f}s")
        assert late < stay

    def test_flocking_drains_queue_without_steering(self):
        """With flocking enabled, excess jobs run at the friendly pool."""
        grid_flock = (
            GridBuilder(seed=3)
            .site("A", background_load=0.0)
            .site("B", background_load=0.0)
            .flock("A", "B")
            .build()
        )
        tasks = [make_prime_count_task() for _ in range(4)]
        for t in tasks:
            grid_flock.execution_services["A"].submit_task(t)
        grid_flock.run()
        ends_flock = max(
            (grid_flock.sites[s].pool.ad(t.task_id).end_time
             for t in tasks for s in ("A", "B")
             if grid_flock.sites[s].pool.has_task(t.task_id)),
        )

        grid_plain = (
            GridBuilder(seed=3)
            .site("A", background_load=0.0)
            .site("B", background_load=0.0)
            .build()
        )
        tasks2 = [make_prime_count_task() for _ in range(4)]
        for t in tasks2:
            grid_plain.execution_services["A"].submit_task(t)
        grid_plain.run()
        ends_plain = max(
            grid_plain.sites["A"].pool.ad(t.task_id).end_time for t in tasks2
        )
        print(f"\nmakespan with flocking: {ends_flock:.1f}s; without: {ends_plain:.1f}s")
        assert ends_flock < ends_plain


@pytest.mark.benchmark(group="ablation-checkpoint")
def test_vacate_and_resubmit_cost(benchmark):
    """Mechanical cost of one vacate + checkpointed resubmit."""

    def cycle():
        sim = Simulator()
        a = CondorPool(sim, "A", [Node(name="a0")])
        b = CondorPool(sim, "B", [Node(name="b0")])
        task = make_prime_count_task(checkpointable=True)
        a.submit(task)
        sim.run_until(10.0)
        ad = a.vacate(task.task_id)
        b.submit(task, initial_work=ad.accrued_work)
        return ad.accrued_work

    carried = benchmark(cycle)
    assert carried == pytest.approx(10.0)
