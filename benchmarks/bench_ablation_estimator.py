"""Ablation — runtime-estimator design choices.

The paper picks history-based statistical prediction (§6.1, related work
§8 category 3) with *mean and linear regression* over similar tasks found
via templates.  This bench quantifies each choice on the synthetic Paragon
workload:

- estimate method: mean vs regression vs auto vs the naive baseline of
  trusting the user's requested CPU hours (what a scheduler does with no
  estimator at all);
- template selection: the fixed specificity ladder vs the greedy
  Smith/Taylor/Foster search vs no templates (global history);
- history size: accuracy as the history grows from 10 to 400 jobs.
"""

import statistics
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis.metrics import summarize_errors
from repro.analysis.report import markdown_table
from repro.core.estimators.runtime import RuntimeEstimator
from repro.core.estimators.similarity import GreedyTemplateSearch
from repro.workloads.downey import DowneyWorkloadGenerator

SEEDS = (1995, 7, 21, 42, 99)


def error_for(estimate_fn, tests) -> float:
    actuals = [t.runtime_s for t in tests]
    estimates = [estimate_fn(t) for t in tests]
    return summarize_errors(actuals, estimates).mean_abs_pct


def sweep_methods(seed: int) -> Dict[str, float]:
    gen = DowneyWorkloadGenerator(seed=seed)
    history, tests = gen.history_and_tests(100, 20)
    out: Dict[str, float] = {}
    for method in ("mean", "regression", "auto"):
        estimator = RuntimeEstimator(history, method=method)
        out[method] = error_for(
            lambda t, e=estimator: e.estimate(t.to_task_spec()).value, tests
        )
    out["requested-hours baseline"] = error_for(
        lambda t: t.requested_cpu_hours * 3600.0, tests
    )
    # No templates at all: always the global history mean.
    global_estimator = RuntimeEstimator(history, ladder=((),), method="mean")
    out["no templates (global mean)"] = error_for(
        lambda t: global_estimator.estimate(t.to_task_spec()).value, tests
    )
    # Greedy-searched templates.
    search = GreedyTemplateSearch()
    result = search.search(history)
    greedy_estimator = RuntimeEstimator(history, ladder=search.ladder_from(result))
    out["greedy templates"] = error_for(
        lambda t: greedy_estimator.estimate(t.to_task_spec()).value, tests
    )
    return out


class TestEstimatorAblation:
    def test_method_and_template_sweep(self):
        rows = []
        aggregated: Dict[str, List[float]] = {}
        for seed in SEEDS:
            for name, err in sweep_methods(seed).items():
                aggregated.setdefault(name, []).append(err)
        for name, errs in aggregated.items():
            rows.append([name, round(statistics.mean(errs), 2), round(max(errs), 2)])
        print()
        print(markdown_table(["estimator variant", "mean |%err|", "worst seed"], rows))
        means = {name: statistics.mean(errs) for name, errs in aggregated.items()}
        # The paper's choice (history + templates) must beat both baselines.
        assert means["auto"] < means["requested-hours baseline"]
        assert means["auto"] < means["no templates (global mean)"]
        # Greedy search is competitive with the fixed ladder (within 2x).
        assert means["greedy templates"] < 2.0 * means["auto"]

    def test_history_size_sweep(self):
        """More history → (weakly) better estimates, then diminishing."""
        sizes = [10, 25, 50, 100, 200, 400]
        rows = []
        by_size: Dict[int, List[float]] = {}
        for seed in SEEDS:
            gen = DowneyWorkloadGenerator(seed=seed)
            records = gen.generate(max(sizes) + 200)
            test_pool = [r for r in records[max(sizes):] if r.status == "successful"]
            for size in sizes:
                from repro.core.estimators.history import HistoryRepository

                history = HistoryRepository(
                    r.to_task_record() for r in records[:size]
                )
                seen = {r.application for r in records[:size] if r.status == "successful"}
                tests = [t for t in test_pool if t.application in seen][:20]
                if len(tests) < 10:
                    continue
                estimator = RuntimeEstimator(history)
                by_size.setdefault(size, []).append(
                    error_for(lambda t, e=estimator: e.estimate(t.to_task_spec()).value, tests)
                )
        for size in sizes:
            if size in by_size:
                rows.append([size, round(statistics.mean(by_size[size]), 2)])
        print()
        print(markdown_table(["history size", "mean |%err|"], rows))
        small = statistics.mean(by_size[10])
        large = statistics.mean(by_size[400])
        assert large < small  # history helps


@pytest.mark.benchmark(group="ablation-estimator")
def test_greedy_search_cost(benchmark):
    """One-off cost of the greedy template search over a 100-job history."""
    gen = DowneyWorkloadGenerator(seed=1995)
    history, _ = gen.history_and_tests(100, 5)
    search = GreedyTemplateSearch()
    result = benchmark(lambda: search.search(history))
    assert result.error < float("inf")
