"""Figure 7 — Job completion at different sites (the steering experiment).

Paper setup (§7): a prime-counting job measured at **283 s on a free CPU**
runs on site A under significant CPU load.  The steering service monitors
its progress (via the job monitoring service), detects the slow execution
rate, and reschedules it to a free site B — while the site-A copy is left
running for comparison.  The figure charts job progress (% complete) versus
elapsed time for both.

Paper result: the steered job completes at **~369 s**, far sooner than the
copy still grinding at site A, and necessarily later than the **283 s**
free-CPU reference (dashed line).

This bench reruns the scenario in the simulator, prints both progress
curves plus the 283 s reference, and asserts the ordering
``283 s < steered < stay-put`` along with the "quicker decision → quicker
completion" claim.
"""

from typing import List, Optional, Tuple

import pytest

from benchmarks.conftest import print_figure
from repro.analysis.figures import FigureData
from repro.core.estimators.history import HistoryRepository
from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState
from repro.workloads.generators import (
    PRIME_JOB_FREE_CPU_SECONDS,
    make_prime_count_task,
    prime_job_history_records,
)

PAPER_STEERED_COMPLETION_S = 369.0
SITE_A_LOAD = 1.5          # progress rate 0.4 at site A
HORIZON_S = 1200.0
SAMPLE_EVERY_S = 10.0


def build_scenario(poll_interval_s: float = 20.0, checkpointable: bool = False):
    grid = (
        GridBuilder(seed=2005)
        .site("siteA", background_load=SITE_A_LOAD)
        .site("siteB", background_load=0.0)
        .link("siteA", "siteB", capacity_mbps=100.0, latency_s=0.05)
        .probe_noise(0.0)
        .build()
    )
    history = HistoryRepository(prime_job_history_records(n=10, sigma=0.01))
    policy = SteeringPolicy(
        poll_interval_s=poll_interval_s,
        min_elapsed_wall_s=40.0,
        slow_rate_threshold=0.8,
        min_improvement_factor=1.2,
    )
    gae = build_gae(grid, policy=policy, history=history)
    gae.add_user("physicist", "pw")
    return gae


def run_scenario(
    gae, checkpointable: bool = False, with_shadow: bool = True
) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]], Optional[float], Optional[float]]:
    """Run the Figure 7 experiment.

    Returns (site-A shadow progress curve, steered job progress curve,
    steered completion time, shadow completion time).  The shadow is an
    identical job pinned to site A "for testing purposes", as in the paper.
    """
    steered = make_prime_count_task(owner="physicist", checkpointable=checkpointable)
    shadow = make_prime_count_task(owner="physicist") if with_shadow else None

    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    gae.scheduler.submit_job(Job(tasks=[steered], owner="physicist"))
    gae.scheduler.select_site = original
    if shadow is not None:
        # The shadow bypasses the scheduler (and thus the steering
        # subscriber) entirely: it just burns CPU at site A.
        gae.grid.execution_services["siteA"].submit_task(shadow)

    gae.start()
    curve_a: List[Tuple[float, float]] = []
    curve_steered: List[Tuple[float, float]] = []
    es = gae.grid.execution_services
    t = 0.0
    while t <= HORIZON_S:
        gae.grid.run_until(t)
        if shadow is not None:
            curve_a.append((t, es["siteA"].pool.status(shadow.task_id).progress * 100.0))
        site = "siteB" if es["siteB"].pool.has_task(steered.task_id) else "siteA"
        curve_steered.append((t, es[site].pool.status(steered.task_id).progress * 100.0))
        t += SAMPLE_EVERY_S
    gae.grid.run_until(4000.0)
    gae.stop()

    steered_end = (
        es["siteB"].pool.ad(steered.task_id).end_time
        if es["siteB"].pool.has_task(steered.task_id)
        else es["siteA"].pool.ad(steered.task_id).end_time
    )
    shadow_end = es["siteA"].pool.ad(shadow.task_id).end_time if shadow is not None else None
    return curve_a, curve_steered, steered_end, shadow_end


class TestFigure7:
    def test_regenerate_figure7(self):
        gae = build_scenario()
        curve_a, curve_steered, steered_end, shadow_end = run_scenario(gae)
        figure = (
            FigureData(
                title="Figure 7: Job Completion at different sites",
                x_label="Elapsed time (in seconds)",
                y_label="Job progress (as %age)",
            )
            .add("Progress of the job at site A", *zip(*curve_a))
            .add("Progress of the job at site B (steered)", *zip(*curve_steered))
            .add(
                "283 s free-CPU reference",
                [0.0, PRIME_JOB_FREE_CPU_SECONDS],
                [0.0, 100.0],
            )
        )
        print_figure(
            figure,
            comparison_rows=[
                ["free-CPU estimate (s)", 283, 283],
                ["steered completion (s)", PAPER_STEERED_COMPLETION_S, round(steered_end, 1)],
                [
                    "stay-at-A completion (s)",
                    "> 500 (off chart)",
                    round(shadow_end, 1) if shadow_end else "n/a",
                ],
                ["move decision at (s)", "~120-170 (chart)", round(gae.steering.actions[0].time, 1)],
            ],
        )
        # The paper's ordering: free-CPU bound < steered < stayed-at-A.
        assert PRIME_JOB_FREE_CPU_SECONDS < steered_end < shadow_end
        # And the steered completion lands in the paper's neighbourhood.
        assert steered_end < 1.6 * PAPER_STEERED_COMPLETION_S

    def test_quicker_decision_quicker_completion(self):
        """§7: 'The quicker the decision is taken, the better the chance
        that it will complete quicker.'"""
        ends = {}
        for poll in (10.0, 60.0, 150.0):
            gae = build_scenario(poll_interval_s=poll)
            _, _, steered_end, _ = run_scenario(gae, with_shadow=False)
            ends[poll] = steered_end
        print(f"\ncompletion by poll interval: { {k: round(v,1) for k, v in ends.items()} }")
        assert ends[10.0] <= ends[60.0] <= ends[150.0]

    def test_checkpointable_flocking_quicker_still(self):
        """§7: 'The job can be completed even quicker than 369 seconds if it
        is checkpoint-able and flocking is enabled.'"""
        plain = build_scenario()
        _, _, plain_end, _ = run_scenario(plain, with_shadow=False)
        ckpt = build_scenario(checkpointable=True)
        _, _, ckpt_end, _ = run_scenario(ckpt, checkpointable=True, with_shadow=False)
        print(f"\nplain restart: {plain_end:.1f}s; checkpointed move: {ckpt_end:.1f}s")
        assert ckpt_end < plain_end


@pytest.mark.benchmark(group="fig7-steering")
def test_full_scenario_run_time(benchmark):
    """Wall-clock cost of simulating the whole Figure 7 experiment."""

    def run():
        gae = build_scenario()
        _, _, steered_end, _ = run_scenario(gae, with_shadow=False)
        return steered_end

    steered_end = benchmark(run)
    assert steered_end > PRIME_JOB_FREE_CPU_SECONDS


@pytest.mark.benchmark(group="fig7-steering")
def test_optimizer_evaluate_latency(benchmark):
    """Latency of one optimizer evaluation (the steering loop's inner op)."""
    gae = build_scenario()
    task = make_prime_count_task(owner="physicist")
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "siteA"
    gae.scheduler.submit_job(Job(tasks=[task], owner="physicist"))
    gae.scheduler.select_site = original
    gae.grid.run_until(100.0)
    decision = benchmark(lambda: gae.steering.optimizer.evaluate(task.task_id))
    assert decision.should_move
