"""Figure 5 — Actual & Estimated Runtimes for 20 test cases.

Paper setup (§7): a history of 100 jobs from the SDSC Paragon accounting
trace; runtimes of 20 further jobs estimated with the history-based Runtime
Estimator (similar-task matching + mean/linear-regression statistics).

Paper result: the estimates track the actuals across the 20 cases, with a
**mean error of 13.53 %**.

This bench regenerates the 20-case series on the synthetic Paragon trace,
prints the figure, and asserts the calibrated accuracy band (mean absolute
percentage error between 5 % and 25 %, averaged over seeds).  The
pytest-benchmark timing target is a single estimate call — the latency a
scheduler pays per §6.1 step (b) query.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_figure
from repro.analysis.figures import FigureData
from repro.analysis.metrics import summarize_errors
from repro.core.estimators.runtime import RuntimeEstimator
from repro.workloads.downey import DowneyWorkloadGenerator

PAPER_MEAN_ERROR_PCT = 13.53
N_HISTORY = 100
N_TESTS = 20


def run_figure5(seed: int = 1995):
    """One full Figure 5 run: returns (actuals, estimates, summary)."""
    gen = DowneyWorkloadGenerator(seed=seed)
    history, tests = gen.history_and_tests(N_HISTORY, N_TESTS)
    estimator = RuntimeEstimator(history)
    actuals = [t.runtime_s for t in tests]
    estimates = [estimator.estimate(t.to_task_spec()).value for t in tests]
    return actuals, estimates, summarize_errors(actuals, estimates)


class TestFigure5:
    def test_regenerate_figure5(self):
        actuals, estimates, summary = run_figure5()
        cases = list(range(1, N_TESTS + 1))
        figure = (
            FigureData(
                title="Figure 5: Actual & Estimated Runtimes for 20 test cases",
                x_label="Jobs",
                y_label="Job Runtime (seconds)",
            )
            .add("Actual Runtime", cases, actuals)
            .add("Estimated Runtime", cases, estimates)
        )
        print_figure(
            figure,
            comparison_rows=[
                ["history size", N_HISTORY, N_HISTORY],
                ["test cases", N_TESTS, summary.n],
                ["mean |%% error|", PAPER_MEAN_ERROR_PCT, round(summary.mean_abs_pct, 2)],
                ["mean signed %% error", "n/a", round(summary.mean_signed_pct, 2)],
            ],
        )
        # Shape: estimates track actuals within the paper's accuracy band.
        assert summary.n == N_TESTS
        assert summary.mean_abs_pct < 30.0
        assert summary.within_25_pct >= 0.6

    def test_accuracy_band_across_seeds(self):
        """The headline number, averaged over seeds, sits in the paper band."""
        values = [run_figure5(seed)[2].mean_abs_pct for seed in (1995, 7, 21, 42, 99)]
        mean = float(np.mean(values))
        print(f"\nmean |% error| per seed: {[round(v, 1) for v in values]}; "
              f"average {mean:.2f} (paper: {PAPER_MEAN_ERROR_PCT})")
        assert 5.0 < mean < 25.0

    def test_estimates_correlate_with_actuals(self):
        actuals, estimates, _ = run_figure5()
        r = float(np.corrcoef(actuals, estimates)[0, 1])
        print(f"\ncorrelation(actual, estimated) = {r:.3f}")
        assert r > 0.9  # the figure's visual "tracking" property


@pytest.mark.benchmark(group="fig5-estimator")
def test_estimate_call_latency(benchmark):
    """Latency of one §6.1 estimate query (what the scheduler pays)."""
    gen = DowneyWorkloadGenerator(seed=1995)
    history, tests = gen.history_and_tests(N_HISTORY, N_TESTS)
    estimator = RuntimeEstimator(history)
    spec = tests[0].to_task_spec()
    result = benchmark(lambda: estimator.estimate(spec).value)
    assert result > 0.0


@pytest.mark.benchmark(group="fig5-estimator")
def test_full_figure5_run_time(benchmark):
    """End-to-end cost of regenerating the whole figure."""
    summary = benchmark(lambda: run_figure5()[2])
    assert summary.n == N_TESTS
