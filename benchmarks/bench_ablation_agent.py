"""Ablation — the adaptive steering agent (§1's learned policies).

Compares three regimes on a stream of jobs landing on a loaded site:

1. **no steering** — jobs grind to completion where they land;
2. **default policy** — the shipped SteeringPolicy;
3. **learned policy** — the policy an AdaptiveSteeringAgent distilled from
   two manual expert moves.

The learned policy should recover most of the default policy's advantage
over no steering — evidence that watching experts is enough to bootstrap
automation, the paper's §1 thesis.
"""

from dataclasses import replace
from typing import List, Optional

import pytest

from repro.analysis.report import markdown_table
from repro.core.estimators.history import HistoryRepository
from repro.core.steering.agent import AdaptiveSteeringAgent
from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job
from repro.workloads.generators import make_prime_count_task, prime_job_history_records


def make_gae(policy: SteeringPolicy):
    grid = (
        GridBuilder(seed=21)
        .site("busy", background_load=1.5)
        .site("idle", nodes=4, background_load=0.0)
        .probe_noise(0.0)
        .build()
    )
    history = HistoryRepository(prime_job_history_records(n=8, sigma=0.01))
    gae = build_gae(grid, policy=policy, history=history)
    gae.add_user("expert", "pw")
    return gae


def submit_pinned(gae, owner="expert"):
    task = make_prime_count_task(owner=owner)
    original = gae.scheduler.select_site
    gae.scheduler.select_site = lambda t, exclude=(): "busy"
    gae.scheduler.submit_job(Job(tasks=[task], owner=owner))
    gae.scheduler.select_site = original
    return task


def mean_completion(policy: Optional[SteeringPolicy], n_jobs: int = 3) -> float:
    """Mean completion time of *n_jobs* submitted to the busy site."""
    gae = make_gae(policy or SteeringPolicy(auto_move=False, min_elapsed_wall_s=1e9))
    tasks = [submit_pinned(gae) for _ in range(n_jobs)]
    if policy is not None:
        gae.start()
    gae.grid.run_until(30000.0)
    if policy is not None:
        gae.stop()
    ends: List[float] = []
    for t in tasks:
        for site in ("busy", "idle"):
            pool = gae.grid.sites[site].pool
            if pool.has_task(t.task_id) and pool.ad(t.task_id).state.value == "completed":
                ends.append(pool.ad(t.task_id).end_time)
    assert len(ends) == len(tasks), "every job must have completed somewhere"
    return sum(ends) / len(ends)


def learn_policy() -> SteeringPolicy:
    """Train the agent on two manual expert moves, return its policy."""
    timid = SteeringPolicy(auto_move=False, min_elapsed_wall_s=1e9)
    gae = make_gae(timid)
    agent = AdaptiveSteeringAgent(min_observations=2)
    gae.steering.attach_agent(agent)
    client = gae.client("expert", "pw")
    for _ in range(2):
        task = submit_pinned(gae)
        gae.grid.run_until(gae.sim.now + 100.0)
        client.service("steering").move(task.task_id, "idle")
    return replace(agent.recommended_policy(), auto_move=True)


class TestAgentAblation:
    def test_learned_policy_recovers_most_of_the_benefit(self):
        default = SteeringPolicy(poll_interval_s=20.0, min_elapsed_wall_s=40.0,
                                 slow_rate_threshold=0.8, min_improvement_factor=1.2)
        none_mean = mean_completion(None)
        default_mean = mean_completion(default)
        learned = learn_policy()
        learned_mean = mean_completion(learned)

        print()
        print(markdown_table(
            ["regime", "mean completion (s)"],
            [["no steering", round(none_mean, 1)],
             ["default policy", round(default_mean, 1)],
             [f"learned policy (thr={learned.slow_rate_threshold:.2f}, "
              f"poll={learned.poll_interval_s:.0f}s)", round(learned_mean, 1)]],
        ))
        assert default_mean < none_mean
        assert learned_mean < none_mean
        # The learned policy captures at least half the default's saving.
        saving_default = none_mean - default_mean
        saving_learned = none_mean - learned_mean
        assert saving_learned >= 0.5 * saving_default


@pytest.mark.benchmark(group="ablation-agent")
def test_agent_observation_cost(benchmark):
    """Cost of recording one manual-move observation."""
    from repro.core.monitoring.records import MonitoringRecord

    agent = AdaptiveSteeringAgent()
    record = MonitoringRecord(
        task_id="t", job_id="j", site="s", status="running",
        elapsed_time_s=40.0, estimated_run_time_s=283.0, remaining_time_s=243.0,
        progress=0.14, queue_position=-1, priority=0, submission_time=0.0,
        execution_time=0.0, completion_time=None, cpu_time_used_s=40.0,
        input_io_mb=0.0, output_io_mb=0.0, owner="u",
    )
    benchmark(lambda: agent.observe_manual_move(100.0, record))
    assert agent.n_observations > 0
