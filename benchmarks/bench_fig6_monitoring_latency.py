"""Figure 6 — Response times for queries to the Job Monitoring Service.

Paper setup (§7): the Job Monitoring Service hosted on a Windows-XP
JClarens server; {1, 2, 3, 5, 25, 50, 100} parallel clients call service
methods; the figure charts the average time to fulfil a request.

Paper result: roughly flat (~10–30 ms) for few clients, rising to ~60–70 ms
at 100 concurrent clients — "the performance of the service scales well
with increasing number of clients … as long as they do not exceed a certain
limit."

This bench hosts the real monitoring service on the stdlib threaded XML-RPC
server (loopback HTTP) and drives genuine concurrent clients, measuring the
mean per-request wall time.  Absolute milliseconds differ from a 2005
Windows box; the asserted shape is (a) low flat latency at small client
counts and (b) a clear rise by 100 clients.
"""

import statistics
from typing import Dict

import pytest

from benchmarks.conftest import print_figure
from repro.analysis.figures import FigureData
from repro.analysis.latency import build_served_monitoring, measure_mean_latency_ms
from repro.clarens.client import ClarensClient
from repro.clarens.server import XmlRpcServerHandle
from repro.clarens.transport import SocketTransport
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, Task, TaskSpec

CLIENT_COUNTS = [1, 2, 3, 5, 25, 50, 100]
CALLS_PER_CLIENT = 10


def run_figure6() -> Dict[int, float]:
    gae, task_ids = build_served_monitoring()
    results: Dict[int, float] = {}
    with XmlRpcServerHandle(gae.host) as handle:
        for n in CLIENT_COUNTS:
            results[n] = measure_mean_latency_ms(handle.url, task_ids, n, calls_per_client=CALLS_PER_CLIENT)
    return results


class TestFigure6:
    def test_regenerate_figure6(self):
        results = run_figure6()
        figure = FigureData(
            title="Figure 6: Response times for queries to Job Monitoring Service",
            x_label="Number of parallel clients",
            y_label="Response time (milliseconds)",
        ).add("Average Response Time", list(results), list(results.values()))
        print_figure(
            figure,
            comparison_rows=[
                ["clients swept", "1,2,3,5,25,50,100", ",".join(map(str, results))],
                ["latency @ 1 client (ms)", "~10-30", round(results[1], 2)],
                ["latency @ 100 clients (ms)", "~60-70", round(results[100], 2)],
                [
                    "rise factor 100c vs 1c",
                    "~3-6x",
                    round(results[100] / max(results[1], 1e-9), 1),
                ],
            ],
        )
        # Shape assertions:
        small = statistics.mean([results[1], results[2], results[3], results[5]])
        # (a) small client counts stay mutually close (flat region)
        for n in (1, 2, 3, 5):
            assert results[n] < 4.0 * small + 1.0
        # (b) contention rises by 100 clients
        assert results[100] > 1.5 * small
        # (c) latency grows (weakly) along the heavy end of the sweep
        assert results[100] > results[5]


@pytest.mark.benchmark(group="fig6-monitoring")
def test_single_request_latency(benchmark):
    """pytest-benchmark timing of one monitoring query over XML-RPC."""
    gae, task_ids = build_served_monitoring()
    with XmlRpcServerHandle(gae.host) as handle:
        client = ClarensClient(SocketTransport(handle.url))
        client.login("alice", "pw")
        jobmon = client.service("jobmon")
        result = benchmark(lambda: jobmon.job_status(task_ids[0]))
        assert result == "running"


@pytest.mark.benchmark(group="fig6-monitoring")
def test_inprocess_request_latency(benchmark):
    """The same query without sockets — the transport-cost baseline."""
    from repro.clarens.transport import LoopbackTransport

    gae, task_ids = build_served_monitoring()
    client = ClarensClient(LoopbackTransport(gae.host))
    client.login("alice", "pw")
    jobmon = client.service("jobmon")
    result = benchmark(lambda: jobmon.job_status(task_ids[0]))
    assert result == "running"
