"""Robustness — throughput under execution-service churn.

§4.2.4 exists because grid sites die; this bench quantifies what Backup &
Recovery buys.  A batch of jobs runs on a three-site grid while two sites
churn through seeded MTBF/MTTR failure cycles:

- with B&R's sweep running, every job completes; makespan degrades
  gracefully as churn intensifies;
- with recovery disabled, jobs stranded on crashed sites never finish.
"""

from typing import List, Optional, Tuple

import numpy as np
import pytest

from repro.analysis.report import markdown_table
from repro.core.steering.optimizer import SteeringPolicy
from repro.gae import build_gae
from repro.gridsim import GridBuilder, Job, JobState, Task, TaskSpec
from repro.gridsim.faults import FaultInjector

N_JOBS = 8
WORK_S = 300.0


def run_churn(
    mtbf_s: Optional[float],
    recovery: bool = True,
    horizon: float = 60000.0,
    seed: int = 5,
) -> Tuple[int, float]:
    """Returns (#completed, makespan of completed jobs)."""
    grid = (
        GridBuilder(seed=seed)
        .site("a", nodes=2).site("b", nodes=2).site("c", nodes=2)
        .probe_noise(0.0)
        .build()
    )
    policy = SteeringPolicy(poll_interval_s=30.0, min_elapsed_wall_s=1e9)
    gae = build_gae(grid, policy=policy)
    gae.steering.backup_recovery.resubmit_failed_tasks = recovery

    tasks = [
        Task(spec=TaskSpec(owner="u", requested_cpu_hours=WORK_S / 3600.0),
             work_seconds=WORK_S)
        for _ in range(N_JOBS)
    ]
    for t in tasks:
        gae.scheduler.submit_job(Job(tasks=[t], owner="u"))

    injector = None
    if mtbf_s is not None:
        injector = FaultInjector(gae.sim, rng=np.random.default_rng(seed))
        injector.add_site(gae.grid.execution_services["a"], mtbf_s=mtbf_s, mttr_s=mtbf_s / 2)
        injector.add_site(gae.grid.execution_services["b"], mtbf_s=mtbf_s, mttr_s=mtbf_s / 2)
        injector.start()

    if recovery:
        gae.start()
    gae.grid.run_until(horizon)
    if recovery:
        gae.stop()

    completed = [t for t in tasks if t.state is JobState.COMPLETED]
    makespan = 0.0
    for t in completed:
        for site in gae.grid.sites.values():
            if site.pool.has_task(t.task_id) and site.pool.ad(t.task_id).state is JobState.COMPLETED:
                makespan = max(makespan, site.pool.ad(t.task_id).end_time)
    return len(completed), makespan


class TestChurnRobustness:
    def test_makespan_degrades_gracefully_with_churn(self):
        rows = []
        makespans = {}
        for label, mtbf in (("none", None), ("mild", 2000.0), ("harsh", 500.0)):
            done, makespan = run_churn(mtbf)
            makespans[label] = makespan
            rows.append([label, mtbf or "-", done, round(makespan, 1)])
        print()
        print(markdown_table(
            ["churn", "MTBF (s)", f"completed of {N_JOBS}", "makespan (s)"], rows,
        ))
        # Everything completes at every churn level (B&R running) ...
        for label, _, done, _ in rows:
            assert done == N_JOBS
        # ... and churn costs time, monotonically.
        assert makespans["none"] <= makespans["mild"] <= makespans["harsh"]

    def test_without_recovery_jobs_strand(self):
        """The counterfactual: kill B&R resubmission and some jobs die with
        their sites."""
        done_with, _ = run_churn(500.0, recovery=True)
        done_without, _ = run_churn(500.0, recovery=False)
        print(f"\ncompleted with recovery: {done_with}/{N_JOBS}; "
              f"without: {done_without}/{N_JOBS}")
        assert done_with == N_JOBS
        assert done_without < N_JOBS
